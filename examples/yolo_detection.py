"""Object detection with binarized YOLOv2-Tiny on synthetic VOC images.

This example exercises the full detection pipeline the paper benchmarks:

1. generate a synthetic VOC-style image (colored boxes on texture);
2. build the binarized YOLOv2-Tiny architecture (bit-plane conv1, fused
   binary conv2–conv8, full-precision conv9 head) at a reduced input size
   so the functional NumPy pass is fast;
3. run it with the PhoneBit engine and decode the raw 125-channel head into
   boxes with :mod:`repro.models.yolo_head` (anchors, objectness, class
   scores, non-maximum suppression);
4. estimate the full-size (416×416) on-device latency for both phones.

With synthetic weights the detections are of course meaningless; the point
is that every stage — packing, fused binary convolution, packed pooling,
float head, decode — runs end to end through the public API.

Run with:  python examples/yolo_detection.py
"""

from repro.core.engine import PhoneBitEngine
from repro.datasets.detection import synthetic_voc_detection
from repro.frameworks.phonebit_runner import PhoneBitRunner
from repro.gpusim.device import snapdragon_820, snapdragon_855
from repro.models import build_phonebit_network, yolov2_tiny_config
from repro.models.yolo_head import detect


def main() -> None:
    # --- functional pass at reduced resolution -----------------------------
    input_size = 128
    config = yolov2_tiny_config(input_size=input_size)
    print(f"building binarized {config.name} at {input_size}x{input_size} "
          f"(functional pass)...")
    network = build_phonebit_network(config, rng=0)

    sample = synthetic_voc_detection(count=1, image_size=input_size, seed=7)[0]
    engine = PhoneBitEngine(snapdragon_855())
    report = engine.run(network, sample.image[None, ...])
    head = report.output.data[0]
    detections = detect(head, score_threshold=0.30)

    print(f"ground-truth objects: {[(b.class_index,) + b.corners(input_size) for b in sample.boxes]}")
    print(f"decoded detections (synthetic weights, for pipeline demonstration):")
    for detection in detections[:5]:
        print(f"  class {detection.class_index:2d}  score {detection.score:.2f}  "
              f"corners {detection.box.corners(input_size)}")
    if not detections:
        print("  (no detections above threshold — expected with random weights)")

    # --- full-size latency estimate ----------------------------------------
    print("\nfull-size (416x416) simulated latency:")
    full_config = yolov2_tiny_config()
    for device in (snapdragon_820(), snapdragon_855()):
        result = PhoneBitRunner(device).run_model(full_config)
        print(f"  {device.soc:<16s} {result.runtime_ms:7.1f} ms "
              f"({1000.0 / result.runtime_ms:5.1f} FPS)")
    print("  paper reports 42.1 ms (SD820) and 22.6 ms (SD855)")


if __name__ == "__main__":
    main()
