"""Framework comparison: regenerate the paper's evaluation tables.

Runs the Table II (model size), Table III (runtime across six framework
configurations on both phones), Table IV (power / FPS-per-watt) and
Figure 5 (per-layer speedup) experiments and prints them next to the
paper's numbers.

Run with:  python examples/framework_comparison.py
"""

from repro.analysis import ablations, experiments


def main() -> None:
    print(experiments.table1_devices().table())
    print()
    print(experiments.table2_model_size().table())
    print()

    table3 = experiments.table3_runtime()
    print(table3.table())
    print()
    for device in ("Snapdragon 820", "Snapdragon 855"):
        print(f"mean speedup of PhoneBit on {device}:")
        for framework, factor in table3.speedups(device).items():
            print(f"  vs {framework:<24s} {factor:8.1f}x")
        print()

    print(experiments.table4_energy().table())
    print()
    print(experiments.figure5_layer_speedup().chart())
    print()

    print(ablations.fusion_ablation().table("Ablation — layer integration"))
    print()
    print(ablations.packing_width_ablation().table("Ablation — packing word width"))


if __name__ == "__main__":
    main()
