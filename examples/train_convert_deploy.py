"""Train → convert → deploy: the full Fig. 2 pipeline with real weights.

1. Train a small *binarized* MLP classifier (straight-through estimator,
   latent float weights, batch-norm) and its full-precision twin on the
   synthetic CIFAR-10 stand-in — this reproduces the accuracy-gap shape of
   Table II.
2. Convert the trained binary model into a PhoneBit network: weights become
   sign bits, batch-norm folds into fused thresholds ξ (Eqn. 6).
3. Save it to the compressed ``.pbit`` format and load it back.
4. Run inference with the PhoneBit engine and verify the deployed model
   predicts exactly what the training-framework forward pass predicts.

Run with:  python examples/train_convert_deploy.py
"""

import os
import tempfile

import numpy as np

from repro.core import model_format
from repro.core.converter import convert_model
from repro.core.engine import PhoneBitEngine
from repro.datasets import synthetic_cifar10
from repro.gpusim.device import snapdragon_855
from repro.training import train_classifier


def main() -> None:
    print("generating synthetic CIFAR-10 stand-in...")
    dataset = synthetic_cifar10(train_size=384, test_size=128, image_size=16,
                                noise=110, seed=0)

    print("training full-precision reference...")
    _, float_result = train_classifier(dataset, hidden_dims=(96, 96), binary=False,
                                       epochs=10, seed=0)
    print(f"  float test accuracy:  {100 * float_result.test_accuracy:.1f}%")

    print("training binarized model (STE)...")
    binary_model, binary_result = train_classifier(dataset, hidden_dims=(96, 96),
                                                   binary=True, epochs=10, seed=0)
    print(f"  binary test accuracy: {100 * binary_result.test_accuracy:.1f}%")
    print(f"  accuracy gap: {100 * (float_result.test_accuracy - binary_result.test_accuracy):.1f} points "
          f"(paper reports 1.8-5.4 points on the full-size benchmarks)")

    print("\nconverting trained model to PhoneBit format...")
    specs = binary_model.export_layer_specs()
    input_dim = int(np.prod(dataset.image_shape))
    network = convert_model("trained-bnn-mlp", (input_dim,), specs,
                            input_dtype="float32")
    print(network.summary())

    with tempfile.TemporaryDirectory() as tmpdir:
        path = os.path.join(tmpdir, "trained-bnn-mlp.pbit")
        payload = model_format.save_network(network, path)
        size_kb = os.path.getsize(path) / 1024
        print(f"\nsaved {path} ({size_kb:.1f} KiB on disk, {payload} payload bytes)")
        deployed = model_format.load_network(path)

    print("running deployed model with the PhoneBit engine...")
    engine = PhoneBitEngine(snapdragon_855())
    test_inputs = binary_model.prepared_input(dataset.test_images)
    report = engine.run(deployed, test_inputs)
    deployed_predictions = np.argmax(report.output.data, axis=1)
    trainer_predictions = binary_model.predict(dataset.test_images)

    agreement = float((deployed_predictions == trainer_predictions).mean())
    accuracy = float((deployed_predictions == dataset.test_labels).mean())
    print(f"  deployed/test accuracy: {100 * accuracy:.1f}%")
    print(f"  agreement with the training-framework forward pass: {100 * agreement:.1f}% "
          f"(must be 100%)")
    print(f"  simulated latency: {report.latency_ms:.3f} ms per batch of "
          f"{len(test_inputs)} on {report.device_name}")


if __name__ == "__main__":
    main()
