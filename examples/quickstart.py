"""Quickstart: build a small BNN, run it with the PhoneBit engine.

Mirrors the deployment flow of the paper's Fig. 2/Fig. 3 in a few lines:
construct a network layer by layer (bit-plane input conv, fused binary
convs, packed pooling, binary/float dense head), run one batch of 8-bit
images, and read back both the classification output and the simulated
on-device latency for the Snapdragon 855.

Run with:  python examples/quickstart.py
"""

import numpy as np

from repro.core.engine import PhoneBitEngine
from repro.core.layers import (
    BinaryConv2d,
    BinaryDense,
    Flatten,
    InputConv2d,
    MaxPool2d,
)
from repro.core.network import Network
from repro.gpusim.device import snapdragon_855


def build_network() -> Network:
    """A small CIFAR-style BNN with the standard PhoneBit layer pattern."""
    net = Network("quickstart-bnn", input_shape=(32, 32, 3), input_dtype="uint8")
    net.add(InputConv2d(3, 32, 3, padding=1, rng=1, name="conv1"))
    net.add(MaxPool2d(2, name="pool1"))
    net.add(BinaryConv2d(32, 64, 3, padding=1, rng=2, name="conv2"))
    net.add(MaxPool2d(2, name="pool2"))
    net.add(BinaryConv2d(64, 128, 3, padding=1, rng=3, name="conv3"))
    net.add(MaxPool2d(2, name="pool3"))
    net.add(Flatten(name="flatten"))
    net.add(BinaryDense(4 * 4 * 128, 256, rng=4, name="fc1"))
    net.add(BinaryDense(256, 10, output_binary=False, rng=5, name="fc2"))
    return net


def main() -> None:
    network = build_network()
    print(network.summary())
    print()

    rng = np.random.default_rng(0)
    images = rng.integers(0, 256, size=(4, 32, 32, 3)).astype(np.uint8)

    engine = PhoneBitEngine(snapdragon_855())
    report = engine.run(network, images)

    predictions = np.argmax(report.output.data, axis=1)
    print(f"predictions for the batch: {predictions.tolist()}")
    print(f"simulated latency on {report.device_name}: {report.latency_ms:.2f} ms "
          f"({report.fps:.1f} FPS)")
    print(f"model size (compressed): {network.compressed_size_bytes() / 2**20:.2f} MiB, "
          f"{network.compression_ratio():.1f}x smaller than float32")
    print("\nper-layer simulated times (ms):")
    for name, ms in report.layer_times_ms.items():
        print(f"  {name:<10s} {ms:8.3f}")


if __name__ == "__main__":
    main()
