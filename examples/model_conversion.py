"""Model conversion and the .pbit format, on the paper's benchmark networks.

Builds binarized AlexNet / YOLOv2-Tiny / VGG16 (synthetic weights, reduced
input resolution so the build is quick), reports the Table II model-size
comparison computed from the real layer inventories, and round-trips the
smallest one through the compressed ``.pbit`` format to show the on-disk
size matches the compressed in-memory size.

Run with:  python examples/model_conversion.py
"""

import io

from repro.core import model_format
from repro.models import (
    build_phonebit_network,
    get_model_config,
    model_size_report,
    yolov2_tiny_config,
)


def main() -> None:
    print("Table II model sizes (computed from the architecture definitions):")
    print(f"{'model':<14s}{'full (MB)':>12s}{'BNN (MB)':>12s}{'ratio':>8s}"
          f"{'paper full':>12s}{'paper BNN':>12s}")
    paper = {"AlexNet": (249.5, 16.3), "YOLOv2 Tiny": (63.4, 2.4), "VGG16": (553.4, 32.1)}
    for name in ("AlexNet", "YOLOv2 Tiny", "VGG16"):
        report = model_size_report(get_model_config(name))
        full_paper, bnn_paper = paper[name]
        print(f"{name:<14s}{report['full_precision_mb']:12.1f}{report['bnn_mb']:12.1f}"
              f"{report['compression_ratio']:7.1f}x{full_paper:12.1f}{bnn_paper:12.1f}")

    print("\nbuilding binarized YOLOv2-Tiny (reduced 160x160 input) with synthetic "
          "weights and writing it to the .pbit format...")
    config = yolov2_tiny_config(input_size=160)
    network = build_phonebit_network(config, rng=0)
    buffer = io.BytesIO()
    model_format.save_network(network, buffer)
    on_disk_mb = len(buffer.getvalue()) / 2**20
    in_memory_mb = network.compressed_size_bytes() / 2**20
    float_mb = network.full_precision_size_bytes() / 2**20
    print(f"  layers: {len(network)}  parameters: {network.param_count().total:,}")
    print(f"  .pbit file size: {on_disk_mb:.2f} MiB "
          f"(compressed parameters: {in_memory_mb:.2f} MiB, float32: {float_mb:.1f} MiB)")

    buffer.seek(0)
    restored = model_format.load_network(buffer)
    print(f"  reloaded network: {restored.name!r} with {len(restored)} layers — "
          f"round trip OK")


if __name__ == "__main__":
    main()
