"""Table I — mobile device configurations.

Regenerates the device table from the simulator presets and benchmarks the
preset construction (trivially fast; included for completeness so every
table in the paper has a benchmark target).
"""

from repro.analysis import experiments


def bench(benchmark=None):
    result = experiments.table1_devices()
    print()
    print(result.table())
    return result


def test_table1_devices(benchmark):
    result = benchmark(experiments.table1_devices)
    print()
    print(result.table())
    assert {row["SOC"] for row in result.rows} == {"Snapdragon 820", "Snapdragon 855"}


if __name__ == "__main__":
    bench()
