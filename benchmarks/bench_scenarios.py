"""Scenario benchmark: SLO attainment under replayable multi-tenant load.

Drives the cluster through the bundled multi-tenant scenarios
(``repro.serving.scenarios``) with SLO-tiered admission enabled, plus one
deliberately overloaded flash-crowd pass whose peak offered rate must land
at >=2x the cluster's measured goodput.  One record per scenario:

    {op: "scenario", model, shape, scenario, seed, req_per_s, offered,
     completed, shed, deadline_expired, failed, retries, hedges, respawns,
     per_class: {cls: {offered, completed, shed, deadline_expired, failed,
     within_budget, attainment, shed_share}}, interactive_attainment,
     batch_shed_share, overload_factor, digest, replay_identical,
     bit_identical, host_cpus}

``req_per_s`` is goodput (completed over wall).  ``replay_identical``
asserts the determinism contract: recompiling the schedule from the same
seed reproduces a byte-identical arrival schedule (digest) and the run
accounted for exactly the scheduled arrivals, per class.  Every completed
output is verified bit-identical to a fault-free single-process baseline
over the same images.  ``--require-slo`` turns the scheduling claim into
a gate: on the overloaded flash crowd the interactive tier must keep
>=95% SLO attainment while the batch tier absorbs >=80% of all sheds.

The overload pass is self-calibrating (same pattern as
``open_loop_sweep``): the cluster's closed-loop capacity is measured
first, then the scenario is built so its peak offered rate lands at
``--overload-x`` (default 2.5x) that capacity — interactive demand
pinned at ~45% of capacity (an admission policy can only protect a tier
whose own demand fits), the batch flood carrying the rest.  A fixed
rate would silently stop overloading (or start drowning the interactive
tier) as hosts get faster or slower.

Usage:

    PYTHONPATH=src python benchmarks/bench_scenarios.py \
        --json benchmarks/BENCH_scenarios.json
    PYTHONPATH=src python benchmarks/bench_scenarios.py --quick \
        --require-slo --json -
"""

import argparse
import sys

#: label -> (bundled spec name, rate_scale).  The overload label is
#: special-cased in main(): its spec is built from measured capacity.
SCENARIOS = (
    ("steady_mix", ("steady_mix", 1.0)),
    ("diurnal", ("diurnal", 1.0)),
    ("flash_crowd", ("flash_crowd", 1.0)),
    ("multi_burst", ("multi_burst", 1.0)),
    ("slow_drip", ("slow_drip", 1.0)),
    ("flash_crowd_overload", None),
)

QUICK_SCENARIOS = ("steady_mix", "flash_crowd_overload")


def calibrate_capacity(args) -> float:
    """Measured open-loop goodput (req/s) of the bench's cluster shape.

    Two stages: the closed-loop ceiling first (no admission or arrival
    pacing in the way), then a deliberately saturating open-loop probe
    through the scenario machinery itself at 2.5x that ceiling — the
    probe's goodput is the capacity the overload factor is judged
    against, measured the same way the overload run will be.
    """
    from repro.models.zoo import get_serving_config
    from repro.serving.cluster import ClusterService
    from repro.serving.loadgen import run_closed_loop, synthetic_images
    from repro.serving.scenarios import ScenarioSpec, run_scenario

    images = synthetic_images(get_serving_config("MicroCNN").input_shape,
                              64, seed=args.seed)
    cluster = ClusterService(models=["MicroCNN"], workers=args.workers,
                             max_batch_size=args.batch)
    try:
        run_closed_loop(cluster, "MicroCNN", images[:16])  # warm
        ceiling = run_closed_loop(cluster, "MicroCNN", images).achieved_rps
    finally:
        cluster.close()
    probe = ScenarioSpec.parse(f"probe,slo=batch,rate={2.5 * ceiling:.3f}",
                               name="calibrate")
    result = run_scenario(probe, seed=args.seed, workers=args.workers,
                          duration_s=min(1.0, args.duration_s),
                          max_batch_size=args.batch,
                          max_outstanding=4 * args.batch)
    return max(1.0, result.goodput_rps)


def overload_spec(capacity_rps: float, overload_x: float):
    """Flash-crowd overload shaped to the measured capacity.

    Interactive peaks at ~45% of capacity and standard rides at ~10% —
    both fit, so the SLO claim is about *admission*, not magic — while
    the batch tenant's flood makes the aggregate peak ``overload_x``
    times what the fleet can serve.
    """
    from repro.serving.scenarios import ScenarioSpec

    web_peak = max(2.0, 0.45 * capacity_rps)
    app_rate = max(1.0, 0.10 * capacity_rps)
    jobs_rate = max(1.0, overload_x * capacity_rps - web_peak - app_rate)
    return ScenarioSpec.parse(
        f"web,slo=interactive,curve=flash_crowd,rate={web_peak / 4.0:.3f},"
        f"peak={web_peak:.3f},at=0.35,width=0.25;"
        f"app,slo=standard,rate={app_rate:.3f};"
        f"jobs,slo=batch,rate={jobs_rate:.3f}",
        name="flash_crowd_overload",
    )


def peak_offered_rps(spec, rate_scale: float) -> float:
    """The scenario's worst-instant aggregate offered rate (req/s)."""
    total = 0.0
    for tenant in spec.tenants:
        rate = tenant.rate_rps
        if tenant.curve in ("diurnal", "flash_crowd", "burst"):
            rate = tenant.effective_peak_rps
        total += rate
    return total * rate_scale


def bench_scenario(args, label: str, spec, rate_scale: float) -> dict:
    from repro.models.zoo import get_serving_config
    from repro.serving.cluster import usable_cpus
    from repro.serving.scenarios import run_scenario

    result = run_scenario(
        spec,
        seed=args.seed,
        workers=args.workers,
        duration_s=args.duration_s,
        rate_scale=rate_scale,
        max_batch_size=args.batch,
        # 4x instead of the default 2x admission window: the interactive
        # tier's guaranteed headroom (window minus the batch tier's bound)
        # must cover its own burst peaks, or transient full-window
        # collisions shed the very tier the bench claims to protect.
        max_outstanding=4 * args.batch,
    )
    # Determinism contract: the same seed recompiles to a byte-identical
    # schedule, and the run accounted for exactly those arrivals per
    # tenant — offered counts are schedule facts, not runtime accidents.
    schedule = spec.compile(args.seed, duration_s=args.duration_s,
                            rate_scale=rate_scale)
    offered_by_class = {name: count for name, count
                        in schedule.per_class_offered().items() if count}
    run_by_class = {c.slo: c.offered for c in result.classes}
    replay_identical = (schedule.digest() == result.digest
                        and offered_by_class == run_by_class)
    goodput = result.goodput_rps
    peak_rps = peak_offered_rps(spec, rate_scale)
    models = spec.model_names()
    return {
        "op": "scenario",
        "model": models[0],
        "shape": list(get_serving_config(models[0]).input_shape),
        "scenario": label,
        "seed": args.seed,
        "workers": args.workers,
        "duration_s": result.duration_s,
        "rate_scale": rate_scale,
        "req_per_s": round(goodput, 2),
        "peak_offered_rps": round(peak_rps, 1),
        "overload_factor": round(peak_rps / goodput, 2) if goodput else None,
        "offered": result.offered,
        "completed": result.completed,
        "shed": result.shed,
        "deadline_expired": result.deadline_expired,
        "failed": result.failed,
        "retries": result.retries,
        "hedges": result.hedges,
        "respawns": result.respawns,
        "per_class": {
            c.slo: {
                "offered": c.offered,
                "completed": c.completed,
                "shed": c.shed,
                "deadline_expired": c.deadline_expired,
                "failed": c.failed,
                "within_budget": c.within_budget,
                "attainment": round(c.attainment, 4),
                "shed_share": round(c.shed_share, 4),
            }
            for c in result.classes
        },
        "interactive_attainment": next(
            (round(c.attainment, 4) for c in result.classes
             if c.slo == "interactive"), None),
        "batch_shed_share": next(
            (round(c.shed_share, 4) for c in result.classes
             if c.slo == "batch"), None),
        "digest": result.digest,
        "replay_identical": replay_identical,
        "host_cpus": usable_cpus(),
        "bit_identical": result.bit_identical,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--batch", type=int, default=8,
                        help="per-worker micro-batch bound (small on "
                             "purpose: the overload pass must actually "
                             "overload the admission window)")
    parser.add_argument("--duration-s", type=float, default=2.5,
                        help="scenario duration per pass")
    parser.add_argument("--seed", type=int, default=42,
                        help="arrival-schedule seed (same seed -> "
                             "byte-identical schedules)")
    parser.add_argument("--scenarios", default=None,
                        help="comma-separated subset of scenario labels "
                             f"(default: all of "
                             f"{','.join(n for n, _ in SCENARIOS)})")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="write records to PATH ('-' for stdout)")
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke mode: steady_mix + the overloaded "
                             "flash crowd only, shorter duration")
    parser.add_argument("--require-slo", action="store_true",
                        help="fail unless the overloaded flash crowd keeps "
                             "interactive attainment >= the floor while "
                             "batch absorbs >= the shed floor, at >= the "
                             "overload floor")
    parser.add_argument("--attainment-floor", type=float, default=0.95,
                        metavar="FRAC",
                        help="interactive SLO-attainment floor under "
                             "overload (default 0.95)")
    parser.add_argument("--batch-shed-floor", type=float, default=0.80,
                        metavar="FRAC",
                        help="minimum fraction of all sheds the batch tier "
                             "must absorb under overload (default 0.80)")
    parser.add_argument("--overload-floor", type=float, default=2.0,
                        metavar="X",
                        help="minimum peak-offered-rate / goodput ratio for "
                             "the overload pass to count (default 2.0)")
    parser.add_argument("--overload-x", type=float, default=2.5,
                        metavar="X",
                        help="target peak-offered-rate as a multiple of the "
                             "calibrated closed-loop capacity for the "
                             "overload pass (default 2.5)")
    args = parser.parse_args(argv)

    if args.quick:
        args.duration_s = min(args.duration_s, 2.0)
    wanted = (QUICK_SCENARIOS if args.quick and args.scenarios is None
              else tuple(s.strip() for s in args.scenarios.split(","))
              if args.scenarios else tuple(n for n, _ in SCENARIOS))
    by_label = dict(SCENARIOS)
    unknown = sorted(set(wanted) - set(by_label))
    if unknown:
        parser.error(f"unknown scenarios {unknown}; "
                     f"expected among {sorted(by_label)}")

    from repro.serving.loadgen import write_sweep_records
    from repro.serving.scenarios import BUNDLED_SCENARIOS

    records = []
    for label in wanted:
        if by_label[label] is None:
            capacity = calibrate_capacity(args)
            spec = overload_spec(capacity, args.overload_x)
            rate_scale = 1.0
            print(f"{label}: calibrated capacity {capacity:.1f} rps -> "
                  f"peak offered {peak_offered_rps(spec, 1.0):.1f} rps "
                  f"({args.overload_x:.1f}x)")
        else:
            spec_name, rate_scale = by_label[label]
            spec, capacity = BUNDLED_SCENARIOS[spec_name], None
        record = bench_scenario(args, label, spec, rate_scale)
        if capacity is not None:
            record["capacity_rps"] = round(capacity, 2)
        records.append(record)
        attain = record["interactive_attainment"]
        shed_share = record["batch_shed_share"]
        print(
            f"{label:<22s} goodput {record['req_per_s']:7.1f} rps  "
            f"offered {record['offered']:5d}  shed {record['shed']:4d}  "
            f"interactive attain "
            f"{'-' if attain is None else format(attain, '.3f')}  "
            f"batch shed share "
            f"{'-' if shed_share is None else format(shed_share, '.3f')}  "
            f"overload {record['overload_factor']}x  "
            f"replay={record['replay_identical']}  "
            f"bit_identical={record['bit_identical']}"
        )
    if args.json:
        print(write_sweep_records(records, args.json))

    failures = []
    for record in records:
        label = record["scenario"]
        if not record["bit_identical"]:
            failures.append(f"{label}: completed outputs diverged from the "
                            "single-process baseline")
        if not record["replay_identical"]:
            failures.append(f"{label}: same seed did not reproduce the "
                            "arrival schedule / per-class offered counts")
        for slo, bucket in record["per_class"].items():
            accounted = (bucket["completed"] + bucket["shed"]
                         + bucket["deadline_expired"] + bucket["failed"])
            if accounted != bucket["offered"]:
                failures.append(f"{label}: {slo} accounting loses requests "
                                f"({accounted} != {bucket['offered']})")
    if args.require_slo:
        overload = [r for r in records
                    if r["scenario"] == "flash_crowd_overload"]
        if not overload:
            failures.append("--require-slo needs the flash_crowd_overload "
                            "scenario in the run")
        for record in overload:
            if (record["overload_factor"] or 0) < args.overload_floor:
                failures.append(
                    f"flash_crowd_overload: peak offered load is only "
                    f"{record['overload_factor']}x goodput "
                    f"(need >= {args.overload_floor}x to claim overload)")
            if record["shed"] == 0:
                failures.append("flash_crowd_overload: no sheds at all — "
                                "the admission window never saturated")
            attain = record["interactive_attainment"] or 0.0
            if attain < args.attainment_floor:
                failures.append(
                    f"flash_crowd_overload: interactive attainment "
                    f"{attain:.3f} below the {args.attainment_floor:.2f} "
                    "floor")
            shed_share = record["batch_shed_share"] or 0.0
            if record["shed"] and shed_share < args.batch_shed_floor:
                failures.append(
                    f"flash_crowd_overload: batch absorbed only "
                    f"{shed_share:.3f} of sheds (floor "
                    f"{args.batch_shed_floor:.2f})")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
