"""Elastic scheduling benchmark: spike absorption + pinned hetero fleets.

Two modes, one BENCH trajectory file:

**Spike absorption** (default) offers a phased Poisson load to an
autoscaled single-model cluster — a warm trickle, then a shed-inducing
spike sliced into fixed windows, then idle — and records how the control
loop behaves as a trajectory, not just a pass/fail:

    {op: "autoscale_spike", model, shape, phase, slice, offered_rps,
     offered, shed, shed_rate, workers, req_per_s}       (one per slice)
    {op: "autoscale_absorb", model, shape, req_per_s, capacity_rps,
     time_to_absorb_s, steady_shed_rate, grow_events, peak_workers,
     time_to_shrink_s, host_cpus, bit_identical}         (summary)

The spike is offered *below* one worker's calibrated capacity but with an
admission window (``--max-outstanding``) tight enough that Poisson bursts
shed on a one-worker fleet: growing the fleet widens the fleet-wide
window, so "absorbed" is observable on any host — including a 1–2 CPU CI
runner where extra processes add no real compute.  ``time_to_absorb_s``
is the spike time elapsed until the first zero-shed slice after a grow;
``steady_shed_rate`` is the last slice's shed rate (~0 when absorbed).
After the spike, the bench waits for the idle shrink back to
``min_workers`` and records ``time_to_shrink_s``.

**Heterogeneous fleet** (``--hetero``) serves a big model next to a small
one (VGG16 + MicroCNN by default) twice — pinned (big model on 1 worker,
small on the rest) vs attach-everything — and records startup, per-worker
attach surface and per-model closed-loop throughput:

    {op: "autoscale_hetero", model, variant, shape, workers, req_per_s,
     startup_s, ready_ms_max, attach_bytes_mean, attach_bytes_max,
     store_bytes, host_cpus, bit_identical}

Every completed output in both modes is verified bit-identical to the
single-process service over the same published artifact — an elasticity
result can never hide a correctness drift.

Usage:

    PYTHONPATH=src python benchmarks/bench_autoscale.py \
        --json benchmarks/BENCH_autoscale.json --require-absorb
    PYTHONPATH=src python benchmarks/bench_autoscale.py --hetero --json -
    PYTHONPATH=src python benchmarks/bench_autoscale.py --quick \
        --hetero --require-absorb --require-pinned-win --json -
"""

import argparse
import sys
import time


def _bit_identical(outputs_by_index, baseline_rows) -> bool:
    import numpy as np

    return all(np.array_equal(row, baseline_rows[index])
               for index, row in outputs_by_index.items())


def spike_records(args) -> list:
    from repro.models.zoo import get_serving_config
    from repro.serving import AutoscaleConfig, ClusterService, run_spike_load
    from repro.serving.cluster import usable_cpus
    from repro.serving.loadgen import run_closed_loop, synthetic_images

    shape = get_serving_config(args.model).input_shape
    images = synthetic_images(shape, 32, seed=args.seed)
    config = AutoscaleConfig(
        min_workers=1, max_workers=args.max_workers,
        grow_consecutive=2, shrink_consecutive=8, idle_utilization=0.25,
        cooldown_s=0.5, interval_s=0.05,
    )
    cluster = ClusterService(
        models=(args.model,), workers=1, max_batch_size=args.batch,
        max_wait_ms=args.max_wait_ms, max_outstanding=args.max_outstanding,
        heartbeat_interval_s=0.1, autoscale=config,
    )
    records = []
    try:
        baseline = cluster.baseline_service()
        try:
            base = run_closed_loop(baseline, args.model, images)
        finally:
            baseline.close()
        # One-worker capacity calibrates the spike: bursty but sub-capacity,
        # so absorption is about admission windows, not raw compute.
        calibrate = run_closed_loop(cluster, args.model, images)
        capacity_rps = images.shape[0] / calibrate.wall_s
        warm_rps = max(1.0, args.warm_x * capacity_rps)
        spike_rps = max(2.0, args.spike_x * capacity_rps)

        slices = args.spike_slices
        phases = [("warm", warm_rps, args.slice_s)]
        phases += [("spike", spike_rps, args.slice_s)] * slices
        result = run_spike_load(cluster, args.model, images, phases,
                                seed=args.seed)

        workers_now = len(cluster.router.workers())
        time_to_absorb_s = None
        elapsed = 0.0
        for index, phase in enumerate(result.phases[1:]):
            if phase.shed == 0 and time_to_absorb_s is None and index > 0:
                time_to_absorb_s = elapsed
            elapsed += phase.duration_s
            records.append({
                "op": "autoscale_spike", "model": args.model,
                "shape": list(shape), "phase": phase.name, "slice": index,
                "offered_rps": round(phase.offered_rps, 2),
                "offered": phase.offered, "shed": phase.shed,
                "shed_rate": round(phase.shed_rate, 4),
                "workers": workers_now,
                "req_per_s": round(phase.admitted / phase.duration_s, 2),
            })
        steady_shed_rate = result.phases[-1].shed_rate
        grow_events = sum(1 for e in cluster.autoscale_events
                          if e.action == "grow")
        peak_workers = max((e.workers_target for e in cluster.autoscale_events
                            if e.action == "grow"),
                           default=len(cluster.router.workers()))

        # Idle now: wait for the shrink back to min_workers.
        t0 = time.perf_counter()
        time_to_shrink_s = None
        deadline = t0 + args.shrink_timeout_s
        while time.perf_counter() < deadline:
            if len(cluster.router.workers()) <= config.min_workers:
                time_to_shrink_s = time.perf_counter() - t0
                break
            time.sleep(0.05)

        records.append({
            "op": "autoscale_absorb", "model": args.model,
            "shape": list(shape),
            "req_per_s": round(result.completed / result.wall_s, 2),
            "capacity_rps": round(capacity_rps, 2),
            "time_to_absorb_s": (None if time_to_absorb_s is None
                                 else round(time_to_absorb_s, 3)),
            "steady_shed_rate": round(steady_shed_rate, 4),
            "grow_events": grow_events,
            "peak_workers": peak_workers,
            "time_to_shrink_s": (None if time_to_shrink_s is None
                                 else round(time_to_shrink_s, 3)),
            "host_cpus": usable_cpus(),
            "bit_identical": _bit_identical(result.outputs, base.outputs),
        })
    finally:
        cluster.close()
    return records


def hetero_records(args) -> list:
    from repro.models.zoo import get_serving_config
    from repro.serving import ClusterService
    from repro.serving.cluster import usable_cpus
    from repro.serving.loadgen import run_closed_loop, synthetic_images

    big, small = args.hetero_models
    workers = args.hetero_workers
    pins = {big: 1, small: max(1, workers - 1)}
    records = []
    for variant, pin_models in (("pinned", pins), ("attach_everything", None)):
        t0 = time.perf_counter()
        cluster = ClusterService(
            models=(big, small), workers=workers,
            max_batch_size=args.batch, max_wait_ms=args.max_wait_ms,
            pin_models=pin_models,
        )
        startup_s = time.perf_counter() - t0
        try:
            detail = cluster.worker_detail()
            attach_bytes = [d["attach_bytes"] for d in detail.values()]
            ready_ms_max = max(d["ready_ms"] or 0.0 for d in detail.values())
            store_bytes = sum(h.nbytes
                              for h in cluster.store.handles().values())
            for model in (big, small):
                shape = get_serving_config(model).input_shape
                images = synthetic_images(shape, args.hetero_requests,
                                          seed=args.seed)
                baseline = cluster.baseline_service()
                try:
                    base = run_closed_loop(baseline, model, images)
                finally:
                    baseline.close()
                run = run_closed_loop(cluster, model, images)
                import numpy as np

                records.append({
                    "op": "autoscale_hetero", "model": model,
                    "variant": variant, "shape": list(shape),
                    "workers": workers,
                    "req_per_s": round(images.shape[0] / run.wall_s, 2),
                    "startup_s": round(startup_s, 3),
                    "ready_ms_max": round(ready_ms_max, 1),
                    "attach_bytes_mean": int(sum(attach_bytes)
                                             / len(attach_bytes)),
                    "attach_bytes_max": max(attach_bytes),
                    "store_bytes": store_bytes,
                    "host_cpus": usable_cpus(),
                    "bit_identical": bool(
                        np.array_equal(run.outputs, base.outputs)),
                })
        finally:
            cluster.close()
    return records


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--model", default="MicroCNN",
                        help="serving-zoo model for the spike mode")
    parser.add_argument("--batch", type=int, default=16,
                        help="per-worker micro-batch bound")
    parser.add_argument("--max-wait-ms", type=float, default=2.0)
    parser.add_argument("--max-outstanding", type=int, default=4,
                        help="per-worker admission window; tight on purpose "
                             "so Poisson bursts shed on a one-worker fleet")
    parser.add_argument("--max-workers", type=int, default=3,
                        help="autoscaler ceiling for the spike mode")
    parser.add_argument("--warm-x", type=float, default=0.2,
                        help="warm-phase offered load as a fraction of the "
                             "calibrated one-worker capacity")
    parser.add_argument("--spike-x", type=float, default=0.75,
                        help="spike offered load as a fraction of capacity "
                             "(sub-capacity: absorption = admission window)")
    parser.add_argument("--spike-slices", type=int, default=10,
                        help="number of fixed-duration spike windows")
    parser.add_argument("--slice-s", type=float, default=0.5,
                        help="duration of each phase window in seconds")
    parser.add_argument("--shrink-timeout-s", type=float, default=30.0,
                        help="how long to wait for the idle shrink")
    parser.add_argument("--hetero", action="store_true",
                        help="also run the pinned-vs-attach-everything "
                             "heterogeneous fleet comparison")
    parser.add_argument("--hetero-models", default="VGG16,MicroCNN",
                        help="big,small model pair for --hetero")
    parser.add_argument("--hetero-workers", type=int, default=3)
    parser.add_argument("--hetero-requests", type=int, default=24,
                        help="closed-loop requests per model in --hetero")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="write records to PATH ('-' for stdout)")
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke mode: fewer slices, small hetero pair")
    parser.add_argument("--require-absorb", action="store_true",
                        help="fail unless the spike shed, the fleet grew, "
                             "the steady-state shed rate returned to ~0 and "
                             "the idle fleet shrank back")
    parser.add_argument("--require-pinned-win", action="store_true",
                        help="fail unless the pinned fleet beats "
                             "attach-everything on per-worker attach bytes "
                             "(and records bit-identical outputs)")
    args = parser.parse_args(argv)

    if args.quick:
        args.spike_slices = min(args.spike_slices, 8)
        args.hetero_models = "TinyCNN,MicroCNN"
        args.hetero_requests = min(args.hetero_requests, 16)
    args.hetero_models = tuple(
        m.strip() for m in str(args.hetero_models).split(",") if m.strip()
    )
    if len(args.hetero_models) != 2:
        parser.error("--hetero-models takes exactly two models (big,small)")

    from repro.serving.loadgen import write_sweep_records

    records = spike_records(args)
    summary = records[-1]
    print(
        f"spike: capacity {summary['capacity_rps']} rps, "
        f"{summary['grow_events']} grow(s) to {summary['peak_workers']} "
        f"workers, absorb {summary['time_to_absorb_s']} s, steady shed "
        f"{summary['steady_shed_rate']:.1%}, shrink "
        f"{summary['time_to_shrink_s']} s, "
        f"bit_identical={summary['bit_identical']}"
    )
    if args.hetero:
        hetero = hetero_records(args)
        records.extend(hetero)
        for record in hetero:
            print(
                f"hetero[{record['variant']}] {record['model']}: "
                f"{record['req_per_s']} rps, startup {record['startup_s']} s, "
                f"attach bytes mean {record['attach_bytes_mean']} "
                f"(store {record['store_bytes']}), "
                f"bit_identical={record['bit_identical']}"
            )
    if args.json:
        print(write_sweep_records(records, args.json))

    failures = []
    if not all(r.get("bit_identical", True) for r in records):
        failures.append("outputs diverged from the single-process service")
    if args.require_absorb:
        spiked = sum(r["shed"] for r in records
                     if r["op"] == "autoscale_spike")
        if spiked == 0:
            failures.append("the spike never shed (nothing to absorb; "
                            "lower --max-outstanding or raise --spike-x)")
        if summary["grow_events"] == 0:
            failures.append("the autoscaler never grew")
        if summary["steady_shed_rate"] > 0.02:
            failures.append(
                f"steady-state shed rate {summary['steady_shed_rate']:.1%} "
                "did not return to ~0"
            )
        if summary["time_to_shrink_s"] is None:
            failures.append("the idle fleet never shrank back")
    if args.require_pinned_win and args.hetero:
        by_variant = {}
        for record in records:
            if record["op"] == "autoscale_hetero":
                by_variant[record["variant"]] = record
        pinned = by_variant["pinned"]
        everything = by_variant["attach_everything"]
        if pinned["attach_bytes_mean"] >= everything["attach_bytes_mean"]:
            failures.append("pinned fleet did not cut mean attach bytes")
        if pinned["store_bytes"] < 2**20:
            # Tiny stores warm in single-digit milliseconds; the timing
            # comparison is pure noise there (the smoke pair in --quick).
            print(
                f"SKIP warm-time gate: store is {pinned['store_bytes']} "
                "bytes (< 1 MiB); run with a big model (e.g. VGG16) to "
                "make worker warm time measurable",
                file=sys.stderr,
            )
        elif pinned["ready_ms_max"] >= everything["ready_ms_max"]:
            failures.append("pinned fleet did not cut worker warm time")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
