"""Cluster scaling benchmark (wall-clock, not simulated).

Measures the sharded multi-process :class:`repro.serving.ClusterService`
against the single-process :class:`InferenceService` serving the *same
shared-memory artifact*, across a sweep of worker counts, and emits
machine-readable JSON records for the BENCH trajectory:

    {op, model, workers, batch, shape, requests, req_per_s, requests_per_s,
     single_process_rps, speedup_vs_single_process, latency_p50_ms,
     latency_p99_ms, mean_batch_size, shm_attach_ms_mean, store_bytes,
     host_cpus, bit_identical}

Every sweep point first verifies that cluster outputs are bit-identical to
the single-process service (both sides attach the same published ``.pbit``
bytes, so equality is exact, not approximate), so a throughput win can
never hide a correctness drift.

The ``--min-speedup`` floor applies to the *largest* worker count's
``speedup_vs_single_process``.  Process-level scaling needs physical
parallelism: on a host with a single usable CPU the cluster can only
measure its IPC overhead (every record carries ``host_cpus`` so trajectory
tooling can tell these runs apart), so the floor is checked only when the
host has at least ``--gate-min-cpus`` usable CPUs and is otherwise reported
as skipped.  CI runs on multi-core runners, where the gate is real.

Usage:

    PYTHONPATH=src python benchmarks/bench_cluster_scaling.py \
        --json benchmarks/BENCH_cluster_scaling.json --min-speedup 2
"""

import argparse
import sys


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--model", default="MicroCNN",
                        help="serving-zoo model to benchmark")
    parser.add_argument("--workers", default="1,2,4,8",
                        help="comma-separated worker counts")
    parser.add_argument("--batch", type=int, default=64,
                        help="offered batch level (per-worker micro-batch bound)")
    parser.add_argument("--requests", type=int, default=256,
                        help="requests per sweep point")
    parser.add_argument("--max-wait-ms", type=float, default=2.0)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--mp-context", default=None,
                        help="multiprocessing start method (fork/spawn)")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="write records to PATH ('-' for stdout)")
    parser.add_argument("--quick", action="store_true",
                        help="fewer requests / worker counts (CI smoke mode)")
    parser.add_argument("--min-speedup", type=float, default=None,
                        help="fail unless the largest worker count reaches this "
                             "speedup over the single-process service")
    parser.add_argument("--gate-min-cpus", type=int, default=2,
                        help="skip the --min-speedup gate below this many "
                             "usable host CPUs (scaling needs parallelism)")
    args = parser.parse_args(argv)

    from repro.serving.cluster import scaling_sweep, scaling_table, usable_cpus
    from repro.serving.loadgen import write_sweep_records

    if args.quick:
        worker_counts = (1, 8)
        requests = min(args.requests, 128)
    else:
        worker_counts = tuple(
            int(w) for w in str(args.workers).split(",") if w.strip()
        )
        requests = args.requests

    records = scaling_sweep(
        model=args.model,
        worker_counts=worker_counts,
        offered_batch=args.batch,
        requests=requests,
        max_wait_ms=args.max_wait_ms,
        seed=args.seed,
        mp_context=args.mp_context,
    )

    print(scaling_table(
        records,
        title=f"Cluster scaling — {args.model} (offered batch {args.batch}, "
              "outputs bit-identical to the single-process service)",
    ))
    if args.json:
        print(write_sweep_records(records, args.json))

    if args.min_speedup is not None:
        cpus = usable_cpus()
        if cpus < args.gate_min_cpus:
            print(
                f"SKIP speedup gate: host has {cpus} usable CPU(s) < "
                f"{args.gate_min_cpus}; process-level scaling cannot be "
                "measured here (bit-exactness was still verified)",
                file=sys.stderr,
            )
            return 0
        top = max(records, key=lambda r: r["workers"])
        if top["speedup_vs_single_process"] < args.min_speedup:
            print(
                f"FAIL: cluster speedup at {top['workers']} workers is "
                f"{top['speedup_vs_single_process']:.2f}x < required "
                f"{args.min_speedup:.2f}x",
                file=sys.stderr,
            )
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
