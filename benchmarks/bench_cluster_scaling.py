"""Cluster scaling + overload benchmark (wall-clock, not simulated).

Two modes, one BENCH trajectory file:

**Closed loop** (default) measures the sharded
:class:`repro.serving.ClusterService` against the single-process
:class:`InferenceService` serving the *same published artifact*, across a
sweep of worker counts and transports (``--transports pipe,uds,tcp``), and
emits JSON records:

    {op: "cluster_scaling", model, transport, workers, batch, shape,
     requests, req_per_s, requests_per_s, single_process_rps,
     speedup_vs_single_process, latency_p50_ms, latency_p99_ms,
     mean_batch_size, shm_attach_ms_mean, store_bytes, host_cpus,
     bit_identical}

**Open loop** (``--open-loop``) measures what *overload* looks like: the
cluster's closed-loop capacity is calibrated first, then non-blocking
Poisson arrivals are offered at each ``--overload-x`` multiple of it.
Backpressure never stalls the arrival clock, so the admission controller's
shed / retry-after behaviour becomes a recorded trajectory instead of just
a test assertion:

    {op: "cluster_open_loop", model, transport, workers, batch, shape,
     requests, offered_rps, offered_x_capacity, capacity_rps, req_per_s,
     completed, shed, shed_rate, retry_after_ms_mean, latency_p50_ms,
     latency_p99_ms, host_cpus, bit_identical}

Every closed-loop sweep point verifies cluster outputs bit-identical to
the single-process service; every open-loop point verifies each *completed*
response bit-identical to the engine's direct ``run_batch`` rows — a
throughput or overload result can never hide a correctness drift.

The ``--min-speedup`` floor applies to the largest worker count of the
**first** listed transport (pipe by default; socket transports carry real
framing overhead and are compared, not gated).  Process-level scaling
needs physical parallelism: the floor is checked only when the host has at
least ``--gate-min-cpus`` usable CPUs (every record carries ``host_cpus``
so trajectory tooling can tell single-CPU runs apart).

Usage:

    PYTHONPATH=src python benchmarks/bench_cluster_scaling.py \
        --json benchmarks/BENCH_cluster_scaling.json --min-speedup 2
    PYTHONPATH=src python benchmarks/bench_cluster_scaling.py \
        --open-loop --transports pipe,uds,tcp --json -
"""

import argparse
import sys


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--model", default="MicroCNN",
                        help="serving-zoo model to benchmark")
    parser.add_argument("--workers", default="1,2,4,8",
                        help="comma-separated worker counts (closed loop); "
                             "open loop uses the largest")
    parser.add_argument("--transports", default="pipe",
                        help="comma-separated transports to compare "
                             "(pipe,uds,tcp); the speedup gate applies to "
                             "the first")
    parser.add_argument("--batch", type=int, default=64,
                        help="offered batch level (per-worker micro-batch bound)")
    parser.add_argument("--requests", type=int, default=256,
                        help="requests per sweep point")
    parser.add_argument("--max-wait-ms", type=float, default=2.0)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--mp-context", default=None,
                        help="multiprocessing start method for the pipe "
                             "transport (fork/spawn)")
    parser.add_argument("--open-loop", action="store_true",
                        help="record the shed/retry-after overload "
                             "trajectory instead of closed-loop scaling")
    parser.add_argument("--overload-x", default="0.5,1.5,3.0",
                        help="open-loop offered-load multiples of the "
                             "calibrated closed-loop capacity")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="write records to PATH ('-' for stdout)")
    parser.add_argument("--quick", action="store_true",
                        help="fewer requests / worker counts (CI smoke mode)")
    parser.add_argument("--min-speedup", type=float, default=None,
                        help="fail unless the first transport's largest "
                             "worker count reaches this speedup over the "
                             "single-process service (closed loop only)")
    parser.add_argument("--gate-min-cpus", type=int, default=2,
                        help="skip the --min-speedup gate below this many "
                             "usable host CPUs (scaling needs parallelism)")
    args = parser.parse_args(argv)

    from repro.serving.cluster import (
        open_loop_sweep,
        open_loop_table,
        scaling_sweep,
        scaling_table,
        usable_cpus,
    )
    from repro.serving.loadgen import write_sweep_records

    transports = tuple(
        t.strip() for t in str(args.transports).split(",") if t.strip()
    )
    if args.quick:
        # Socket workers are full subprocesses (interpreter + NumPy import
        # per worker), so the smoke sweep keeps their counts small.
        worker_counts = (1, 8) if transports == ("pipe",) else (1, 2)
        requests = min(args.requests, 128)
        overload_x = (0.5, 3.0)
    else:
        worker_counts = tuple(
            int(w) for w in str(args.workers).split(",") if w.strip()
        )
        requests = args.requests
        overload_x = tuple(
            float(x) for x in str(args.overload_x).split(",") if x.strip()
        )

    records = []
    if args.open_loop:
        for transport in transports:
            records.extend(open_loop_sweep(
                model=args.model,
                workers=max(worker_counts),
                offered_batch=args.batch,
                requests=requests,
                overload_x=overload_x,
                max_wait_ms=args.max_wait_ms,
                seed=args.seed,
                mp_context=args.mp_context,
                transport=transport,
            ))
        print(open_loop_table(
            records,
            title=f"Cluster open-loop overload — {args.model} "
                  f"({max(worker_counts)} workers; completed outputs "
                  "bit-identical to run_batch)",
        ))
    else:
        for transport in transports:
            records.extend(scaling_sweep(
                model=args.model,
                worker_counts=worker_counts,
                offered_batch=args.batch,
                requests=requests,
                max_wait_ms=args.max_wait_ms,
                seed=args.seed,
                mp_context=args.mp_context,
                transport=transport,
            ))
        print(scaling_table(
            records,
            title=f"Cluster scaling — {args.model} (offered batch "
                  f"{args.batch}, transports {'/'.join(transports)}, outputs "
                  "bit-identical to the single-process service)",
        ))
    if args.json:
        print(write_sweep_records(records, args.json))

    if args.min_speedup is not None and not args.open_loop:
        cpus = usable_cpus()
        if cpus < args.gate_min_cpus:
            print(
                f"SKIP speedup gate: host has {cpus} usable CPU(s) < "
                f"{args.gate_min_cpus}; process-level scaling cannot be "
                "measured here (bit-exactness was still verified)",
                file=sys.stderr,
            )
            return 0
        gated = [r for r in records if r["transport"] == transports[0]]
        top = max(gated, key=lambda r: r["workers"])
        if top["speedup_vs_single_process"] < args.min_speedup:
            print(
                f"FAIL: cluster speedup at {top['workers']} workers over "
                f"{top['transport']} is "
                f"{top['speedup_vs_single_process']:.2f}x < required "
                f"{args.min_speedup:.2f}x",
                file=sys.stderr,
            )
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
