"""Table II — model size (MB) and the accuracy-gap proxy.

The model-size half is exact (it only depends on the architectures and the
storage precisions).  The accuracy half of Table II cannot be reproduced
without CIFAR-10/VOC training runs; the proxy benchmark trains the same
small MLP in float and binary form on synthetic data and reports both
accuracies, reproducing the *shape* (binary slightly below float).
"""

from repro.analysis import experiments


def test_table2_model_size(benchmark):
    result = benchmark(experiments.table2_model_size)
    print()
    print(result.table())
    by_model = {row["model"]: row for row in result.rows}
    # Compression ratios in the paper are 15–27×; ours land in the same range.
    for row in by_model.values():
        assert row["compression_ratio"] > 15
    # YOLOv2-Tiny's binarized size matches the paper almost exactly (2.4 MB).
    assert abs(by_model["YOLOv2 Tiny"]["bnn_mb"] - 2.4) < 0.3


def test_table2_accuracy_proxy(benchmark):
    result = benchmark.pedantic(
        experiments.table2_accuracy_proxy,
        kwargs={"train_size": 256, "test_size": 96, "image_size": 16, "epochs": 8},
        iterations=1,
        rounds=1,
    )
    print()
    print(result.table())
    assert result.binary_accuracy > result.chance_accuracy
    assert result.float_accuracy >= result.binary_accuracy - 0.05


if __name__ == "__main__":
    print(experiments.table2_model_size().table())
    print()
    print(experiments.table2_accuracy_proxy().table())
