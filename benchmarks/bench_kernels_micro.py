"""Micro-benchmarks of the actual NumPy kernels (wall-clock, not simulated).

These complement the cost-model benchmarks with real measurements on this
machine.  Every fast-path kernel is timed against the seed's naive
formulation (byte-LUT popcount gather, shift-and-sum bit packing, broadcast
xor/popcount convolution, per-pixel pooling loops), and the outputs are
asserted bit-exact before timing, so a speedup here is never bought with a
correctness regression.

Two entry points:

* ``pytest benchmarks/bench_kernels_micro.py`` — pytest-benchmark fixtures
  for interactive comparison runs.
* ``python benchmarks/bench_kernels_micro.py --json out.json`` — standalone
  runner emitting machine-readable JSON records
  ``{op, shape, ns_per_op, naive_ns_per_op, speedup_vs_naive}`` so the
  BENCH_*.json trajectory can track kernel performance across PRs.
"""

import argparse
import json
import sys
import time

import numpy as np

from repro.core import binary_conv, bitpack
from repro.core.branchless import branchless_binarize
from repro.core.fusion import fused_binarize
from repro.core.tensor import conv_output_size, pad_spatial_nhwc

_CHANNELS = 256
_COUT = 64
_SIZE = 14


# --------------------------------------------------------------------------
# Naive (seed) reference implementations the fast paths are measured against.
# --------------------------------------------------------------------------

def naive_pack_bits(bits: np.ndarray, word_size: int = 64, axis: int = -1) -> np.ndarray:
    """Seed packing: expand to uint64, 64-wide shift, then sum-reduce."""
    dtype = bitpack.word_dtype(word_size)
    moved = np.moveaxis(np.asarray(bits), axis, -1)
    length = moved.shape[-1]
    n_words = bitpack.words_per_channel(length, word_size)
    padded_len = n_words * word_size
    if padded_len != length:
        pad = np.zeros(moved.shape[:-1] + (padded_len - length,), dtype=moved.dtype)
        moved = np.concatenate([moved, pad], axis=-1)
    grouped = moved.reshape(moved.shape[:-1] + (n_words, word_size)).astype(np.uint64)
    shifts = np.arange(word_size, dtype=np.uint64)
    packed = (grouped << shifts).sum(axis=-1, dtype=np.uint64).astype(dtype)
    return np.ascontiguousarray(np.moveaxis(packed, -1, axis))


def naive_im2col(x: np.ndarray, kernel_size: int, stride: int, padding: int) -> np.ndarray:
    """Seed im2col: one strided-copy assignment per (kh, kw) tap."""
    n, h, w, c = x.shape
    oh = conv_output_size(h, kernel_size, stride, padding)
    ow = conv_output_size(w, kernel_size, stride, padding)
    padded = pad_spatial_nhwc(x, padding, value=0)
    patches = np.empty((n, oh, ow, kernel_size, kernel_size, c), dtype=x.dtype)
    for kh in range(kernel_size):
        for kw in range(kernel_size):
            patches[:, :, :, kh, kw, :] = padded[
                :, kh:kh + stride * oh:stride, kw:kw + stride * ow:stride, :
            ]
    return patches.reshape(n, oh, ow, kernel_size * kernel_size * c)


def naive_binary_conv2d_packed(
    x_packed: np.ndarray,
    weights_packed: np.ndarray,
    true_channels: int,
    kernel_size: int,
    stride: int = 1,
    padding: int = 0,
) -> np.ndarray:
    """Seed binary conv: full-broadcast temporaries + LUT popcount."""
    cout = weights_packed.shape[0]
    n = x_packed.shape[0]
    patches = naive_im2col(x_packed, kernel_size, stride, padding)
    _, oh, ow, k = patches.shape
    flat_patches = patches.reshape(-1, k)
    flat_filters = weights_packed.reshape(cout, -1)
    length = kernel_size * kernel_size * true_channels
    out = np.empty((flat_patches.shape[0], cout), dtype=np.int64)
    for start in range(0, cout, 64):
        stop = min(start + 64, cout)
        disagree = bitpack.popcount_lut(
            np.bitwise_xor(
                flat_patches[:, None, :], flat_filters[None, start:stop, :]
            )
        ).sum(axis=-1, dtype=np.int64)
        out[:, start:stop] = length - 2 * disagree
    return out.reshape(n, oh, ow, cout)


def naive_max_pool_packed(data: np.ndarray, pool_size: int, stride: int) -> np.ndarray:
    """Seed pooling: a Python loop per output pixel."""
    n, h, w, c = data.shape
    oh = conv_output_size(h, pool_size, stride, 0)
    ow = conv_output_size(w, pool_size, stride, 0)
    out = np.empty((n, oh, ow, c), dtype=data.dtype)
    for i in range(oh):
        for j in range(ow):
            window = data[:, i * stride:i * stride + pool_size,
                          j * stride:j * stride + pool_size, :]
            out[:, i, j, :] = np.bitwise_or.reduce(window.reshape(n, -1, c), axis=1)
    return out


def fast_max_pool_packed(data: np.ndarray, pool_size: int, stride: int) -> np.ndarray:
    """The shipped pooling kernel (window view + one OR reduction)."""
    from repro.core.layers.pooling import _pool_windows

    return np.bitwise_or.reduce(
        _pool_windows(data, pool_size, stride), axis=(-2, -1)
    )


# --------------------------------------------------------------------------
# pytest-benchmark fixtures (interactive comparison runs).
# --------------------------------------------------------------------------

try:
    import pytest
except ImportError:  # pragma: no cover - standalone runner without pytest
    pytest = None

if pytest is not None:

    @pytest.fixture(scope="module")
    def conv_inputs():
        rng = np.random.default_rng(0)
        x_bits = rng.integers(0, 2, size=(1, _SIZE, _SIZE, _CHANNELS), dtype=np.uint8)
        w_bits = rng.integers(0, 2, size=(3, 3, _CHANNELS, _COUT), dtype=np.uint8)
        return x_bits, w_bits

    def test_binary_conv_kernel(benchmark, conv_inputs):
        x_bits, w_bits = conv_inputs
        x_packed = binary_conv.pack_activations(x_bits)
        w_packed = binary_conv.pack_weights(w_bits)
        out = benchmark(
            binary_conv.binary_conv2d_packed, x_packed, w_packed, _CHANNELS, 3, 1, 1
        )
        assert out.shape == (1, _SIZE, _SIZE, _COUT)

    def test_binary_conv_kernel_naive(benchmark, conv_inputs):
        x_bits, w_bits = conv_inputs
        x_packed = binary_conv.pack_activations(x_bits)
        w_packed = binary_conv.pack_weights(w_bits)
        out = benchmark(
            naive_binary_conv2d_packed, x_packed, w_packed, _CHANNELS, 3, 1, 1
        )
        assert out.shape == (1, _SIZE, _SIZE, _COUT)

    def test_float_conv_reference(benchmark, conv_inputs):
        x_bits, w_bits = conv_inputs
        x_values = 2.0 * x_bits.astype(np.float64) - 1.0
        w_values = 2.0 * w_bits.astype(np.float64) - 1.0
        out = benchmark(
            binary_conv.conv2d_float_nhwc, x_values, w_values, 1, 1, -1.0
        )
        assert out.shape == (1, _SIZE, _SIZE, _COUT)

    def test_bit_packing_throughput(benchmark):
        rng = np.random.default_rng(1)
        bits = rng.integers(0, 2, size=(1, 52, 52, 512), dtype=np.uint8)
        packed = benchmark(bitpack.pack_bits, bits, 64, 3)
        assert packed.shape == (1, 52, 52, 8)

    def test_popcount_throughput(benchmark):
        rng = np.random.default_rng(4)
        words = rng.integers(0, 2**63, size=(1 << 20,), dtype=np.uint64)
        counts = benchmark(bitpack.popcount, words)
        assert counts.shape == words.shape

    def test_branchless_binarize_throughput(benchmark):
        rng = np.random.default_rng(2)
        x1 = rng.integers(-200, 200, size=(1, 52, 52, 512)).astype(np.float64)
        threshold = rng.normal(size=512)
        gamma = rng.choice([-1.0, 1.0], size=512)
        bits = benchmark(branchless_binarize, x1, threshold, gamma)
        np.testing.assert_array_equal(bits, fused_binarize(x1, threshold, gamma))

    def test_input_bitplane_conv_kernel(benchmark):
        rng = np.random.default_rng(3)
        image = rng.integers(0, 256, size=(1, 32, 32, 3)).astype(np.uint8)
        w_bits = rng.integers(0, 2, size=(3, 3, 3, 16), dtype=np.uint8)
        w_packed = binary_conv.pack_weights(w_bits, word_size=32)
        out = benchmark(
            binary_conv.input_conv2d_bitplanes, image, w_packed, 3, 3, 1, 1
        )
        assert out.shape == (1, 32, 32, 16)


# --------------------------------------------------------------------------
# Standalone JSON runner (BENCH trajectory + CI smoke test).
# --------------------------------------------------------------------------

def _time_ns(func, *args, repeats: int = 10) -> float:
    """Median wall-clock nanoseconds per call."""
    func(*args)  # warm-up
    samples = []
    for _ in range(repeats):
        t0 = time.perf_counter_ns()
        func(*args)
        samples.append(time.perf_counter_ns() - t0)
    return float(np.median(samples))


def run_suite(repeats: int = 10, quick: bool = False) -> list:
    """Measure every fast kernel against its naive baseline.

    Returns JSON-serializable records; asserts fast/naive agreement first.
    """
    rng = np.random.default_rng(0)
    size = 10 if quick else _SIZE
    records = []

    def record(op, shape, fast, naive, fast_args, naive_args):
        fast_out = fast(*fast_args)
        naive_out = naive(*naive_args)
        np.testing.assert_array_equal(fast_out, naive_out)
        fast_ns = _time_ns(fast, *fast_args, repeats=repeats)
        naive_ns = _time_ns(naive, *naive_args, repeats=repeats)
        records.append(
            {
                "op": op,
                "shape": list(shape),
                "ns_per_op": fast_ns,
                "naive_ns_per_op": naive_ns,
                "speedup_vs_naive": naive_ns / fast_ns if fast_ns else float("inf"),
            }
        )

    # popcount: hardware/SWAR vs byte-LUT gather.
    n_words = 1 << (16 if quick else 20)
    words = rng.integers(0, 2**63, size=(n_words,), dtype=np.uint64)
    record(
        "popcount_u64", (n_words,),
        bitpack.popcount, bitpack.popcount_lut, (words,), (words,),
    )

    # pack_bits: packbits+view vs shift-and-sum.
    bits = rng.integers(0, 2, size=(1, 52, 52, 512), dtype=np.uint8)
    record(
        "pack_bits_w64", bits.shape,
        lambda b: bitpack.pack_bits(b, 64, 3), lambda b: naive_pack_bits(b, 64, 3),
        (bits,), (bits,),
    )

    # packed binary conv: tiled GEMM + strided patches vs broadcast + LUT.
    x_bits = rng.integers(0, 2, size=(1, size, size, _CHANNELS), dtype=np.uint8)
    w_bits = rng.integers(0, 2, size=(3, 3, _CHANNELS, _COUT), dtype=np.uint8)
    x_packed = binary_conv.pack_activations(x_bits)
    w_packed = binary_conv.pack_weights(w_bits)
    record(
        "binary_conv2d_packed_3x3", x_bits.shape,
        binary_conv.binary_conv2d_packed, naive_binary_conv2d_packed,
        (x_packed, w_packed, _CHANNELS, 3, 1, 1),
        (x_packed, w_packed, _CHANNELS, 3, 1, 1),
    )

    # pointwise conv: zero-copy patch path.
    w1_bits = rng.integers(0, 2, size=(1, 1, _CHANNELS, _COUT), dtype=np.uint8)
    w1_packed = binary_conv.pack_weights(w1_bits)
    record(
        "binary_conv2d_packed_1x1", x_bits.shape,
        binary_conv.binary_conv2d_packed, naive_binary_conv2d_packed,
        (x_packed, w1_packed, _CHANNELS, 1, 1, 0),
        (x_packed, w1_packed, _CHANNELS, 1, 1, 0),
    )

    # packed max pooling: window view vs per-pixel loop.
    pool_bits = rng.integers(0, 2, size=(1, 52, 52, 512), dtype=np.uint8)
    pool_packed = binary_conv.pack_activations(pool_bits)
    record(
        "max_pool_packed_2x2", pool_packed.shape,
        fast_max_pool_packed, naive_max_pool_packed,
        (pool_packed, 2, 2), (pool_packed, 2, 2),
    )

    return records


def run_batch_suite(repeats: int = 3, quick: bool = False) -> list:
    """Measure batched engine execution against sequential single-image runs."""
    from repro.core.engine import PhoneBitEngine
    from repro.core.layers import BinaryConv2d, BinaryDense, Flatten, InputConv2d, MaxPool2d
    from repro.core.network import Network

    rng = np.random.default_rng(7)
    net = Network("bench-tiny", input_shape=(16, 16, 3), input_dtype="uint8")
    net.add(InputConv2d(3, 16, 3, padding=1, rng=11, name="conv1"))
    net.add(MaxPool2d(2, name="pool1"))
    net.add(BinaryConv2d(16, 32, 3, padding=1, rng=12, name="conv2"))
    net.add(MaxPool2d(2, name="pool2"))
    net.add(Flatten(name="flatten"))
    net.add(BinaryDense(4 * 4 * 32, 10, output_binary=False, rng=13, name="fc"))

    batch = rng.integers(0, 256, size=(4 if quick else 8, 16, 16, 3)).astype(np.uint8)
    engine = PhoneBitEngine()
    engine.run_batch(net, batch)  # warm-up (packs weights once)

    def sequential():
        for i in range(batch.shape[0]):
            engine.run(net, batch[i : i + 1])

    def batched():
        engine.run_batch(net, batch)

    seq_ns = _time_ns(sequential, repeats=repeats)
    batch_ns = _time_ns(batched, repeats=repeats)
    n = batch.shape[0]
    return [
        {
            "op": "engine_run_batch",
            "shape": list(batch.shape),
            "ns_per_op": batch_ns / n,
            "naive_ns_per_op": seq_ns / n,
            "speedup_vs_naive": seq_ns / batch_ns if batch_ns else float("inf"),
        }
    ]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="write records to PATH ('-' for stdout)")
    parser.add_argument("--repeats", type=int, default=10,
                        help="timing repetitions per kernel (median is kept)")
    parser.add_argument("--quick", action="store_true",
                        help="smaller shapes / fewer repeats (CI smoke mode)")
    parser.add_argument("--min-speedup", type=float, default=None,
                        help="fail if the packed conv speedup drops below this")
    args = parser.parse_args(argv)

    repeats = 3 if args.quick else args.repeats
    records = run_suite(repeats=repeats, quick=args.quick)
    records += run_batch_suite(repeats=max(2, repeats // 3), quick=args.quick)

    width = max(len(r["op"]) for r in records)
    print(f"{'op':<{width}}  {'ns/op':>12}  {'naive ns/op':>12}  {'speedup':>8}")
    for r in records:
        print(
            f"{r['op']:<{width}}  {r['ns_per_op']:>12,.0f}  "
            f"{r['naive_ns_per_op']:>12,.0f}  {r['speedup_vs_naive']:>7.1f}x"
        )

    if args.json:
        payload = json.dumps({"records": records}, indent=2)
        if args.json == "-":
            print(payload)
        else:
            with open(args.json, "w") as fh:
                fh.write(payload + "\n")
            print(f"wrote {args.json}")

    if args.min_speedup is not None:
        conv = next(r for r in records if r["op"] == "binary_conv2d_packed_3x3")
        if conv["speedup_vs_naive"] < args.min_speedup:
            print(
                f"FAIL: conv speedup {conv['speedup_vs_naive']:.1f}x "
                f"< required {args.min_speedup:.1f}x",
                file=sys.stderr,
            )
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
