"""Micro-benchmarks of the actual NumPy kernels (wall-clock, not simulated).

These complement the cost-model benchmarks with real measurements on this
machine: the packed xor/popcount convolution versus the float reference
convolution on the same layer, and bit packing / fused binarization
throughput.  The binary kernel operates on 64× fewer words than the float
kernel has MACs, which is the mechanism behind the paper's speedups; the
wall-clock ratio here depends on NumPy/BLAS, so only the direction is
asserted, not a factor.
"""

import numpy as np
import pytest

from repro.core import binary_conv, bitpack
from repro.core.branchless import branchless_binarize
from repro.core.fusion import fused_binarize

_CHANNELS = 256
_COUT = 64
_SIZE = 14


@pytest.fixture(scope="module")
def conv_inputs():
    rng = np.random.default_rng(0)
    x_bits = rng.integers(0, 2, size=(1, _SIZE, _SIZE, _CHANNELS), dtype=np.uint8)
    w_bits = rng.integers(0, 2, size=(3, 3, _CHANNELS, _COUT), dtype=np.uint8)
    return x_bits, w_bits


def test_binary_conv_kernel(benchmark, conv_inputs):
    x_bits, w_bits = conv_inputs
    x_packed = binary_conv.pack_activations(x_bits)
    w_packed = binary_conv.pack_weights(w_bits)
    out = benchmark(
        binary_conv.binary_conv2d_packed, x_packed, w_packed, _CHANNELS, 3, 1, 1
    )
    assert out.shape == (1, _SIZE, _SIZE, _COUT)


def test_float_conv_reference(benchmark, conv_inputs):
    x_bits, w_bits = conv_inputs
    x_values = 2.0 * x_bits.astype(np.float64) - 1.0
    w_values = 2.0 * w_bits.astype(np.float64) - 1.0
    out = benchmark(
        binary_conv.conv2d_float_nhwc, x_values, w_values, 1, 1, -1.0
    )
    assert out.shape == (1, _SIZE, _SIZE, _COUT)


def test_bit_packing_throughput(benchmark):
    rng = np.random.default_rng(1)
    bits = rng.integers(0, 2, size=(1, 52, 52, 512), dtype=np.uint8)
    packed = benchmark(bitpack.pack_bits, bits, 64, 3)
    assert packed.shape == (1, 52, 52, 8)


def test_branchless_binarize_throughput(benchmark):
    rng = np.random.default_rng(2)
    x1 = rng.integers(-200, 200, size=(1, 52, 52, 512)).astype(np.float64)
    threshold = rng.normal(size=512)
    gamma = rng.choice([-1.0, 1.0], size=512)
    bits = benchmark(branchless_binarize, x1, threshold, gamma)
    np.testing.assert_array_equal(bits, fused_binarize(x1, threshold, gamma))


def test_input_bitplane_conv_kernel(benchmark):
    rng = np.random.default_rng(3)
    image = rng.integers(0, 256, size=(1, 32, 32, 3)).astype(np.uint8)
    w_bits = rng.integers(0, 2, size=(3, 3, 3, 16), dtype=np.uint8)
    w_packed = binary_conv.pack_weights(w_bits, word_size=32)
    out = benchmark(
        binary_conv.input_conv2d_bitplanes, image, w_packed, 3, 3, 1, 1
    )
    assert out.shape == (1, 32, 32, 16)
