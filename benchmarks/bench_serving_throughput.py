"""Serving throughput benchmark (wall-clock, not simulated).

Measures the async micro-batching inference service against the pre-serving
client path — one ``engine.run`` call per request — across several offered
batch levels, and emits machine-readable JSON records for the BENCH
trajectory:

    {op, model, offered_batch, requests, requests_per_s, sequential_rps,
     sequential_forward_rps, speedup_vs_sequential, speedup_vs_forward_only,
     latency_p50_ms, latency_p99_ms, mean_batch_size, batches, bit_identical}

The ``--min-speedup`` floor applies to ``speedup_vs_sequential`` — the
client path as shipped before serving existed, per-request ``engine.run``
including its per-request cost estimate.  ``sequential_forward_rps`` /
``speedup_vs_forward_only`` (per-request execution with the estimate
disabled) are recorded alongside so the trajectory separates the
micro-batching win from the skipped-estimate win.

Every level first verifies that the scheduler's micro-batched outputs are
bit-identical to unbatched execution of the same inputs, so a throughput
win can never hide a correctness drift.

Usage:

    PYTHONPATH=src python benchmarks/bench_serving_throughput.py \
        --json BENCH_serving_throughput.json --min-speedup 3
"""

import argparse
import sys


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--model", default="MicroCNN",
                        help="serving-zoo model to benchmark")
    parser.add_argument("--batches", default="1,4,16,64",
                        help="comma-separated offered batch levels")
    parser.add_argument("--requests", type=int, default=96,
                        help="requests per offered-load level")
    parser.add_argument("--max-wait-ms", type=float, default=2.0)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="write records to PATH ('-' for stdout)")
    parser.add_argument("--quick", action="store_true",
                        help="fewer requests / levels (CI smoke mode)")
    parser.add_argument("--min-speedup", type=float, default=None,
                        help="fail unless some offered batch >= 16 reaches this "
                             "speedup over sequential engine.run")
    args = parser.parse_args(argv)

    from repro.serving import sweep_table, throughput_sweep, write_sweep_records

    if args.quick:
        batches = (1, 16, 64)
        requests = min(args.requests, 64)
    else:
        batches = tuple(int(b) for b in str(args.batches).split(",") if b.strip())
        requests = args.requests

    records = throughput_sweep(
        model=args.model,
        offered_batches=batches,
        requests_per_level=requests,
        max_wait_ms=args.max_wait_ms,
        seed=args.seed,
    )

    print(sweep_table(records, title=f"Serving throughput — {args.model}"))
    if args.json:
        print(write_sweep_records(records, args.json))

    if args.min_speedup is not None:
        eligible = [r for r in records if r["offered_batch"] >= 16]
        if not eligible:
            print("FAIL: no offered batch level >= 16 was measured",
                  file=sys.stderr)
            return 1
        best = max(r["speedup_vs_sequential"] for r in eligible)
        if best < args.min_speedup:
            print(
                f"FAIL: best serving speedup at offered batch >= 16 is "
                f"{best:.2f}x < required {args.min_speedup:.2f}x",
                file=sys.stderr,
            )
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
