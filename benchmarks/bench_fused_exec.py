"""Fused execution-plan benchmark (wall-clock, not simulated).

Measures end-to-end ``PhoneBitEngine.run_batch`` with the compiled fused
execution plan (:mod:`repro.core.plan`: integer-threshold fused kernels,
buffer arena, threaded tile execution) against the layer-by-layer
interpreter (``use_plan=False``), and emits machine-readable JSON records
for the BENCH trajectory:

    {op, model, input_size, batch, threads, fused_ms_per_image,
     unfused_ms_per_image, speedup, fused_steps, plan_steps,
     arena_bytes_per_image, bit_identical}

Every model first verifies that the plan's outputs are bit-identical to the
unfused path, so a throughput win can never hide a correctness drift;
``--exact-only`` stops after that check (the CI single-thread exactness
step).  The paper's benchmark networks run at reduced input resolutions by
default so the sweep finishes in seconds on a CPU host; ``--full`` restores
the Table II/III sizes (224²/227²).

Usage:

    PYTHONPATH=src REPRO_NUM_THREADS=4 python benchmarks/bench_fused_exec.py \
        --json benchmarks/BENCH_fused_exec.json --min-speedup 1.5

    # CI smoke (smaller models/batches, enforced floor):
    PYTHONPATH=src REPRO_NUM_THREADS=4 python benchmarks/bench_fused_exec.py \
        --quick --json fused-smoke.json --min-speedup 1.5
    PYTHONPATH=src REPRO_NUM_THREADS=1 python benchmarks/bench_fused_exec.py \
        --quick --exact-only
"""

import argparse
import dataclasses
import sys
import time

#: Reduced per-model input resolutions used unless ``--full`` is given.
#: Chosen so every network keeps a valid shape pyramid (the dense heads
#: infer their fan-in from the actual flatten shape).
REDUCED_SIZES = {
    "VGG16": 64,
    "AlexNet": 127,
    "YOLOv2 Tiny": 64,
    "TinyCNN": 32,
    "MicroCNN": 8,
}

QUICK_MODELS = ("VGG16:48", "AlexNet:67", "MicroCNN")
DEFAULT_MODELS = ("VGG16", "AlexNet", "TinyCNN", "MicroCNN")


def _resolve_models(specs, full):
    """Parse ``name[:size]`` specs into (name, input_size) pairs."""
    from repro.models.zoo import get_serving_config

    resolved = []
    for spec in specs:
        name, _, size = str(spec).partition(":")
        name = name.strip()
        config = get_serving_config(name)  # canonical spelling + validation
        if size:
            input_size = int(size)
        elif full:
            input_size = config.input_shape[0]
        else:
            input_size = REDUCED_SIZES.get(config.name, config.input_shape[0])
        resolved.append((config.name, input_size))
    return resolved


def measure(model, input_size, batch, reps, threads, chunk_bytes, seed,
            exact_only=False):
    """Benchmark one model; returns a JSON record."""
    import numpy as np

    from repro.core import plan as plan_mod
    from repro.core.engine import PhoneBitEngine
    from repro.models.zoo import build_phonebit_network, get_serving_config

    config = get_serving_config(model)
    if input_size != config.input_shape[0]:
        config = dataclasses.replace(
            config, input_shape=(input_size, input_size, 3)
        )
    network = build_phonebit_network(config, rng=seed)
    rng = np.random.default_rng(seed)
    images = rng.integers(
        0, 256, size=(batch,) + network.input_shape
    ).astype(np.uint8)

    fused = PhoneBitEngine(use_plan=True, num_threads=threads)
    unfused = PhoneBitEngine(use_plan=False)
    kwargs = dict(collect_estimate=False, chunk_bytes=chunk_bytes)

    # Bit-exactness first (this also warms both paths).
    fused_out = fused.run_batch(network, images, **kwargs).output.data
    unfused_out = unfused.run_batch(network, images, **kwargs).output.data
    np.testing.assert_array_equal(fused_out, unfused_out)
    plan = plan_mod.get_plan(network)

    record = {
        "op": "fused_exec",
        "model": model,
        "input_size": input_size,
        "batch": batch,
        "threads": threads if threads is not None else plan_mod.default_num_threads(),
        "fused_steps": plan.fused_step_count,
        "plan_steps": len(plan.steps),
        "arena_bytes_per_image": plan.per_sample_bytes,
        "bit_identical": True,
    }
    if exact_only:
        return record

    def best_ms(engine):
        times = []
        for _ in range(reps):
            t0 = time.perf_counter()
            engine.run_batch(network, images, **kwargs)
            times.append(time.perf_counter() - t0)
        return min(times) * 1000.0

    fused_ms = best_ms(fused)
    unfused_ms = best_ms(unfused)
    record.update(
        fused_ms_per_image=fused_ms / batch,
        unfused_ms_per_image=unfused_ms / batch,
        # Canonical trajectory alias (tools/check_bench_schema.py): one
        # fused end-to-end inference, in nanoseconds per image.
        ns_per_op=(fused_ms / batch) * 1e6,
        speedup=unfused_ms / fused_ms if fused_ms > 0 else float("inf"),
    )
    return record


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--models", default=None,
                        help="comma-separated zoo models, each optionally "
                             "'name:input_size' (default: "
                             + ",".join(DEFAULT_MODELS) + ")")
    parser.add_argument("--full", action="store_true",
                        help="use the paper's full input resolutions "
                             "(slow on CPU hosts)")
    parser.add_argument("--batch", type=int, default=4,
                        help="images per run_batch call")
    parser.add_argument("--reps", type=int, default=3,
                        help="timing repetitions (best-of)")
    parser.add_argument("--threads", type=int, default=None,
                        help="fused tile threads (default: REPRO_NUM_THREADS "
                             "or all cores)")
    parser.add_argument("--chunk-hint", default=None,
                        help="working-set byte budget for chunking (e.g. 64M)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="write records to PATH ('-' for stdout)")
    parser.add_argument("--quick", action="store_true",
                        help="smaller models/batch (CI smoke mode)")
    parser.add_argument("--exact-only", action="store_true",
                        help="only verify fused outputs are bit-identical "
                             "to the unfused path, skip timing")
    parser.add_argument("--min-speedup", type=float, default=None,
                        help="fail unless every measured model reaches this "
                             "fused-vs-unfused speedup")
    args = parser.parse_args(argv)

    from repro.cli import parse_byte_size

    chunk_bytes = parse_byte_size(args.chunk_hint) if args.chunk_hint else None
    if args.models:
        specs = [m for m in args.models.split(",") if m.strip()]
    elif args.quick:
        specs = list(QUICK_MODELS)
    else:
        specs = list(DEFAULT_MODELS)
    batch = min(args.batch, 2) if args.quick else args.batch
    reps = min(args.reps, 2) if args.quick else args.reps

    records = []
    for model, input_size in _resolve_models(specs, args.full):
        record = measure(
            model, input_size, batch, reps, args.threads, chunk_bytes,
            args.seed, exact_only=args.exact_only,
        )
        records.append(record)
        if args.exact_only:
            print(f"{model}@{input_size}: bit-identical "
                  f"({record['fused_steps']}/{record['plan_steps']} steps fused)")
        else:
            print(
                f"{model}@{input_size}: fused {record['fused_ms_per_image']:8.2f} "
                f"ms/img  unfused {record['unfused_ms_per_image']:8.2f} ms/img  "
                f"speedup {record['speedup']:.2f}x  "
                f"({record['fused_steps']}/{record['plan_steps']} steps fused, "
                f"{record['threads']} threads)"
            )

    if args.json:
        from repro.serving import write_sweep_records

        print(write_sweep_records(records, args.json))

    if args.min_speedup is not None and not args.exact_only:
        worst = min(records, key=lambda r: r["speedup"])
        if worst["speedup"] < args.min_speedup:
            print(
                f"FAIL: {worst['model']} fused speedup {worst['speedup']:.2f}x "
                f"< required {args.min_speedup:.2f}x",
                file=sys.stderr,
            )
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
