"""Table IV — power (mW) and energy efficiency (FPS/W) for YOLOv2-Tiny.

The paper measures these with the Trepn profiler on the Snapdragon 820
phone; the benchmark regenerates them from the energy model and checks the
orderings the paper highlights: PhoneBit draws the least power of any
GPU/CPU execution and its FPS-per-watt is more than an order of magnitude
above every baseline.
"""

from repro.analysis import experiments


def test_table4_energy(benchmark):
    table = benchmark(experiments.table4_energy)
    print()
    print(table.table())

    phonebit = table.reports["PhoneBit"]
    assert phonebit is not None
    for name, report in table.reports.items():
        if report is None or name == "PhoneBit":
            continue
        # PhoneBit beats every baseline by a wide margin; the int8 CPU
        # interpreter is the closest competitor (as in the paper, where it
        # is still 24x behind).
        factor = 3 if "Quant" in name else 10
        assert phonebit.fps_per_watt > factor * report.fps_per_watt, name
    cpu_reports = [r for n, r in table.reports.items() if r is not None and "CPU" in n]
    assert all(phonebit.average_power_mw < r.average_power_mw for r in cpu_reports)
    # Paper reports ~105 FPS/W for PhoneBit; the simulation lands in the
    # same order of magnitude.
    assert 20 < phonebit.fps_per_watt < 500


def test_trepn_like_profile(benchmark, sd820):
    """Benchmark the sampling profiler over a one-second PhoneBit run."""
    from repro.frameworks.phonebit_runner import PhoneBitRunner
    from repro.gpusim.energy import EnergyModel
    from repro.gpusim.profiler import TrepnLikeProfiler
    from repro.models import get_model_config

    result = PhoneBitRunner(sd820).run_model(get_model_config("YOLOv2 Tiny"))
    profiler = TrepnLikeProfiler(EnergyModel(sd820), sample_interval_ms=100)
    trace = benchmark(profiler.profile, result.run_cost, 1.0)
    assert trace.average_power_mw > 0
    print(f"\nTrepn-like trace: {len(trace.samples)} samples, "
          f"avg {trace.average_power_mw:.0f} mW, peak {trace.peak_power_mw:.0f} mW")


if __name__ == "__main__":
    print(experiments.table4_energy().table())
