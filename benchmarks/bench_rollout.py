"""Rollout benchmark: zero-downtime live rollout under sustained load.

Three drill scenarios ride the same open-loop Poisson load through a
cluster while a content-addressed v2 artifact is published mid-stream:

* ``commit`` — a byte-distinct but output-identical v2 canaries cleanly
  and commits.  The headline claim: **zero shed, zero lost requests**
  across the full publish → canary → promote → commit sequence.
* ``divergent`` — a v2 with genuinely different weights; the canary
  catches the first mismatched answer and auto-rolls back while every
  client answer keeps coming from the stable digest.
* ``operator`` — a healthy canary aborted by operator command
  (``cluster.rollback``), the ``repro.cli rollback`` path.

A fourth scenario family, ``cache_uniformity``, replays one repeated
request stream against 1/2/4-worker clusters and records the
cluster-wide response-cache hit/miss counts — the cache fronts the
router, so the counts must be **identical at every fleet size** (hit
rates are not routing-shaped).

One record per scenario:

    {op: "rollout", model, shape, scenario, seed, workers, req_per_s,
     offered, completed, shed, failed, phase, canary_samples,
     canary_mismatches, timeline_events, host_cpus, bit_identical}

(``cache_uniformity`` records carry ``hits``/``misses`` instead of the
rollout phase fields.)  Every completed output is verified bit-identical
to a fault-free single-process baseline — a rollout number can never
hide a correctness drift.

Usage:

    PYTHONPATH=src python benchmarks/bench_rollout.py \
        --json benchmarks/BENCH_rollout.json
    PYTHONPATH=src python benchmarks/bench_rollout.py --quick \
        --require-zero-shed --require-uniform-cache --json -
"""

import argparse
import sys
import time

DRILL_SCENARIOS = ("commit", "divergent", "operator")

#: Fleet sizes the cache-uniformity pass sweeps.
CACHE_WORKER_COUNTS = (1, 2, 4)
QUICK_CACHE_WORKER_COUNTS = (1, 2)


def run_drill(args, scenario: str) -> dict:
    from repro.models.zoo import get_serving_config
    from repro.serving.cluster import usable_cpus
    from repro.serving.loadgen import run_rollout_drill
    from repro.serving.rollout import RolloutConfig

    shape = get_serving_config(args.model).input_shape
    operator = scenario == "operator"
    config = RolloutConfig(
        canary_fraction=args.canary_fraction,
        # The operator drill parks the canary on an unreachable quota so
        # the explicit rollback is what terminates it.
        min_canary_samples=(10**9 if operator else args.min_samples),
    )
    result = run_rollout_drill(
        model=args.model,
        workers=args.workers,
        requests=args.requests,
        offered_rps=args.rps,
        seed=args.seed,
        divergent=scenario == "divergent",
        operator_rollback=operator,
        publish_at=args.publish_at,
        rollout=config,
        max_batch_size=args.batch,
        cache_capacity=0,  # rollout drills measure the dispatch path
    )
    return {
        "op": "rollout",
        "model": args.model,
        "shape": list(shape),
        "scenario": scenario,
        "seed": args.seed,
        "workers": args.workers,
        "req_per_s": round(result.goodput_rps, 2),
        "offered": result.offered,
        "completed": result.completed,
        "shed": result.shed,
        "failed": result.failed,
        "phase": result.phase,
        "rollback_reason": result.rollback_reason,
        "canary_samples": result.canary.get("samples", 0),
        "canary_mismatches": result.canary.get("mismatches", 0),
        "timeline_events": len(result.timeline),
        "host_cpus": usable_cpus(),
        "bit_identical": result.bit_identical,
    }


def run_cache_uniformity(args, workers: int) -> dict:
    from repro.models.zoo import get_serving_config
    from repro.serving.cluster import ClusterService, usable_cpus
    from repro.serving.loadgen import run_closed_loop, synthetic_images

    shape = get_serving_config(args.model).input_shape
    images = synthetic_images(shape, args.cache_images, seed=args.seed)
    offered = args.cache_images * args.cache_repeats
    cluster = ClusterService(
        models=(args.model,), workers=workers,
        max_batch_size=args.batch, cache_capacity=4 * args.cache_images,
    )
    try:
        t0 = time.perf_counter()
        rows = []
        for _ in range(args.cache_repeats):
            for future in cluster.submit_batch(args.model, images):
                rows.append(future.result(timeout=120.0))
        wall_s = time.perf_counter() - t0
        stats = cluster.cache_stats()
        baseline = cluster.baseline_service()
        try:
            expected = run_closed_loop(baseline, args.model, images).outputs
        finally:
            baseline.close()
    finally:
        cluster.close()
    import numpy as np

    bit_identical = all(
        np.array_equal(rows[i], expected[i % args.cache_images])
        for i in range(len(rows))
    )
    return {
        "op": "rollout",
        "model": args.model,
        "shape": list(shape),
        "scenario": "cache_uniformity",
        "seed": args.seed,
        "workers": workers,
        "req_per_s": round(offered / wall_s, 2) if wall_s > 0 else 0.0,
        "offered": offered,
        "completed": len(rows),
        "hits": stats.hits,
        "misses": stats.misses,
        "host_cpus": usable_cpus(),
        "bit_identical": bit_identical,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--model", default="MicroCNN",
                        help="serving-zoo model under rollout")
    parser.add_argument("--workers", type=int, default=2,
                        help="cluster workers for the drill scenarios")
    parser.add_argument("--requests", type=int, default=192,
                        help="offered requests per drill scenario")
    parser.add_argument("--rps", type=float, default=250.0,
                        help="offered Poisson arrival rate")
    parser.add_argument("--batch", type=int, default=16,
                        help="per-worker micro-batch bound")
    parser.add_argument("--publish-at", type=float, default=0.25,
                        help="publish the v2 artifact at this fraction of "
                             "the arrival schedule")
    parser.add_argument("--canary-fraction", type=float, default=0.5,
                        help="traffic fraction mirrored to the canary")
    parser.add_argument("--min-samples", type=int, default=4,
                        help="comparison samples gating promotion")
    parser.add_argument("--cache-images", type=int, default=16,
                        help="distinct images in the cache-uniformity "
                             "stream")
    parser.add_argument("--cache-repeats", type=int, default=3,
                        help="passes over the cache-uniformity stream")
    parser.add_argument("--seed", type=int, default=42,
                        help="arrival/artifact seed (same seed → same "
                             "schedule)")
    parser.add_argument("--scenarios", default=None,
                        help="comma-separated subset of "
                             f"{','.join(DRILL_SCENARIOS)},cache_uniformity")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="write records to PATH ('-' for stdout)")
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke mode: fewer requests, 1/2-worker "
                             "cache sweep")
    parser.add_argument("--require-zero-shed", action="store_true",
                        help="fail if any drill scenario shed or lost a "
                             "single request")
    parser.add_argument("--require-uniform-cache", action="store_true",
                        help="fail unless cache hit/miss counts are "
                             "identical at every fleet size")
    args = parser.parse_args(argv)

    if args.quick:
        args.requests = min(args.requests, 96)
        args.rps = min(args.rps, 400.0)
    cache_counts = (QUICK_CACHE_WORKER_COUNTS if args.quick
                    else CACHE_WORKER_COUNTS)
    wanted = (tuple(s.strip() for s in args.scenarios.split(","))
              if args.scenarios
              else DRILL_SCENARIOS + ("cache_uniformity",))
    known = set(DRILL_SCENARIOS) | {"cache_uniformity"}
    unknown = sorted(set(wanted) - known)
    if unknown:
        parser.error(f"unknown scenarios {unknown}; "
                     f"expected among {sorted(known)}")

    from repro.serving.loadgen import write_sweep_records

    records = []
    for scenario in wanted:
        if scenario == "cache_uniformity":
            for workers in cache_counts:
                record = run_cache_uniformity(args, workers)
                records.append(record)
                print(
                    f"cache_uniformity[{workers}w] "
                    f"hits {record['hits']}  misses {record['misses']}  "
                    f"{record['req_per_s']:8.1f} rps  "
                    f"bit_identical={record['bit_identical']}"
                )
            continue
        record = run_drill(args, scenario)
        records.append(record)
        print(
            f"{scenario:<10s} phase {record['phase']:<12s} "
            f"goodput {record['req_per_s']:8.1f} rps  "
            f"completed {record['completed']}/{record['offered']}  "
            f"shed {record['shed']}  failed {record['failed']}  "
            f"samples {record['canary_samples']}  "
            f"mismatches {record['canary_mismatches']}  "
            f"bit_identical={record['bit_identical']}"
        )
    if args.json:
        print(write_sweep_records(records, args.json))

    expected_phase = {"commit": "committed", "divergent": "rolled_back",
                      "operator": "rolled_back"}
    failures = []
    for record in records:
        if not record["bit_identical"]:
            failures.append(f"{record['scenario']}: completed outputs "
                            "diverged from the baseline")
        want = expected_phase.get(record["scenario"])
        if want and record["phase"] != want:
            failures.append(
                f"{record['scenario']}: ended in phase "
                f"{record['phase']!r}, expected {want!r}")
        if args.require_zero_shed and record["scenario"] in expected_phase:
            if record["shed"] or record["failed"]:
                failures.append(
                    f"{record['scenario']}: shed {record['shed']} / failed "
                    f"{record['failed']} — a rollout must not cost a "
                    "single request")
            if record["completed"] != record["offered"]:
                failures.append(
                    f"{record['scenario']}: completed "
                    f"{record['completed']} != offered {record['offered']}")
    if args.require_uniform_cache:
        cache = [(r["workers"], r["hits"], r["misses"]) for r in records
                 if r["scenario"] == "cache_uniformity"]
        if len({(h, m) for _, h, m in cache}) > 1:
            failures.append(
                f"cache hit/miss counts vary with fleet size: {cache} — "
                "the cluster-wide cache must make hit rates "
                "routing-independent")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
