"""Ablation benchmarks for the design choices called out in DESIGN.md.

Each benchmark isolates one PhoneBit optimization with the cost model:
layer integration (Sec. V-B), branchless binarization (Sec. VI-C), packing
word width (Sec. V-A2) and the workload rule (Sec. VI-B).
"""

from repro.analysis import ablations


def test_ablation_layer_fusion(benchmark):
    result = benchmark(ablations.fusion_ablation)
    print()
    print(result.table("Ablation — layer integration"))
    fused = result.runtimes_ms["fused (PhoneBit)"]
    unfused = result.runtimes_ms["unfused conv/BN/binarize"]
    assert unfused > fused


def test_ablation_branchless(benchmark):
    result = benchmark(ablations.branchless_ablation)
    print()
    print(result.table("Ablation — branch divergence"))
    assert result.runtimes_ms["divergent (Eqn. 8)"] > result.runtimes_ms["branchless (Eqn. 9)"]


def test_ablation_packing_width(benchmark):
    result = benchmark(ablations.packing_width_ablation)
    print()
    print(result.table("Ablation — packing word width"))
    times = list(result.runtimes_ms.values())
    assert times == sorted(times, reverse=True), "wider packing words must be faster"


def test_ablation_workload_rule(benchmark):
    result = benchmark(ablations.workload_rule_ablation)
    print()
    print(result.table("Ablation — workload rule (integrated packing)"))
    assert (result.runtimes_ms["separate packing pass"]
            >= result.runtimes_ms["integrated packing (<=256 ch)"])


if __name__ == "__main__":
    print(ablations.fusion_ablation().table("Ablation — layer integration"))
    print(ablations.branchless_ablation().table("Ablation — branch divergence"))
    print(ablations.packing_width_ablation().table("Ablation — packing word width"))
    print(ablations.workload_rule_ablation().table("Ablation — workload rule"))
