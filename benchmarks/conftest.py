"""Shared fixtures for the benchmark harness.

Each ``bench_*`` file regenerates one table or figure of the paper.  The
pytest-benchmark fixture times the experiment driver itself (the analytic
cost-model sweep), and every benchmark prints the regenerated table next to
the paper's values so the shape comparison is visible in the benchmark log.
"""

import pytest

from repro.gpusim.device import snapdragon_820, snapdragon_855


@pytest.fixture(scope="session")
def sd820():
    return snapdragon_820()


@pytest.fixture(scope="session")
def sd855():
    return snapdragon_855()


def pytest_configure(config):
    # Benchmarks live outside the default testpaths; make sure accidental
    # collection of tests/ fixtures does not interfere.
    config.addinivalue_line("markers", "table: benchmark regenerating a paper table")
