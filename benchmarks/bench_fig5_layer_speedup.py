"""Figure 5 — per-layer speedup of PhoneBit over CNNdroid-GPU (YOLOv2-Tiny).

The paper reports 23×/38×/62×/34×/43×/60×/42×/41×/3× for conv1…conv9 on the
Snapdragon 855.  The benchmark regenerates the series and asserts its shape:
the middle binary layers gain tens of ×, the bit-plane first layer gains
less than the best middle layer, and the full-precision conv9 only gains a
few ×.
"""

from repro.analysis import experiments


def test_figure5_layer_speedup(benchmark):
    figure = benchmark(experiments.figure5_layer_speedup)
    print()
    print(figure.chart())
    speedups = figure.speedups

    middle = [speedups[f"conv{i}"] for i in range(2, 9)]
    assert min(middle) > 10, "middle binary layers should gain tens of x"
    assert speedups["conv1"] < max(middle), "bit-plane conv1 gains less than middle layers"
    assert speedups["conv9"] < 10, "float conv9 gains only a few x"
    assert speedups["conv9"] == min(speedups.values())


def test_figure5_on_snapdragon_820(benchmark, sd820):
    figure = benchmark(experiments.figure5_layer_speedup, device=sd820)
    print()
    print(figure.chart())
    assert figure.device == "Snapdragon 820"
    assert figure.speedups["conv9"] == min(figure.speedups.values())


if __name__ == "__main__":
    print(experiments.figure5_layer_speedup().chart())
