"""Compiled kernel backend benchmark (wall-clock, not simulated).

Measures the compiled backend (:mod:`repro.core.backends`: cffi C kernels
behind the fused execution plan, per-step bit-exactness gating, digest-keyed
auto-tuning) against the PR 3 NumPy fused plan, at two granularities:

* **per-kernel** — the three compiled kernels (fused xor+threshold+pack,
  xor-popcount GEMM, packed patch extraction) head-to-head with their
  NumPy references on representative shapes;
* **end-to-end** — ``PhoneBitEngine.run_batch`` per backend × model ×
  batch, untuned (library defaults) and tuned (a fresh
  :func:`repro.core.backends.tuner.tune_network` sweep whose winner is
  applied through the normal digest-keyed cache lookup).

Every end-to-end cell first asserts the compiled outputs are bit-identical
to the NumPy plan, so a throughput win can never hide a correctness drift.
Records carry the canonical trajectory keys (``op``/``model``, ``shape``/
``batch``, ``ns_per_op``) plus a ``backend`` field validated by
``tools/check_bench_schema.py``.

Usage:

    PYTHONPATH=src python benchmarks/bench_compiled_backend.py \
        --json benchmarks/BENCH_compiled_backend.json --min-speedup 1.5

    # CI smoke (small models/batches, enforced floor):
    PYTHONPATH=src python benchmarks/bench_compiled_backend.py \
        --quick --json compiled-smoke.json --min-speedup 1.3
"""

import argparse
import dataclasses
import sys
import time

#: Reduced per-model input resolutions (same rationale as bench_fused_exec:
#: keep a valid shape pyramid while the sweep finishes in seconds on CPU).
REDUCED_SIZES = {
    "VGG16": 64,
    "AlexNet": 127,
    "YOLOv2 Tiny": 64,
    "TinyCNN": 32,
    "MicroCNN": 8,
}

QUICK_MODELS = ("VGG16:48", "MicroCNN")
DEFAULT_MODELS = ("VGG16", "AlexNet", "TinyCNN", "MicroCNN")


def _resolve_models(specs, full):
    """Parse ``name[:size]`` specs into (name, input_size) pairs."""
    from repro.models.zoo import get_serving_config

    resolved = []
    for spec in specs:
        name, _, size = str(spec).partition(":")
        config = get_serving_config(name.strip())
        if size:
            input_size = int(size)
        elif full:
            input_size = config.input_shape[0]
        else:
            input_size = REDUCED_SIZES.get(config.name, config.input_shape[0])
        resolved.append((config.name, input_size))
    return resolved


def _best_ms(fn, reps):
    times = []
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
    return min(times) * 1000.0


def bench_kernels(impl, reps, seed):
    """Head-to-head per-kernel records: compiled vs the NumPy reference."""
    import numpy as np

    from repro.core import binary_conv, bitpack

    rng = np.random.default_rng(seed)
    records = []

    # Fused xor + threshold + pack: 4096 rows x 512 bits -> 256 channels.
    rows, n_words, cols, word_size = 4096, 8, 256, 64
    a = rng.integers(0, 2 ** 63, size=(rows, n_words), dtype=np.uint64)
    b = rng.integers(0, 2 ** 63, size=(cols, n_words), dtype=np.uint64)
    thresh = rng.integers(0, n_words * word_size, size=cols).astype(np.int32)
    flip = rng.integers(0, 2, size=cols).astype(bool)
    out = np.zeros((rows, bitpack.words_per_channel(cols, word_size)),
                   dtype=np.uint64)
    shape = f"{rows}x{n_words * word_size}x{cols}"
    numpy_ms = _best_ms(lambda: bitpack.fused_xor_threshold_rows(
        a, b, thresh, flip, out, 0, rows, word_size), reps)
    compiled_ms = _best_ms(lambda: impl.fused_xor_threshold_rows(
        a, b, thresh, flip, out, 0, rows, word_size), reps)
    for backend, ms in (("numpy", numpy_ms), (impl.name, compiled_ms)):
        records.append({
            "op": "fused_xor_threshold", "backend": backend, "shape": shape,
            "ns_per_op": ms * 1e6,
            "speedup_vs_numpy": numpy_ms / ms if ms else float("inf"),
        })

    # Exact xor-popcount GEMM (the input-conv path): 1024 x 512 x 128.
    rows, n_words, cols = 1024, 8, 128
    a = rng.integers(0, 2 ** 63, size=(rows, n_words), dtype=np.uint64)
    b = rng.integers(0, 2 ** 63, size=(cols, n_words), dtype=np.uint64)
    gemm_out = np.empty((rows, cols), dtype=np.int64)
    shape = f"{rows}x{n_words * 64}x{cols}"
    numpy_ms = _best_ms(lambda: bitpack.xor_popcount_gemm(a, b), reps)
    compiled_ms = _best_ms(
        lambda: impl.xor_popcount_gemm_rows(a, b, gemm_out, 0, rows), reps)
    for backend, ms in (("numpy", numpy_ms), (impl.name, compiled_ms)):
        records.append({
            "op": "xor_popcount_gemm", "backend": backend, "shape": shape,
            "ns_per_op": ms * 1e6,
            "speedup_vs_numpy": numpy_ms / ms if ms else float("inf"),
        })

    # Packed patch extraction: 8 x 56x56 x 128ch, 3x3 s1 p1.
    packed = rng.integers(0, 2 ** 63, size=(8, 56, 56, 2), dtype=np.uint64)
    k, stride, padding = 3, 1, 1
    ref, oh, ow = binary_conv.packed_patch_matrix(packed, k, stride, padding)
    patch_out = np.empty_like(np.ascontiguousarray(ref))
    shape = "8x56x56x128c_k3s1p1"
    numpy_ms = _best_ms(
        lambda: binary_conv.packed_patch_matrix(packed, k, stride, padding),
        reps)
    compiled_ms = _best_ms(lambda: impl.packed_patch_rows(
        packed, k, stride, padding, oh, ow, patch_out, 0,
        patch_out.shape[0]), reps)
    for backend, ms in (("numpy", numpy_ms), (impl.name, compiled_ms)):
        records.append({
            "op": "packed_patch_rows", "backend": backend, "shape": shape,
            "ns_per_op": ms * 1e6,
            "speedup_vs_numpy": numpy_ms / ms if ms else float("inf"),
        })
    return records


def measure_model(model, input_size, compiled_name, batches, reps, threads,
                  seed, tune):
    """End-to-end records for one model: numpy vs compiled, untuned vs tuned."""
    import numpy as np

    from repro.core import plan as plan_mod
    from repro.core.backends import tuner
    from repro.core.engine import PhoneBitEngine
    from repro.models.zoo import build_phonebit_network, get_serving_config

    config = get_serving_config(model)
    if input_size != config.input_shape[0]:
        config = dataclasses.replace(
            config, input_shape=(input_size, input_size, 3))
    network = build_phonebit_network(config, rng=seed)
    rng = np.random.default_rng(seed)
    plan = plan_mod.get_plan(network)

    tuned_config = None
    if tune:
        # Store into the real per-host cache, so the tuned variant below
        # exercises the production digest-keyed lookup path end to end.
        tuned_config = tuner.tune_network(
            network, max(batches), repeats=max(1, reps - 1))

    records = []
    for batch in batches:
        images = rng.integers(
            0, 256, size=(batch,) + network.input_shape).astype(np.uint8)
        variants = [("numpy", "numpy", False),
                    (compiled_name, compiled_name, False)]
        if tuned_config is not None:
            variants.append((f"{compiled_name}+tuned", compiled_name, True))
        baseline_ms = None
        reference = None
        for label, backend, tuned in variants:
            engine = PhoneBitEngine(num_threads=threads, backend=backend,
                                    auto_tune=tuned)
            kwargs = dict(collect_estimate=False)
            out = engine.run_batch(network, images, **kwargs).output.data
            if reference is None:
                reference = out.copy()
            else:
                np.testing.assert_array_equal(reference, out)
            ms = _best_ms(
                lambda e=engine: e.run_batch(network, images, **kwargs), reps)
            if baseline_ms is None:
                baseline_ms = ms
            record = {
                "op": "compiled_exec",
                "model": model,
                "input_size": input_size,
                "batch": batch,
                "backend": backend,
                "tuned": tuned,
                "variant": label,
                "threads": (threads if threads is not None
                            else plan_mod.default_num_threads()),
                "fused_steps": plan.fused_step_count,
                "ms_per_image": ms / batch,
                "ns_per_op": (ms / batch) * 1e6,
                "speedup_vs_numpy": baseline_ms / ms if ms else float("inf"),
                "bit_identical": True,
            }
            if tuned:
                record["tuned_row_tile"] = tuned_config.row_tile
                record["tuned_threads"] = tuned_config.threads
            records.append(record)
    return records


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--models", default=None,
                        help="comma-separated zoo models, each optionally "
                             "'name:input_size' (default: "
                             + ",".join(DEFAULT_MODELS) + ")")
    parser.add_argument("--full", action="store_true",
                        help="use the paper's full input resolutions")
    parser.add_argument("--batches", default="1,16",
                        help="comma-separated batch sizes")
    parser.add_argument("--reps", type=int, default=3,
                        help="timing repetitions (best-of)")
    parser.add_argument("--threads", type=int, default=None)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--no-kernels", action="store_true",
                        help="skip the per-kernel micro section")
    parser.add_argument("--no-tune", action="store_true",
                        help="skip the tuned variant (faster)")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="write records to PATH ('-' for stdout)")
    parser.add_argument("--quick", action="store_true",
                        help="smaller models/batches (CI smoke mode)")
    parser.add_argument("--min-speedup", type=float, default=None,
                        help="fail unless every model's best compiled "
                             "variant reaches this end-to-end speedup "
                             "over the numpy fused plan")
    args = parser.parse_args(argv)

    from repro.core import backends

    name, impl = backends.resolve_backend("auto")
    if impl is None:
        print("no compiled backend available: "
              f"{backends.availability()}", file=sys.stderr)
        return 1

    if args.models:
        specs = [m for m in args.models.split(",") if m.strip()]
    elif args.quick:
        specs = list(QUICK_MODELS)
    else:
        specs = list(DEFAULT_MODELS)
    batches = [int(b) for b in args.batches.split(",") if b.strip()]
    if args.quick:
        batches = batches[:1]
    reps = min(args.reps, 2) if args.quick else args.reps

    records = []
    if not args.no_kernels:
        records.extend(bench_kernels(impl, reps, args.seed))
        for rec in records:
            if rec["backend"] != "numpy":
                print(f"{rec['op']:22s} {rec['shape']:18s} "
                      f"{rec['backend']}: {rec['speedup_vs_numpy']:.2f}x "
                      f"vs numpy")

    model_records = []
    for model, input_size in _resolve_models(specs, args.full):
        rows = measure_model(model, input_size, name, batches, reps,
                             args.threads, args.seed, tune=not args.no_tune)
        model_records.extend(rows)
        for rec in rows:
            print(f"{model}@{input_size} b{rec['batch']:<3d} "
                  f"{rec['variant']:12s} {rec['ms_per_image']:8.2f} ms/img  "
                  f"{rec['speedup_vs_numpy']:.2f}x vs numpy")
    records.extend(model_records)

    if args.json:
        from repro.serving import write_sweep_records

        print(write_sweep_records(records, args.json))

    if args.min_speedup is not None:
        best = {}
        for rec in model_records:
            if rec["backend"] == "numpy":
                continue
            key = rec["model"]
            best[key] = max(best.get(key, 0.0), rec["speedup_vs_numpy"])
        failed = {m: s for m, s in best.items() if s < args.min_speedup}
        if failed:
            for model, speedup in sorted(failed.items()):
                print(f"FAIL: {model} best compiled speedup {speedup:.2f}x "
                      f"< required {args.min_speedup:.2f}x", file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
