"""Table III — average runtime (ms) on both SoCs under all six frameworks.

Regenerates the full table (CNNdroid CPU/GPU, TFLite CPU/GPU/quant,
PhoneBit × AlexNet/YOLOv2-Tiny/VGG16 × Snapdragon 820/855) and checks the
shape properties the paper claims: PhoneBit wins everywhere it runs, the
OOM/CRASH entries appear in the same cells, and the speedup factors are in
the tens-to-hundreds range.
"""

from repro.analysis import experiments
from repro.frameworks.registry import FRAMEWORK_ORDER


def test_table3_runtime(benchmark):
    table = benchmark(experiments.table3_runtime)
    print()
    print(table.table())

    for device in ("Snapdragon 820", "Snapdragon 855"):
        # Failure cells match the paper.
        assert table.results[device]["VGG16"]["CNNdroid CPU"].status == "OOM"
        assert table.results[device]["VGG16"]["CNNdroid GPU"].status == "OOM"
        assert table.results[device]["VGG16"]["Tensorflow Lite GPU"].status == "CRASH"
        assert table.results[device]["AlexNet"]["Tensorflow Lite GPU"].status == "CRASH"
        assert table.results[device]["YOLOv2 Tiny"]["Tensorflow Lite GPU"].succeeded

        # PhoneBit is the fastest framework on every model.
        for model, per_framework in table.results[device].items():
            phonebit = per_framework["PhoneBit"].runtime_ms
            for name in FRAMEWORK_ORDER[:-1]:
                result = per_framework[name]
                if result.succeeded:
                    assert result.runtime_ms > phonebit, (device, model, name)

        speedups = table.speedups(device)
        print(f"\nmean speedups of PhoneBit on {device}:")
        for name, factor in speedups.items():
            print(f"  vs {name:<24s} {factor:7.1f}x")
        # Paper: ~794x vs CNNdroid CPU, ~35x vs CNNdroid GPU, ~6-15x vs TFLite.
        assert speedups["CNNdroid CPU"] > 100
        assert speedups["CNNdroid GPU"] > 10
        assert speedups["Tensorflow Lite CPU"] > 3
        assert speedups["Tensorflow Lite Quant"] > 1


if __name__ == "__main__":
    print(experiments.table3_runtime().table())
