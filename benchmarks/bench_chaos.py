"""Chaos benchmark: goodput and tail latency under seeded fault injection.

Runs the same sustained open-loop load through a retry+quarantine-enabled
cluster once fault-free (the control) and once per fault class, each with
a deterministic :class:`~repro.serving.faults.FaultPlan` seeded so the
whole trajectory is replayable.  One record per scenario:

    {op: "chaos", model, shape, scenario, seed, req_per_s, p99_ms,
     offered, completed, shed, deadline_expired, failed, retries, hedges,
     quarantined, respawns, requeued, faults_fired, goodput_vs_baseline,
     host_cpus, bit_identical}

``req_per_s`` is *goodput* — completed requests over wall time; every
completed output is verified bit-identical to a fault-free single-process
baseline over the same images, so a resilience number can never hide a
correctness drift.  The fault horizon is derived from the offered load
(``requests / rps``) so scheduled faults (crash/stall/partition) land
while requests are in flight, not after the run drained.

Usage:

    PYTHONPATH=src python benchmarks/bench_chaos.py \
        --json benchmarks/BENCH_chaos.json
    PYTHONPATH=src python benchmarks/bench_chaos.py --quick \
        --require-goodput 0.2 --require-complete --json -
"""

import argparse
import sys

#: scenario name -> fault spec (None = fault-free control).
SCENARIOS = (
    ("baseline", None),
    ("delay", "delay"),
    ("drop", "drop"),
    ("duplicate", "duplicate"),
    ("stall", "stall"),
    ("crash", "crash"),
    ("partition", "partition"),
    ("mixed", "crash,stall,partition,delay"),
)

QUICK_SCENARIOS = ("baseline", "delay", "mixed")


def run_scenario(args, name: str, spec) -> dict:
    from repro.models.zoo import get_serving_config
    from repro.serving.cluster import RetryPolicy, usable_cpus
    from repro.serving.faults import FaultPlan
    from repro.serving.loadgen import run_chaos_scenario

    shape = get_serving_config(args.model).input_shape
    # Scheduled faults land in [0.15, 0.85] * horizon; anchoring the
    # horizon to the offered duration keeps them inside the load window.
    horizon_s = max(0.5, args.requests / args.rps)
    plan = (None if spec is None
            else FaultPlan.from_seed(args.seed, spec, horizon_s=horizon_s))
    result = run_chaos_scenario(
        plan,
        model=args.model,
        workers=args.workers,
        requests=args.requests,
        offered_rps=args.rps,
        deadline_s=args.deadline_s,
        seed=args.seed,
        # Deep retry budget + hedging on: the bench measures recovery, so
        # give the control loop room before a request fails terminally
        # (a drop rule can eat several attempts of the same request).
        retry=RetryPolicy(max_attempts=6, hedge=True),
        max_batch_size=args.batch,
        heartbeat_interval_s=0.1,
        heartbeat_timeout_s=args.heartbeat_timeout_s,
    )
    return {
        "op": "chaos",
        "model": args.model,
        "shape": list(shape),
        "scenario": name,
        "seed": args.seed,
        "req_per_s": round(result.goodput_rps, 2),
        "p99_ms": round(result.p99_ms, 2),
        "offered": result.offered,
        "completed": result.completed,
        "shed": result.shed,
        "deadline_expired": result.deadline_expired,
        "failed": result.failed,
        "retries": result.retries,
        "hedges": result.hedges,
        "quarantined": result.quarantined,
        "respawns": result.respawns,
        "requeued": result.requeued,
        "faults_fired": len(result.fault_events),
        "host_cpus": usable_cpus(),
        "bit_identical": result.bit_identical,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--model", default="MicroCNN",
                        help="serving-zoo model under chaos")
    parser.add_argument("--workers", type=int, default=3)
    parser.add_argument("--requests", type=int, default=96,
                        help="offered requests per scenario")
    parser.add_argument("--rps", type=float, default=150.0,
                        help="offered Poisson arrival rate")
    parser.add_argument("--batch", type=int, default=16,
                        help="per-worker micro-batch bound")
    parser.add_argument("--deadline-s", type=float, default=None,
                        help="optional end-to-end per-request deadline")
    parser.add_argument("--heartbeat-timeout-s", type=float, default=1.0,
                        help="crash/stall detection bound (short on purpose "
                             "so recovery fits the bench window)")
    parser.add_argument("--seed", type=int, default=42,
                        help="fault-plan and arrival seed (same seed → "
                             "same fault schedule)")
    parser.add_argument("--scenarios", default=None,
                        help="comma-separated subset of scenario names "
                             f"(default: all of "
                             f"{','.join(n for n, _ in SCENARIOS)})")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="write records to PATH ('-' for stdout)")
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke mode: baseline + delay + mixed only, "
                             "fewer requests")
    parser.add_argument("--require-goodput", type=float, default=None,
                        metavar="FRAC",
                        help="fail if any fault scenario's goodput drops "
                             "below FRAC × the fault-free baseline")
    parser.add_argument("--require-complete", action="store_true",
                        help="fail unless every scenario accounts for all "
                             "offered requests with zero terminal failures")
    args = parser.parse_args(argv)

    if args.quick:
        args.requests = min(args.requests, 64)
    wanted = (QUICK_SCENARIOS if args.quick and args.scenarios is None
              else tuple(s.strip() for s in args.scenarios.split(","))
              if args.scenarios else tuple(n for n, _ in SCENARIOS))
    by_name = dict(SCENARIOS)
    unknown = sorted(set(wanted) - set(by_name))
    if unknown:
        parser.error(f"unknown scenarios {unknown}; "
                     f"expected among {sorted(by_name)}")

    from repro.serving.loadgen import write_sweep_records

    records = []
    baseline_rps = None
    for name in wanted:
        record = run_scenario(args, name, by_name[name])
        if name == "baseline":
            baseline_rps = record["req_per_s"]
        if baseline_rps:
            record["goodput_vs_baseline"] = round(
                record["req_per_s"] / baseline_rps, 3)
        records.append(record)
        print(
            f"{name:<10s} goodput {record['req_per_s']:8.1f} rps  "
            f"p99 {record['p99_ms']:7.1f} ms  "
            f"completed {record['completed']}/{record['offered']}  "
            f"retries {record['retries']}  hedges {record['hedges']}  "
            f"quarantined {record['quarantined']}  "
            f"respawns {record['respawns']}  "
            f"faults {record['faults_fired']}  "
            f"bit_identical={record['bit_identical']}"
        )
    if args.json:
        print(write_sweep_records(records, args.json))

    failures = []
    for record in records:
        if not record["bit_identical"]:
            failures.append(f"{record['scenario']}: completed outputs "
                            "diverged from the fault-free baseline")
        if args.require_complete:
            if record["failed"]:
                failures.append(f"{record['scenario']}: "
                                f"{record['failed']} terminal failure(s)")
            if record["completed"] + record["shed"] \
                    + record["deadline_expired"] != record["offered"]:
                failures.append(f"{record['scenario']}: request accounting "
                                "does not cover the offered load")
    if args.require_goodput is not None and baseline_rps:
        for record in records:
            if record["scenario"] == "baseline":
                continue
            floor = args.require_goodput * baseline_rps
            if record["req_per_s"] < floor:
                failures.append(
                    f"{record['scenario']}: goodput {record['req_per_s']} "
                    f"rps below {args.require_goodput:.0%} of the "
                    f"fault-free baseline ({baseline_rps} rps)"
                )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
