"""Synthetic object-detection data (VOC2007 stand-in).

Images contain a handful of solid-color rectangles on a textured background;
each rectangle's color is tied to its class.  The generator returns the
ground-truth boxes in the same normalized (x, y, w, h) convention YOLO uses,
so the detection example can exercise the full decode path (anchor boxes,
objectness, class scores, non-maximum suppression).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

import numpy as np


@dataclass
class BoundingBox:
    """One ground-truth object."""

    class_index: int
    x_center: float
    y_center: float
    width: float
    height: float

    def corners(self, image_size: int) -> Tuple[int, int, int, int]:
        """(x0, y0, x1, y1) pixel corners."""
        x0 = int((self.x_center - self.width / 2) * image_size)
        y0 = int((self.y_center - self.height / 2) * image_size)
        x1 = int((self.x_center + self.width / 2) * image_size)
        y1 = int((self.y_center + self.height / 2) * image_size)
        return max(x0, 0), max(y0, 0), min(x1, image_size), min(y1, image_size)


@dataclass
class DetectionSample:
    """One synthetic detection image with its ground truth."""

    image: np.ndarray
    boxes: List[BoundingBox] = field(default_factory=list)


def _class_colors(num_classes: int, rng: np.random.Generator) -> np.ndarray:
    return rng.integers(32, 224, size=(num_classes, 3))


def synthetic_voc_detection(
    count: int = 4,
    image_size: int = 416,
    num_classes: int = 20,
    max_objects: int = 3,
    seed: int = 0,
) -> List[DetectionSample]:
    """Generate VOC-shaped synthetic detection samples."""
    rng = np.random.default_rng(seed)
    colors = _class_colors(num_classes, rng)
    samples: List[DetectionSample] = []
    for _ in range(count):
        background = rng.integers(80, 176, size=(image_size, image_size, 3))
        noise = rng.normal(0, 12, size=(image_size, image_size, 3))
        image = np.clip(background + noise, 0, 255).astype(np.uint8)
        boxes: List[BoundingBox] = []
        for _ in range(int(rng.integers(1, max_objects + 1))):
            class_index = int(rng.integers(0, num_classes))
            width = float(rng.uniform(0.1, 0.4))
            height = float(rng.uniform(0.1, 0.4))
            x_center = float(rng.uniform(width / 2, 1 - width / 2))
            y_center = float(rng.uniform(height / 2, 1 - height / 2))
            box = BoundingBox(class_index, x_center, y_center, width, height)
            x0, y0, x1, y1 = box.corners(image_size)
            image[y0:y1, x0:x1] = colors[class_index]
            boxes.append(box)
        samples.append(DetectionSample(image=image, boxes=boxes))
    return samples


def iou(a: BoundingBox, b: BoundingBox) -> float:
    """Intersection-over-union of two normalized boxes."""
    ax0, ay0 = a.x_center - a.width / 2, a.y_center - a.height / 2
    ax1, ay1 = a.x_center + a.width / 2, a.y_center + a.height / 2
    bx0, by0 = b.x_center - b.width / 2, b.y_center - b.height / 2
    bx1, by1 = b.x_center + b.width / 2, b.y_center + b.height / 2
    inter_w = max(0.0, min(ax1, bx1) - max(ax0, bx0))
    inter_h = max(0.0, min(ay1, by1) - max(ay0, by0))
    inter = inter_w * inter_h
    union = a.width * a.height + b.width * b.height - inter
    return inter / union if union > 0 else 0.0
