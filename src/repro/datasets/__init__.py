"""Synthetic dataset generators.

The paper's accuracy numbers come from CIFAR-10 and VOC2007, neither of
which is available offline here.  The generators in this package produce
synthetic stand-ins with the same tensor shapes and with enough class
structure that a small model can actually learn them, which is all the
reproduction needs (Table II's accuracy column is reproduced in *shape*:
a binarized model loses a few points against its float counterpart).
"""

from repro.datasets.synthetic import (
    SyntheticClassification,
    synthetic_cifar10,
    synthetic_image_batch,
)
from repro.datasets.detection import DetectionSample, synthetic_voc_detection

__all__ = [
    "SyntheticClassification",
    "synthetic_cifar10",
    "synthetic_image_batch",
    "DetectionSample",
    "synthetic_voc_detection",
]
