"""Synthetic classification data (CIFAR-10 stand-in).

Each class is defined by a random low-frequency color/texture prototype;
samples are noisy copies of their class prototype.  The task is easy enough
for a small model to learn in a few epochs, but noisy enough that accuracy
is informative (binarization costs a measurable number of points).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class SyntheticClassification:
    """A labelled image dataset split into train and test."""

    train_images: np.ndarray
    train_labels: np.ndarray
    test_images: np.ndarray
    test_labels: np.ndarray
    num_classes: int

    @property
    def image_shape(self) -> tuple:
        return tuple(self.train_images.shape[1:])

    def batches(self, batch_size: int, rng: np.random.Generator | int | None = 0):
        """Yield shuffled (images, labels) minibatches of the training split."""
        rng = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
        order = rng.permutation(len(self.train_images))
        for start in range(0, len(order), batch_size):
            index = order[start:start + batch_size]
            yield self.train_images[index], self.train_labels[index]


def _class_prototypes(
    rng: np.random.Generator, num_classes: int, image_size: int, channels: int
) -> np.ndarray:
    """Low-frequency per-class prototype images in [0, 255]."""
    base = rng.uniform(0.0, 255.0, size=(num_classes, 4, 4, channels))
    prototypes = np.empty((num_classes, image_size, image_size, channels))
    for class_index in range(num_classes):
        for channel in range(channels):
            coarse = base[class_index, :, :, channel]
            fine = np.kron(coarse, np.ones((image_size // 4, image_size // 4)))
            prototypes[class_index, :, :, channel] = fine[:image_size, :image_size]
    return prototypes


def synthetic_cifar10(
    train_size: int = 512,
    test_size: int = 128,
    image_size: int = 32,
    num_classes: int = 10,
    noise: float = 40.0,
    seed: int = 0,
) -> SyntheticClassification:
    """Generate a CIFAR-10-shaped synthetic classification dataset.

    Parameters
    ----------
    train_size, test_size:
        Number of samples in each split.
    image_size:
        Square image resolution (32 for CIFAR-10).
    num_classes:
        Number of classes (10 for CIFAR-10).
    noise:
        Standard deviation of the pixel noise added to the prototypes, in
        8-bit counts; larger values make the task harder.
    seed:
        RNG seed (the dataset is fully deterministic given the seed).
    """
    if image_size % 4 != 0:
        raise ValueError("image_size must be a multiple of 4")
    rng = np.random.default_rng(seed)
    prototypes = _class_prototypes(rng, num_classes, image_size, channels=3)

    def _make_split(count: int):
        labels = rng.integers(0, num_classes, size=count)
        images = prototypes[labels] + rng.normal(0.0, noise, size=(count, image_size, image_size, 3))
        images = np.clip(images, 0, 255).astype(np.uint8)
        return images, labels.astype(np.int64)

    train_images, train_labels = _make_split(train_size)
    test_images, test_labels = _make_split(test_size)
    return SyntheticClassification(
        train_images=train_images,
        train_labels=train_labels,
        test_images=test_images,
        test_labels=test_labels,
        num_classes=num_classes,
    )


def synthetic_image_batch(
    batch_size: int = 1,
    image_size: int = 416,
    channels: int = 3,
    seed: int = 0,
) -> np.ndarray:
    """A batch of random uint8 images (used to feed full-size networks)."""
    rng = np.random.default_rng(seed)
    return rng.integers(
        0, 256, size=(batch_size, image_size, image_size, channels), dtype=np.uint8
    )
