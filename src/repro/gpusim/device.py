"""Device specifications for the simulated mobile SoCs.

Table I of the paper lists the two evaluation devices:

=========  ===============  ======  ===========  ==============  ===========
Device     SoC              Memory  OS           OpenCL version  GPU ALUs
=========  ===============  ======  ===========  ==============  ===========
Xiaomi 5   Snapdragon 820   3 GB    Android 7.0  2.0             256
Xiaomi 9   Snapdragon 855   8 GB    Android 9.0  2.0             384
=========  ===============  ======  ===========  ==============  ===========

The numbers below extend that table with the micro-architectural parameters
the cost model needs (clock, bandwidth, CU count, wavefront size, cache).
They follow public Qualcomm documentation for the Adreno 530/640 GPUs and
Kryo CPUs; absolute accuracy is not required — the experiments only rely on
the *relative* capabilities the paper discusses (hundreds of GPU ALUs, tens
of GB/s of shared LPDDR bandwidth, a handful of CPU cores with 128-bit
NEON).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class GpuSpec:
    """Mobile GPU micro-architecture parameters."""

    name: str
    compute_units: int
    alus_per_cu: int
    clock_ghz: float
    memory_bandwidth_gbs: float
    graphics_memory_kb: int
    wavefront_size: int = 64
    #: fused multiply-add counts as 2 ops/cycle/ALU at fp32.
    fp32_ops_per_alu_cycle: float = 2.0
    #: fp16 rate relative to fp32 (Adreno 5xx/6xx double-rate half floats).
    fp16_rate: float = 2.0
    #: 32-bit integer/bitwise ops per ALU cycle (xor, popcount, and, or).
    #: Adreno ALUs are optimized for fp32/fp16 MADs; integer/bit operations
    #: issue at a fraction of that rate (popcount in particular expands to a
    #: short instruction sequence), which is why BNN kernels do not reach
    #: the naive 64× speedup over fp32.
    bitwise_ops_per_alu_cycle: float = 0.25
    #: kernel launch + host synchronization overhead per enqueue (seconds).
    kernel_launch_overhead_s: float = 60e-6
    #: maximum registers (bytes) of private memory per work item before
    #: occupancy degrades; drives the workload-rule modelling.
    private_memory_bytes: int = 1024

    @property
    def total_alus(self) -> int:
        return self.compute_units * self.alus_per_cu

    def peak_gflops(self, precision: str = "fp32") -> float:
        """Peak arithmetic throughput in Gop/s for a precision / op class."""
        base = self.total_alus * self.clock_ghz
        if precision == "fp32":
            return base * self.fp32_ops_per_alu_cycle
        if precision == "fp16":
            return base * self.fp32_ops_per_alu_cycle * self.fp16_rate
        if precision in ("bitwise", "int32"):
            return base * self.bitwise_ops_per_alu_cycle
        if precision == "int8":
            # Packed int8 dot products run at roughly 4× the int32 rate.
            return base * self.bitwise_ops_per_alu_cycle * 4.0
        raise ValueError(f"unknown precision {precision!r}")


@dataclass(frozen=True)
class CpuSpec:
    """Mobile CPU (big-cluster) parameters."""

    name: str
    big_cores: int
    little_cores: int
    clock_ghz: float
    simd_width_bits: int = 128
    memory_bandwidth_gbs: float = 14.0
    #: Sustained fraction of peak a well-tuned NEON GEMM reaches on-device.
    sustained_efficiency: float = 0.45

    def peak_gflops(self, precision: str = "fp32", threads: int | None = None) -> float:
        """Peak arithmetic throughput of the big cluster in Gop/s."""
        cores = self.big_cores if threads is None else min(threads, self.big_cores)
        lanes = self.simd_width_bits // 32
        if precision == "fp32":
            per_core = lanes * 4.0  # two 128-bit FMA pipes per core
        elif precision == "fp16":
            per_core = lanes * 8.0
        elif precision == "int8":
            per_core = (self.simd_width_bits // 8) * 4.0
        elif precision in ("bitwise", "int32"):
            per_core = lanes * 2.0
        else:
            raise ValueError(f"unknown precision {precision!r}")
        return cores * self.clock_ghz * per_core


@dataclass(frozen=True)
class DeviceSpec:
    """A complete phone platform: SoC, memory, OS (Table I row)."""

    name: str
    soc: str
    ram_gb: float
    os_version: str
    opencl_version: str
    gpu: GpuSpec
    cpu: CpuSpec
    #: share of RAM a single app may allocate before Android kills it.
    app_memory_budget_fraction: float = 0.5
    extras: dict = field(default_factory=dict)

    @property
    def app_memory_budget_bytes(self) -> float:
        return self.ram_gb * (1024 ** 3) * self.app_memory_budget_fraction

    def table_row(self) -> dict:
        """The Table I row for this device."""
        return {
            "Device": self.name,
            "SOC": self.soc,
            "Memory": f"{self.ram_gb:.0f}GB",
            "OS": self.os_version,
            "OpenCL Version": self.opencl_version,
            "ALUs in GPU": self.gpu.total_alus,
        }


def snapdragon_820() -> DeviceSpec:
    """Xiaomi 5 — Snapdragon 820 with an Adreno 530 GPU (Table I)."""
    gpu = GpuSpec(
        name="Adreno 530",
        compute_units=4,
        alus_per_cu=64,
        clock_ghz=0.624,
        memory_bandwidth_gbs=29.8,
        graphics_memory_kb=1024,
        kernel_launch_overhead_s=80e-6,
    )
    cpu = CpuSpec(
        name="Kryo",
        big_cores=2,
        little_cores=2,
        clock_ghz=2.15,
        memory_bandwidth_gbs=12.0,
    )
    return DeviceSpec(
        name="Xiaomi 5",
        soc="Snapdragon 820",
        ram_gb=3.0,
        os_version="Android 7.0",
        opencl_version="2.0",
        gpu=gpu,
        cpu=cpu,
    )


def snapdragon_855() -> DeviceSpec:
    """Xiaomi 9 — Snapdragon 855 with an Adreno 640 GPU (Table I)."""
    gpu = GpuSpec(
        name="Adreno 640",
        compute_units=2,
        alus_per_cu=192,
        clock_ghz=0.585,
        memory_bandwidth_gbs=34.1,
        graphics_memory_kb=1024,
        kernel_launch_overhead_s=60e-6,
    )
    cpu = CpuSpec(
        name="Kryo 485",
        big_cores=4,
        little_cores=4,
        clock_ghz=2.84,
        memory_bandwidth_gbs=16.0,
    )
    return DeviceSpec(
        name="Xiaomi 9",
        soc="Snapdragon 855",
        ram_gb=8.0,
        os_version="Android 9.0",
        opencl_version="2.0",
        gpu=gpu,
        cpu=cpu,
    )


_PRESETS = {
    "snapdragon_820": snapdragon_820,
    "snapdragon_855": snapdragon_855,
    "sd820": snapdragon_820,
    "sd855": snapdragon_855,
}


def get_device(name: str) -> DeviceSpec:
    """Look up a device preset by name (``snapdragon_820`` / ``snapdragon_855``)."""
    key = name.lower().replace(" ", "_")
    try:
        return _PRESETS[key]()
    except KeyError:
        raise KeyError(
            f"unknown device {name!r}; available: {sorted(set(_PRESETS))}"
        ) from None
