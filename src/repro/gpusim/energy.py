"""Power and energy model (Table IV).

The paper measures average battery power with the Trepn profiler while a
network runs continuously and reports power (mW) and energy efficiency
(FPS/W).  The model here estimates average power during inference as

    P = P_static + P_unit(unit, op_kind) · busy_fraction + P_dram · traffic_rate

where ``P_unit`` is the incremental draw of the execution unit running the
dominant arithmetic class of the workload (binary/bitwise kernels toggle far
fewer ALU bits and move far less data than fp32 kernels, hence their lower
active power), and the DRAM term charges the measured memory traffic.

Absolute calibration targets the ballpark of Table IV (hundreds of mW);
only the ordering and rough ratios matter for the reproduction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Sequence, Tuple

from repro.gpusim.cost_model import RunCost
from repro.gpusim.device import DeviceSpec
from repro.gpusim.kernel import ExecutionUnit, OpKind

#: Incremental active power (mW) of each (unit, arithmetic class) pair while
#: its kernels are running, at full utilization.
DEFAULT_ACTIVE_POWER_MW: Dict[Tuple[ExecutionUnit, OpKind], float] = {
    (ExecutionUnit.GPU, OpKind.FP32): 430.0,
    (ExecutionUnit.GPU, OpKind.FP16): 360.0,
    (ExecutionUnit.GPU, OpKind.INT8): 260.0,
    (ExecutionUnit.GPU, OpKind.BITWISE): 120.0,
    (ExecutionUnit.CPU, OpKind.FP32): 650.0,
    (ExecutionUnit.CPU, OpKind.FP16): 560.0,
    (ExecutionUnit.CPU, OpKind.INT8): 360.0,
    (ExecutionUnit.CPU, OpKind.BITWISE): 320.0,
}

#: Static platform power attributed to the measurement (screen off, rails
#: powered, DDR refresh) in mW.
DEFAULT_STATIC_POWER_MW = 60.0

#: Effective DRAM energy per byte of *modeled* traffic (picojoules).  Raw
#: LPDDR4 access energy is closer to 100 pJ/B, but the cost-model traffic
#: counts are per-work-item footprints before cache filtering, so a lower
#: effective figure keeps the power estimate honest.
DEFAULT_DRAM_PJ_PER_BYTE = 10.0


@dataclass(frozen=True)
class EnergyReport:
    """Energy/power summary for one inference workload."""

    runtime_ms: float
    average_power_mw: float
    energy_per_frame_mj: float

    @property
    def fps(self) -> float:
        return 1000.0 / self.runtime_ms if self.runtime_ms > 0 else float("inf")

    @property
    def fps_per_watt(self) -> float:
        watts = self.average_power_mw / 1000.0
        return self.fps / watts if watts > 0 else float("inf")


@dataclass
class EnergyModel:
    """Estimates power and energy from a :class:`RunCost`."""

    device: DeviceSpec
    static_power_mw: float = DEFAULT_STATIC_POWER_MW
    dram_pj_per_byte: float = DEFAULT_DRAM_PJ_PER_BYTE
    active_power_mw: Dict[Tuple[ExecutionUnit, OpKind], float] = field(
        default_factory=lambda: dict(DEFAULT_ACTIVE_POWER_MW)
    )

    def report(self, run: RunCost) -> EnergyReport:
        """Compute runtime, average power and per-frame energy for a run."""
        total_s = run.total_s
        if total_s <= 0:
            raise ValueError("run cost must have positive runtime")

        active_energy_mj = 0.0
        dram_energy_mj = 0.0
        for layer in run.layer_costs:
            for cost in layer.kernel_costs:
                kernel = cost.kernel
                power = self.active_power_mw[(kernel.unit, kernel.op_kind)]
                utilization = max(cost.occupancy, 0.3)
                active_energy_mj += power * utilization * cost.busy_s
                dram_energy_mj += (
                    kernel.total_bytes * self.dram_pj_per_byte * 1e-9
                )
        static_energy_mj = self.static_power_mw * total_s
        total_energy_mj = active_energy_mj + dram_energy_mj + static_energy_mj
        average_power_mw = total_energy_mj / total_s
        return EnergyReport(
            runtime_ms=total_s * 1e3,
            average_power_mw=average_power_mw,
            energy_per_frame_mj=total_energy_mj,
        )

    def compare(self, runs: Sequence[Tuple[str, RunCost]]) -> Dict[str, EnergyReport]:
        """Energy reports for several named runs (Table IV style)."""
        return {name: self.report(run) for name, run in runs}
