"""Mobile SoC simulator substrate.

The paper evaluates PhoneBit on two phones (Snapdragon 820 / Adreno 530 and
Snapdragon 855 / Adreno 640).  This environment has neither the phones nor
an OpenCL runtime, so the performance and energy experiments run against an
analytic simulator instead:

* :mod:`repro.gpusim.device` — device presets (GPU compute units, ALUs,
  clock, memory bandwidth, CPU cores/SIMD, RAM) for both SoCs.
* :mod:`repro.gpusim.kernel` — the kernel-launch descriptor produced by the
  engine for every layer.
* :mod:`repro.gpusim.memory` — coalescing / vectorized-access model.
* :mod:`repro.gpusim.scheduler` — occupancy and latency-hiding model.
* :mod:`repro.gpusim.divergence` — branch-divergence penalty model.
* :mod:`repro.gpusim.cost_model` — the roofline-style timing model that
  combines the above.
* :mod:`repro.gpusim.energy`, :mod:`repro.gpusim.profiler` — power/energy
  model and a Trepn-like sampling profiler.

The simulator is deliberately analytic (not cycle-accurate): the paper's
results are explained by op counts, memory traffic, fusion, packing width
and divergence, which is exactly the level this model captures.
"""

from repro.gpusim.device import DeviceSpec, CpuSpec, GpuSpec, snapdragon_820, snapdragon_855
from repro.gpusim.kernel import KernelLaunch, OpKind
from repro.gpusim.cost_model import CostModel, KernelCost
from repro.gpusim.energy import EnergyModel, EnergyReport

__all__ = [
    "DeviceSpec",
    "CpuSpec",
    "GpuSpec",
    "snapdragon_820",
    "snapdragon_855",
    "KernelLaunch",
    "OpKind",
    "CostModel",
    "KernelCost",
    "EnergyModel",
    "EnergyReport",
]
