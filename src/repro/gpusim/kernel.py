"""Kernel-launch descriptors consumed by the cost model.

The engine does not hand real OpenCL kernels to the simulator; it hands a
:class:`KernelLaunch` per enqueued kernel describing the *footprint* that
determines its cost on a mobile GPU: how many work items run, how many
arithmetic operations of which class each performs, how many bytes it moves,
whether its accesses are coalesced/vectorized, whether its control flow
diverges, and how many logical layers were fused into it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import List


class OpKind(str, enum.Enum):
    """Arithmetic class of a kernel's inner loop."""

    FP32 = "fp32"
    FP16 = "fp16"
    INT8 = "int8"
    BITWISE = "bitwise"


class ExecutionUnit(str, enum.Enum):
    """Where a kernel executes."""

    GPU = "gpu"
    CPU = "cpu"


@dataclass(frozen=True)
class KernelLaunch:
    """Footprint of a single kernel enqueue.

    Attributes
    ----------
    name:
        Human-readable kernel identifier (layer name + kernel role).
    work_items:
        Number of global work items (threads) launched.
    ops_per_item:
        Arithmetic operations per work item, counted in units of ``op_kind``
        operations (e.g. a 64-bit xor+popcount pair is 2 bitwise ops).
    bytes_read_per_item / bytes_written_per_item:
        Global-memory traffic per work item, before coalescing effects.
    op_kind:
        Arithmetic class of the inner loop.
    vector_width:
        Width (in elements) of the vectorized loads/stores and ALU ops the
        kernel uses (OpenCL ``uchar``..``ulong16`` vector types).
    coalesced:
        Whether adjacent work items touch adjacent memory (NHWC channel-major
        packing makes this true for PhoneBit kernels).
    divergent:
        Whether the kernel contains data-dependent branches (Eqn. 8 before
        the branchless rewrite).
    fused_layers:
        Number of logical layers folded into this kernel (conv+BN+binarize
        fusion makes this 3).
    uses_private_packing:
        Whether the workload rule keeps binarize+pack in thread-private
        memory (Sec. VI-B); kernels above the channel limit launch an extra
        packing kernel instead.
    unit:
        Execution unit (GPU or CPU).
    threads:
        For CPU kernels, the number of worker threads used.
    """

    name: str
    work_items: int
    ops_per_item: float
    bytes_read_per_item: float
    bytes_written_per_item: float
    op_kind: OpKind = OpKind.FP32
    vector_width: int = 1
    coalesced: bool = True
    divergent: bool = False
    fused_layers: int = 1
    uses_private_packing: bool = False
    unit: ExecutionUnit = ExecutionUnit.GPU
    threads: int = 1
    metadata: dict = field(default_factory=dict)

    @property
    def total_ops(self) -> float:
        return self.work_items * self.ops_per_item

    @property
    def total_bytes_read(self) -> float:
        return self.work_items * self.bytes_read_per_item

    @property
    def total_bytes_written(self) -> float:
        return self.work_items * self.bytes_written_per_item

    @property
    def total_bytes(self) -> float:
        return self.total_bytes_read + self.total_bytes_written

    def scaled(self, factor: float) -> "KernelLaunch":
        """Return a copy with the per-item op count scaled by ``factor``."""
        return replace(self, ops_per_item=self.ops_per_item * factor)


@dataclass
class LayerWorkload:
    """All kernel launches needed to execute one logical layer."""

    layer_name: str
    layer_type: str
    kernels: List[KernelLaunch] = field(default_factory=list)
    #: Bytes of activations this layer must keep live (for OOM modelling).
    activation_bytes: float = 0.0
    #: Bytes of weights this layer streams from memory.
    weight_bytes: float = 0.0

    @property
    def total_ops(self) -> float:
        return sum(k.total_ops for k in self.kernels)

    @property
    def total_bytes(self) -> float:
        return sum(k.total_bytes for k in self.kernels)
