"""Occupancy and latency-hiding model.

Mobile GPUs hide memory latency by switching between resident wavefronts
(Sec. VI-A3).  How well that works depends on how many wavefronts the launch
provides relative to the machine's ALUs, and on how much thread-private
memory each work item consumes (the workload rule of Sec. VI-B keeps eight
filters' worth of accumulators in private memory, which is why it only
applies below a channel-count limit).

The model produces two scalars per kernel:

``occupancy``
    Fraction of the GPU's thread slots the launch can keep busy.
``overlap``
    Fraction of the smaller of (compute, memory) time that is hidden under
    the larger one; 1.0 means perfect overlap (``max``), 0.0 means fully
    serialized (``sum``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpusim.device import GpuSpec
from repro.gpusim.kernel import KernelLaunch

#: Wavefronts each compute unit should keep resident to fully hide latency.
TARGET_WAVES_PER_CU = 4


@dataclass(frozen=True)
class ScheduleEstimate:
    """Occupancy / overlap estimate for one kernel launch."""

    occupancy: float
    overlap: float
    resident_waves: float


def estimate_schedule(gpu: GpuSpec, kernel: KernelLaunch) -> ScheduleEstimate:
    """Estimate occupancy and memory/compute overlap for a kernel."""
    waves = kernel.work_items / float(gpu.wavefront_size)
    target_waves = gpu.compute_units * TARGET_WAVES_PER_CU
    occupancy = min(1.0, waves / target_waves) if target_waves else 1.0

    # Private-memory pressure reduces the number of resident wavefronts.
    private_bytes = float(kernel.metadata.get("private_bytes", 64.0))
    pressure = min(1.0, gpu.private_memory_bytes / max(private_bytes, 1.0))
    occupancy *= max(0.25, pressure)

    # Latency hiding improves with occupancy; even a single wave overlaps a
    # little thanks to in-thread pipelining of vectorized loads.
    overlap = 0.25 + 0.75 * occupancy
    return ScheduleEstimate(occupancy=occupancy, overlap=overlap, resident_waves=waves)


def combine_times(compute_s: float, memory_s: float, overlap: float) -> float:
    """Combine compute and memory time under a given overlap fraction."""
    overlap = min(max(overlap, 0.0), 1.0)
    longer = max(compute_s, memory_s)
    shorter = min(compute_s, memory_s)
    return longer + (1.0 - overlap) * shorter
