"""Memory-system model: coalescing, vectorized access and footprint tracking.

Section VI-A of the paper lists three memory optimizations — vectorized
load/store, coalesced access along the packed channel dimension, and latency
hiding.  The first two determine the *effective* bandwidth a kernel sees and
are modeled here; latency hiding is part of the scheduler model.

The module also provides a simple allocation tracker used to reproduce the
out-of-memory failures of the CNNdroid baseline on VGG16 (Table III).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.gpusim.device import GpuSpec
from repro.gpusim.kernel import KernelLaunch


class OutOfMemoryError(RuntimeError):
    """Raised when a framework exceeds the per-app memory budget."""


#: Effective bandwidth fraction for perfectly coalesced wavefront accesses.
COALESCED_EFFICIENCY = 0.85
#: Effective bandwidth fraction when work items scatter across memory.
UNCOALESCED_EFFICIENCY = 0.22
#: Additional penalty for scalar (non-vectorized) loads/stores.
SCALAR_ACCESS_EFFICIENCY = 0.60


def access_efficiency(coalesced: bool, vector_width: int) -> float:
    """Fraction of peak DRAM bandwidth a kernel's access pattern achieves."""
    base = COALESCED_EFFICIENCY if coalesced else UNCOALESCED_EFFICIENCY
    if vector_width >= 4:
        vector_factor = 1.0
    elif vector_width == 2:
        vector_factor = 0.85
    else:
        vector_factor = SCALAR_ACCESS_EFFICIENCY
    return base * vector_factor


def effective_bandwidth_gbs(gpu: GpuSpec, kernel: KernelLaunch) -> float:
    """Effective bandwidth (GB/s) for a kernel on a GPU."""
    return gpu.memory_bandwidth_gbs * access_efficiency(
        kernel.coalesced, kernel.vector_width
    )


@dataclass
class MemoryTracker:
    """Tracks live allocations against an application memory budget.

    Baseline frameworks register their weight buffers and activation
    buffers; exceeding the budget raises :class:`OutOfMemoryError`, which the
    experiment harness reports as the paper's ``OOM`` entries.
    """

    budget_bytes: float
    allocations: Dict[str, float] = field(default_factory=dict)

    def allocate(self, name: str, nbytes: float) -> None:
        """Register an allocation, enforcing the budget."""
        if nbytes < 0:
            raise ValueError("allocation size must be non-negative")
        self.allocations[name] = self.allocations.get(name, 0.0) + float(nbytes)
        if self.total_bytes > self.budget_bytes:
            raise OutOfMemoryError(
                f"allocation {name!r} pushes usage to "
                f"{self.total_bytes / 2**20:.1f} MiB, over the "
                f"{self.budget_bytes / 2**20:.1f} MiB budget"
            )

    def free(self, name: str) -> None:
        """Release a named allocation (no-op if absent)."""
        self.allocations.pop(name, None)

    @property
    def total_bytes(self) -> float:
        return sum(self.allocations.values())
