"""Branch-divergence penalty model (Sec. VI-C).

When work items of the same wavefront take different branches, the GPU
serializes the paths and masks the inactive lanes.  The fused binarization
of Eqn. (8) contains a four-way, data-dependent comparison; PhoneBit
replaces it with the branch-free Eqn. (9).  The cost model charges divergent
kernels a multiplicative compute-time penalty derived from the number of
distinct paths and the fraction of the inner loop they cover.
"""

from __future__ import annotations

from repro.gpusim.kernel import KernelLaunch

#: Fraction of a fused conv kernel's work spent in the binarization epilogue
#: (the part Eqn. 8/9 governs); only that fraction serializes.
EPILOGUE_FRACTION = 0.15

#: Number of distinct control-flow paths in the naive Eqn. (8) epilogue.
NAIVE_BRANCH_PATHS = 4


def divergence_penalty(kernel: KernelLaunch) -> float:
    """Multiplicative compute-time factor (≥ 1) charged for divergence."""
    if not kernel.divergent:
        return 1.0
    paths = int(kernel.metadata.get("branch_paths", NAIVE_BRANCH_PATHS))
    fraction = float(kernel.metadata.get("divergent_fraction", EPILOGUE_FRACTION))
    fraction = min(max(fraction, 0.0), 1.0)
    return 1.0 + fraction * (paths - 1)
