"""Trepn-like sampling power profiler.

The paper measures on-device power with Qualcomm's Trepn profiler, which
samples battery power at a fixed interval while the workload runs.  The
simulator equivalent replays a :class:`~repro.gpusim.cost_model.RunCost`
timeline (layer by layer), computes the instantaneous power of whichever
kernel is active at each sample instant and returns the sampled trace plus
the same averages Trepn would report.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.gpusim.cost_model import RunCost
from repro.gpusim.energy import EnergyModel


@dataclass(frozen=True)
class PowerSample:
    """One profiler sample."""

    time_s: float
    power_mw: float
    active_layer: str


@dataclass
class ProfileTrace:
    """A sampled power trace over one or more back-to-back inferences."""

    samples: List[PowerSample]
    sample_interval_s: float

    @property
    def average_power_mw(self) -> float:
        if not self.samples:
            return 0.0
        return sum(s.power_mw for s in self.samples) / len(self.samples)

    @property
    def peak_power_mw(self) -> float:
        return max((s.power_mw for s in self.samples), default=0.0)

    @property
    def duration_s(self) -> float:
        return len(self.samples) * self.sample_interval_s


class TrepnLikeProfiler:
    """Samples simulated power while a run-cost timeline replays."""

    def __init__(self, energy_model: EnergyModel, sample_interval_ms: float = 100.0):
        if sample_interval_ms <= 0:
            raise ValueError("sample interval must be positive")
        self.energy_model = energy_model
        self.sample_interval_s = sample_interval_ms / 1e3

    def _timeline(self, run: RunCost) -> List[Tuple[float, float, str, float]]:
        """(start, end, layer, power) segments of one inference."""
        segments = []
        cursor = 0.0
        for layer in run.layer_costs:
            for cost in layer.kernel_costs:
                kernel = cost.kernel
                power = self.energy_model.active_power_mw[(kernel.unit, kernel.op_kind)]
                utilization = max(cost.occupancy, 0.3)
                dram_mw = 0.0
                if cost.total_s > 0:
                    dram_mw = (
                        kernel.total_bytes
                        * self.energy_model.dram_pj_per_byte
                        * 1e-9
                        / cost.total_s
                    )
                total_mw = (
                    self.energy_model.static_power_mw + power * utilization + dram_mw
                )
                segments.append((cursor, cursor + cost.total_s, layer.layer_name, total_mw))
                cursor += cost.total_s
        if run.per_inference_overhead_s > 0:
            segments.append(
                (
                    cursor,
                    cursor + run.per_inference_overhead_s,
                    "host-overhead",
                    self.energy_model.static_power_mw,
                )
            )
        return segments

    def profile(self, run: RunCost, duration_s: float = 1.0) -> ProfileTrace:
        """Profile back-to-back inferences for approximately ``duration_s``."""
        segments = self._timeline(run)
        if not segments:
            return ProfileTrace(samples=[], sample_interval_s=self.sample_interval_s)
        period = segments[-1][1]
        samples: List[PowerSample] = []
        sample_count = max(1, int(round(duration_s / self.sample_interval_s)))
        for index in range(sample_count):
            t = index * self.sample_interval_s
            phase = t % period if period > 0 else 0.0
            active = segments[-1]
            for segment in segments:
                if segment[0] <= phase < segment[1]:
                    active = segment
                    break
            samples.append(PowerSample(time_s=t, power_mw=active[3], active_layer=active[2]))
        return ProfileTrace(samples=samples, sample_interval_s=self.sample_interval_s)
