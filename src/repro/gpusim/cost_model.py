"""Roofline-style timing model for kernel launches on a mobile SoC.

For every :class:`~repro.gpusim.kernel.KernelLaunch` the model computes

* a compute time — total operations divided by the executing unit's
  sustained throughput for the kernel's arithmetic class, degraded by
  occupancy, divergence and a framework-supplied efficiency factor;
* a memory time — total bytes divided by the effective bandwidth after
  coalescing/vectorization effects;
* a launch overhead — per-enqueue host/driver cost, multiplied by the
  framework's overhead factor (frameworks that cannot fuse layers enqueue
  more kernels *and* pay more per enqueue).

Compute and memory time overlap according to the scheduler's latency-hiding
estimate; the kernel time is their combination plus the overhead.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Iterable, List, Sequence

from repro.gpusim.device import DeviceSpec
from repro.gpusim.divergence import divergence_penalty
from repro.gpusim.kernel import ExecutionUnit, KernelLaunch, LayerWorkload, OpKind
from repro.gpusim.memory import effective_bandwidth_gbs
from repro.gpusim.scheduler import combine_times, estimate_schedule


@dataclass(frozen=True)
class EfficiencyProfile:
    """Framework-level efficiency knobs applied on top of the hardware model.

    These encode how well a given framework's generated kernels use the
    hardware, independent of the algorithmic op/byte counts (which come from
    the kernel descriptors).
    """

    name: str = "ideal"
    #: Fraction of the sustained arithmetic throughput actually achieved.
    compute_efficiency: float = 1.0
    #: Fraction of the effective memory bandwidth actually achieved.
    memory_efficiency: float = 1.0
    #: Multiplier on the per-enqueue launch overhead.
    launch_overhead_factor: float = 1.0
    #: Fixed per-inference host-side overhead in seconds (graph dispatch,
    #: data marshalling, JNI crossings, …).
    per_inference_overhead_s: float = 0.0

    def __post_init__(self) -> None:
        if not (0.0 < self.compute_efficiency <= 1.0):
            raise ValueError("compute_efficiency must be in (0, 1]")
        if not (0.0 < self.memory_efficiency <= 1.0):
            raise ValueError("memory_efficiency must be in (0, 1]")


@dataclass(frozen=True)
class KernelCost:
    """Timing breakdown for one kernel launch."""

    kernel: KernelLaunch
    compute_s: float
    memory_s: float
    overhead_s: float
    occupancy: float
    #: compute and memory time combined under the latency-hiding estimate.
    combined_s: float

    @property
    def busy_s(self) -> float:
        """Time the execution unit is busy (excludes launch overhead)."""
        return self.combined_s

    @property
    def total_s(self) -> float:
        return self.combined_s + self.overhead_s

    @property
    def bound(self) -> str:
        """Which resource dominates this kernel ("compute" or "memory")."""
        return "compute" if self.compute_s >= self.memory_s else "memory"


@dataclass
class LayerCost:
    """Aggregated cost of all kernels of one layer."""

    layer_name: str
    layer_type: str
    kernel_costs: List[KernelCost] = field(default_factory=list)

    @property
    def total_s(self) -> float:
        return sum(k.total_s for k in self.kernel_costs)

    @property
    def total_ops(self) -> float:
        return sum(k.kernel.total_ops for k in self.kernel_costs)

    @property
    def total_bytes(self) -> float:
        return sum(k.kernel.total_bytes for k in self.kernel_costs)


@dataclass
class RunCost:
    """Cost of a full inference: per-layer breakdown plus totals."""

    device: DeviceSpec
    profile: EfficiencyProfile
    layer_costs: List[LayerCost] = field(default_factory=list)
    per_inference_overhead_s: float = 0.0

    @property
    def total_s(self) -> float:
        return sum(l.total_s for l in self.layer_costs) + self.per_inference_overhead_s

    @property
    def total_ms(self) -> float:
        return self.total_s * 1e3

    def layer_times_ms(self) -> dict:
        """Mapping of layer name to milliseconds."""
        return {l.layer_name: l.total_s * 1e3 for l in self.layer_costs}

    @property
    def compute_bound_fraction(self) -> float:
        """Fraction of modeled kernel time that is compute (vs. memory).

        ``1.0`` means every kernel is arithmetic-limited, ``0.0`` means the
        run is pure memory traffic.  The auto-tuner
        (:mod:`repro.core.backends.tuner`) uses this split to seed its
        thread-count search: compute-bound models scale with cores while
        memory-bound ones saturate the bus early.
        """
        compute = sum(
            k.compute_s for l in self.layer_costs for k in l.kernel_costs
        )
        memory = sum(
            k.memory_s for l in self.layer_costs for k in l.kernel_costs
        )
        total = compute + memory
        return compute / total if total > 0 else 0.0


def thread_candidates(run_cost: "RunCost | None" = None,
                      cpu_count: "int | None" = None) -> "tuple[int, ...]":
    """Thread fan-outs worth measuring, seeded by the simulated cost split.

    Returns power-of-two counts up to the host's core count (plus the core
    count itself), ordered most-promising first: compute-bound models (per
    ``run_cost.compute_bound_fraction``) try wide fan-outs first because
    popcount arithmetic scales with cores, while memory-bound models try
    narrow fan-outs first — extra threads only contend for the bus.  The
    ordering is a *search seed* for :mod:`repro.core.backends.tuner`, which
    still measures every candidate; it never changes results.
    """
    cpus = max(1, int(cpu_count if cpu_count is not None else (os.cpu_count() or 1)))
    candidates = {1, cpus}
    power = 2
    while power < cpus:
        candidates.add(power)
        power *= 2
    compute_bound = (
        run_cost.compute_bound_fraction >= 0.5 if run_cost is not None else True
    )
    return tuple(sorted(candidates, reverse=compute_bound))


class CostModel:
    """Times kernel launches on a device under a framework efficiency profile."""

    #: Sustained fraction of peak arithmetic throughput reachable by a
    #: well-written OpenCL kernel on Adreno-class GPUs.
    GPU_SUSTAINED_FRACTION = 0.60

    def __init__(self, device: DeviceSpec, profile: EfficiencyProfile | None = None):
        self.device = device
        self.profile = profile or EfficiencyProfile()

    # ------------------------------------------------------------------ GPU
    def _gpu_kernel_cost(self, kernel: KernelLaunch) -> KernelCost:
        gpu = self.device.gpu
        schedule = estimate_schedule(gpu, kernel)
        peak_gops = gpu.peak_gflops(kernel.op_kind.value)
        sustained = (
            peak_gops
            * 1e9
            * self.GPU_SUSTAINED_FRACTION
            * self.profile.compute_efficiency
            * max(schedule.occupancy, 0.05)
        )
        compute_s = kernel.total_ops / sustained if sustained else float("inf")
        compute_s *= divergence_penalty(kernel)

        bandwidth = (
            effective_bandwidth_gbs(gpu, kernel) * 1e9 * self.profile.memory_efficiency
        )
        memory_s = kernel.total_bytes / bandwidth if bandwidth else float("inf")

        overhead_s = gpu.kernel_launch_overhead_s * self.profile.launch_overhead_factor
        combined = combine_times(compute_s, memory_s, schedule.overlap)
        return KernelCost(
            kernel=kernel,
            compute_s=compute_s,
            memory_s=memory_s,
            overhead_s=overhead_s,
            occupancy=schedule.occupancy,
            combined_s=combined,
        )

    # ------------------------------------------------------------------ CPU
    def _cpu_kernel_cost(self, kernel: KernelLaunch) -> KernelCost:
        cpu = self.device.cpu
        peak_gops = cpu.peak_gflops(kernel.op_kind.value, threads=kernel.threads)
        sustained = (
            peak_gops * 1e9 * cpu.sustained_efficiency * self.profile.compute_efficiency
        )
        compute_s = kernel.total_ops / sustained if sustained else float("inf")

        bandwidth = cpu.memory_bandwidth_gbs * 1e9 * self.profile.memory_efficiency
        memory_s = kernel.total_bytes / bandwidth if bandwidth else float("inf")

        # CPU execution has no kernel launch, but each layer pays a small
        # dispatch/thread-pool cost.
        overhead_s = 10e-6 * self.profile.launch_overhead_factor
        combined = combine_times(compute_s, memory_s, overlap=0.6)
        return KernelCost(
            kernel=kernel,
            compute_s=compute_s,
            memory_s=memory_s,
            overhead_s=overhead_s,
            occupancy=1.0,
            combined_s=combined,
        )

    # ----------------------------------------------------------------- API
    def kernel_cost(self, kernel: KernelLaunch) -> KernelCost:
        """Time a single kernel launch."""
        if kernel.unit is ExecutionUnit.CPU:
            return self._cpu_kernel_cost(kernel)
        return self._gpu_kernel_cost(kernel)

    def layer_cost(self, workload: LayerWorkload) -> LayerCost:
        """Time all kernels of one layer."""
        costs = [self.kernel_cost(k) for k in workload.kernels]
        return LayerCost(
            layer_name=workload.layer_name,
            layer_type=workload.layer_type,
            kernel_costs=costs,
        )

    def run_cost(self, workloads: Sequence[LayerWorkload]) -> RunCost:
        """Time a full inference described by per-layer workloads."""
        layer_costs = [self.layer_cost(w) for w in workloads]
        return RunCost(
            device=self.device,
            profile=self.profile,
            layer_costs=layer_costs,
            per_inference_overhead_s=self.profile.per_inference_overhead_s,
        )


def total_ops(workloads: Iterable[LayerWorkload]) -> float:
    """Total arithmetic operations across a set of layer workloads."""
    return sum(w.total_ops for w in workloads)


def total_bytes(workloads: Iterable[LayerWorkload]) -> float:
    """Total memory traffic across a set of layer workloads."""
    return sum(w.total_bytes for w in workloads)
