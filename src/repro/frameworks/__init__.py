"""Simulated deployment frameworks used in the paper's comparison.

Table III/IV compare PhoneBit against:

* **CNNdroid** — RenderScript-based full-precision CNN execution, in CPU
  and "GPU" modes (the paper notes RenderScript does not always actually
  run on the GPU).
* **TensorFlow Lite** — CPU float, GPU (GL delegate) and CPU 8-bit
  quantized execution.

Each framework is a :class:`~repro.frameworks.base.FrameworkRunner` that
turns a :class:`~repro.models.config.ModelConfig` into kernel workloads with
that framework's characteristics (precision, fusion, memory behaviour,
threading, per-layer overheads) and feeds them to the device cost model.
Failure modes are reproduced mechanistically: CNNdroid's Java-heap model
loading OOMs on VGG16, and the TFLite GPU delegate rejects the huge fully
connected layers of AlexNet/VGG16 (CRASH), exactly the entries of
Table III.
"""

from repro.frameworks.base import FrameworkResult, FrameworkRunner, RunStatus
from repro.frameworks.cnndroid import CnnDroidCpuRunner, CnnDroidGpuRunner
from repro.frameworks.tflite import (
    TfLiteCpuRunner,
    TfLiteGpuRunner,
    TfLiteQuantizedCpuRunner,
)
from repro.frameworks.phonebit_runner import PhoneBitRunner
from repro.frameworks.registry import all_runners, get_runner

__all__ = [
    "FrameworkResult",
    "FrameworkRunner",
    "RunStatus",
    "CnnDroidCpuRunner",
    "CnnDroidGpuRunner",
    "TfLiteCpuRunner",
    "TfLiteGpuRunner",
    "TfLiteQuantizedCpuRunner",
    "PhoneBitRunner",
    "all_runners",
    "get_runner",
]
