"""Framework registry: the six execution configurations of Table III."""

from __future__ import annotations

from typing import Dict, List

from repro.frameworks.base import FrameworkRunner
from repro.frameworks.cnndroid import CnnDroidCpuRunner, CnnDroidGpuRunner
from repro.frameworks.phonebit_runner import PhoneBitRunner
from repro.frameworks.tflite import (
    TfLiteCpuRunner,
    TfLiteGpuRunner,
    TfLiteQuantizedCpuRunner,
)
from repro.gpusim.device import DeviceSpec

#: Table III column order.
FRAMEWORK_ORDER = (
    "CNNdroid CPU",
    "CNNdroid GPU",
    "Tensorflow Lite CPU",
    "Tensorflow Lite GPU",
    "Tensorflow Lite Quant",
    "PhoneBit",
)

_RUNNER_CLASSES = {
    "CNNdroid CPU": CnnDroidCpuRunner,
    "CNNdroid GPU": CnnDroidGpuRunner,
    "Tensorflow Lite CPU": TfLiteCpuRunner,
    "Tensorflow Lite GPU": TfLiteGpuRunner,
    "Tensorflow Lite Quant": TfLiteQuantizedCpuRunner,
    "PhoneBit": PhoneBitRunner,
}


def get_runner(name: str, device: DeviceSpec) -> FrameworkRunner:
    """Instantiate a framework runner by its Table III column name."""
    for key, cls in _RUNNER_CLASSES.items():
        if key.lower() == name.lower():
            return cls(device)
    raise KeyError(f"unknown framework {name!r}; available: {list(_RUNNER_CLASSES)}")


def all_runners(device: DeviceSpec) -> List[FrameworkRunner]:
    """All six framework runners for one device, in Table III column order."""
    return [_RUNNER_CLASSES[name](device) for name in FRAMEWORK_ORDER]


def runners_by_name(device: DeviceSpec) -> Dict[str, FrameworkRunner]:
    """Mapping of framework name to runner for one device."""
    return {runner.name: runner for runner in all_runners(device)}
