"""Framework runner interface and shared workload construction.

A runner answers one question: *how long does one inference of this model
take on this device under this framework, and does it run at all?*  The
answer comes from three ingredients:

1. the model's layer geometry (from :class:`~repro.models.config.ModelConfig`),
2. the framework's execution characteristics (precision, fusion, threading,
   memory behaviour, per-layer overheads) encoded as an
   :class:`~repro.gpusim.cost_model.EfficiencyProfile` plus workload flags,
3. the device cost model.

Runners also model each framework's failure modes (OOM / CRASH) so the
experiment harness can reproduce those Table III entries.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.core import kernels as kern
from repro.gpusim.cost_model import CostModel, EfficiencyProfile, RunCost
from repro.gpusim.device import DeviceSpec
from repro.gpusim.kernel import ExecutionUnit, LayerWorkload, OpKind
from repro.models.config import ModelConfig


class RunStatus(str):
    """Status constants used in the Table III entries."""

    OK = "ok"
    OOM = "OOM"
    CRASH = "CRASH"


@dataclass
class FrameworkResult:
    """Outcome of running one model under one framework on one device."""

    framework: str
    model: str
    device: str
    status: str
    runtime_ms: Optional[float] = None
    run_cost: Optional[RunCost] = None
    layer_times_ms: dict = field(default_factory=dict)
    reason: str = ""

    @property
    def succeeded(self) -> bool:
        return self.status == RunStatus.OK

    def cell(self) -> str:
        """Formatted Table III cell (runtime in ms, or OOM/CRASH)."""
        if not self.succeeded:
            return self.status
        return f"{self.runtime_ms:.1f}"


class FrameworkRunner(abc.ABC):
    """Base class for all simulated frameworks."""

    #: Human-readable framework name (Table III column header).
    name: str = "framework"
    #: Execution unit used by this framework.
    unit: ExecutionUnit = ExecutionUnit.GPU

    def __init__(self, device: DeviceSpec):
        self.device = device

    # ----------------------------------------------------------- interface
    @abc.abstractmethod
    def profile(self) -> EfficiencyProfile:
        """Efficiency profile of this framework's generated kernels."""

    @abc.abstractmethod
    def model_workloads(self, config: ModelConfig) -> List[LayerWorkload]:
        """Kernel workloads for one inference of ``config``."""

    def check_feasibility(self, config: ModelConfig) -> Optional[FrameworkResult]:
        """Return a failure result if the framework cannot run the model."""
        return None

    # ----------------------------------------------------------- execution
    def run_model(self, config: ModelConfig) -> FrameworkResult:
        """Estimate one inference of ``config`` on this framework."""
        failure = self.check_feasibility(config)
        if failure is not None:
            return failure
        workloads = self.model_workloads(config)
        cost_model = CostModel(self.device, self.profile())
        run_cost = cost_model.run_cost(workloads)
        return FrameworkResult(
            framework=self.name,
            model=config.name,
            device=self.device.soc,
            status=RunStatus.OK,
            runtime_ms=run_cost.total_ms,
            run_cost=run_cost,
            layer_times_ms=run_cost.layer_times_ms(),
        )

    # ------------------------------------------------------------- helpers
    def _conventional_workloads(
        self,
        config: ModelConfig,
        op_kind: OpKind,
        threads: int = 1,
        fused_batchnorm: bool = True,
        separate_activation: bool = False,
        coalesced: bool = True,
        weight_reuse: float = kern.WEIGHT_REUSE,
        input_reuse: float = 8.0,
    ) -> List[LayerWorkload]:
        """Workloads of a conventional (float/quant) execution of ``config``."""
        workloads: List[LayerWorkload] = []
        for shaped in config.shaped_layers():
            layer = shaped.definition
            in_shape = shaped.input_shape
            if layer.kind == "conv":
                workloads.append(
                    kern.float_conv_workload(
                        layer.name, shaped.conv_geometry, op_kind=op_kind,
                        unit=self.unit, threads=threads,
                        fused_batchnorm=fused_batchnorm,
                        separate_activation=separate_activation,
                        coalesced=coalesced, weight_reuse=weight_reuse,
                        input_reuse=input_reuse,
                    )
                )
            elif layer.kind in ("maxpool", "avgpool"):
                workloads.append(
                    kern.float_pool_workload(
                        layer.name, in_shape[0], in_shape[1], in_shape[2],
                        layer.pool_size, layer.stride, layer.padding,
                        op_kind=op_kind, unit=self.unit, threads=threads,
                        coalesced=coalesced,
                    )
                )
            elif layer.kind == "dense":
                in_features = int(np.prod(in_shape))
                workloads.append(
                    kern.float_dense_workload(
                        layer.name, in_features, layer.out_features,
                        op_kind=op_kind, unit=self.unit, threads=threads,
                        coalesced=coalesced,
                    )
                )
            elif layer.kind == "flatten":
                continue
            else:
                raise ValueError(f"unknown layer kind {layer.kind!r}")
        return workloads

    def model_memory_bytes(self, config: ModelConfig, bytes_per_weight: float) -> float:
        """Weight storage of the model under this framework's precision."""
        counts = config.parameter_counts()
        return (counts["binary"] + counts["float32"]) * bytes_per_weight

    def peak_activation_bytes(self, config: ModelConfig, bytes_per_value: float) -> float:
        """Largest single activation tensor of the model."""
        peak = 0.0
        for shaped in config.shaped_layers():
            values = float(np.prod(shaped.output_shape))
            peak = max(peak, values * bytes_per_value)
        return peak
