"""TensorFlow Lite baselines.

Three execution modes are modeled, matching the paper's comparison:

* **CPU float** — the NEON-optimized fp32 interpreter using the big CPU
  cluster (XNNPACK-era kernels: fused activations, threaded GEMM).
* **CPU 8-bit quantized** — the int8 interpreter ("Quant" column); roughly
  3–4× faster than fp32 thanks to 8-bit NEON dot products.
* **GPU delegate** — fp16 GL compute shaders.  The delegate serializes each
  op into GL programs with per-op dispatch overhead and a costly CPU↔GPU
  tensor upload per inference.  It rejects graphs containing very large
  fully connected layers (shader storage/uniform limits), which is how the
  paper's ``CRASH`` entries for AlexNet and VGG16 arise, while the fully
  convolutional YOLOv2-Tiny runs fine.
"""

from __future__ import annotations

from typing import List

from repro.frameworks.base import FrameworkResult, FrameworkRunner, RunStatus
from repro.gpusim.cost_model import EfficiencyProfile
from repro.gpusim.kernel import ExecutionUnit, LayerWorkload, OpKind
from repro.models.config import ModelConfig

#: Largest fully connected layer (input features) the GL delegate accepts.
GPU_DELEGATE_MAX_DENSE_INPUT = 8192


class TfLiteCpuRunner(FrameworkRunner):
    """TensorFlow Lite fp32 CPU interpreter."""

    name = "Tensorflow Lite CPU"
    unit = ExecutionUnit.CPU

    def profile(self) -> EfficiencyProfile:
        return EfficiencyProfile(
            name=self.name,
            compute_efficiency=0.55,
            memory_efficiency=0.90,
            launch_overhead_factor=2.0,
            per_inference_overhead_s=5e-3,
        )

    def model_workloads(self, config: ModelConfig) -> List[LayerWorkload]:
        return self._conventional_workloads(
            config,
            op_kind=OpKind.FP32,
            threads=self.device.cpu.big_cores,
            fused_batchnorm=True,
            separate_activation=False,
            coalesced=True,
            input_reuse=64.0,
            weight_reuse=16.0,
        )


class TfLiteQuantizedCpuRunner(FrameworkRunner):
    """TensorFlow Lite 8-bit quantized CPU interpreter (the "Quant" column)."""

    name = "Tensorflow Lite Quant"
    unit = ExecutionUnit.CPU

    def profile(self) -> EfficiencyProfile:
        return EfficiencyProfile(
            name=self.name,
            compute_efficiency=0.50,
            memory_efficiency=0.90,
            launch_overhead_factor=2.0,
            per_inference_overhead_s=5e-3,
        )

    def model_workloads(self, config: ModelConfig) -> List[LayerWorkload]:
        return self._conventional_workloads(
            config,
            op_kind=OpKind.INT8,
            threads=self.device.cpu.big_cores,
            fused_batchnorm=True,
            separate_activation=False,
            coalesced=True,
            input_reuse=64.0,
            weight_reuse=16.0,
        )


class TfLiteGpuRunner(FrameworkRunner):
    """TensorFlow Lite GPU (GL compute shader) delegate."""

    name = "Tensorflow Lite GPU"
    unit = ExecutionUnit.GPU

    def profile(self) -> EfficiencyProfile:
        return EfficiencyProfile(
            name=self.name,
            compute_efficiency=0.08,
            memory_efficiency=0.55,
            launch_overhead_factor=20.0,
            per_inference_overhead_s=200e-3,
        )

    def check_feasibility(self, config: ModelConfig):
        for shaped in config.shaped_layers():
            layer = shaped.definition
            if layer.kind != "dense":
                continue
            in_features = 1
            for dim in shaped.input_shape:
                in_features *= dim
            if in_features > GPU_DELEGATE_MAX_DENSE_INPUT:
                return FrameworkResult(
                    framework=self.name,
                    model=config.name,
                    device=self.device.soc,
                    status=RunStatus.CRASH,
                    reason=(
                        f"GL delegate rejects dense layer {layer.name!r} with "
                        f"{in_features} input features "
                        f"(limit {GPU_DELEGATE_MAX_DENSE_INPUT})"
                    ),
                )
        return None

    def model_workloads(self, config: ModelConfig) -> List[LayerWorkload]:
        return self._conventional_workloads(
            config,
            op_kind=OpKind.FP16,
            threads=1,
            fused_batchnorm=True,
            separate_activation=False,
            coalesced=True,
            weight_reuse=4.0,
            input_reuse=8.0,
        )
