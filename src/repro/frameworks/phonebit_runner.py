"""PhoneBit framework runner.

Builds the PhoneBit kernel workloads (fused binary convolutions, bit-plane
first layer, packed pooling, float last layer) directly from a
:class:`~repro.models.config.ModelConfig` — no weights are instantiated — so
the full-size benchmark networks can be costed quickly.  The same kernel
builders back :meth:`repro.core.engine.PhoneBitEngine.network_workloads`,
which operates on instantiated networks.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.core import kernels as kern
from repro.core.engine import PHONEBIT_PROFILE
from repro.frameworks.base import FrameworkRunner
from repro.gpusim.cost_model import EfficiencyProfile
from repro.gpusim.kernel import ExecutionUnit, LayerWorkload
from repro.models.config import ModelConfig


class PhoneBitRunner(FrameworkRunner):
    """PhoneBit (this paper) running on the mobile GPU."""

    name = "PhoneBit"
    unit = ExecutionUnit.GPU

    def __init__(self, device, word_size: int = 64, fused: bool = True,
                 branchless: bool = True):
        super().__init__(device)
        self.word_size = word_size
        self.fused = fused
        self.branchless = branchless

    def profile(self) -> EfficiencyProfile:
        return PHONEBIT_PROFILE

    def model_workloads(self, config: ModelConfig) -> List[LayerWorkload]:
        workloads: List[LayerWorkload] = []
        packed_stream = False
        for shaped in config.shaped_layers():
            layer = shaped.definition
            in_shape = shaped.input_shape
            if layer.kind == "conv":
                geometry = shaped.conv_geometry
                if not layer.binary:
                    workloads.append(
                        kern.phonebit_float_conv_workload(layer.name, geometry)
                    )
                    packed_stream = False
                else:
                    workloads.append(
                        kern.phonebit_binary_conv_workload(
                            layer.name, geometry, word_size=self.word_size,
                            fused=self.fused, branchless=self.branchless,
                            input_bitplanes=8 if layer.input_layer else 0,
                            output_binary=layer.output_binary,
                        )
                    )
                    packed_stream = layer.output_binary
            elif layer.kind in ("maxpool", "avgpool"):
                workloads.append(
                    kern.phonebit_pool_workload(
                        layer.name, in_shape[0], in_shape[1], in_shape[2],
                        layer.pool_size, layer.stride, layer.padding,
                        packed=packed_stream and layer.kind == "maxpool",
                        word_size=self.word_size,
                    )
                )
            elif layer.kind == "dense":
                in_features = int(np.prod(in_shape))
                if layer.binary:
                    workloads.append(
                        kern.phonebit_binary_dense_workload(
                            layer.name, in_features, layer.out_features,
                            word_size=self.word_size,
                            output_binary=layer.output_binary,
                        )
                    )
                    packed_stream = layer.output_binary
                else:
                    workloads.append(
                        kern.phonebit_float_dense_workload(
                            layer.name, in_features, layer.out_features
                        )
                    )
                    packed_stream = False
            elif layer.kind == "flatten":
                continue
            else:
                raise ValueError(f"unknown layer kind {layer.kind!r}")
        return workloads
