"""CNNdroid baseline (RenderScript, full precision).

CNNdroid [Latifi Oskouei et al., MM'16] executes full-precision CNNs through
Android RenderScript.  Two execution modes are modeled:

* **CPU mode** — single-threaded Java/RenderScript fallback without NEON
  vectorization; orders of magnitude slower than a tuned NEON library.
* **GPU mode** — RenderScript "GPU" execution.  As the paper notes (citing
  the AI-benchmark study), RenderScript kernels are generic, unfused,
  operate on NCHW float buffers with poor coalescing, and pay a host
  round-trip per layer.

Both modes load the entire model as float32 Java arrays.  Android caps a
single app's Java heap (512 MB with ``largeHeap``), so VGG16's 527 MB of
float weights cannot even be loaded — reproducing the ``OOM`` entries of
Table III on *both* devices, independent of their total RAM.
"""

from __future__ import annotations

from typing import List

from repro.frameworks.base import FrameworkResult, FrameworkRunner, RunStatus
from repro.gpusim.cost_model import EfficiencyProfile
from repro.gpusim.kernel import ExecutionUnit, LayerWorkload, OpKind
from repro.models.config import ModelConfig

#: Android per-app Java heap limit (bytes) with android:largeHeap="true".
JAVA_HEAP_LIMIT_BYTES = 512 * 1024 * 1024

#: Overhead factor of Java float[] model storage (object headers, copies
#: made while parsing the model file).
JAVA_MODEL_OVERHEAD = 1.25


class _CnnDroidBase(FrameworkRunner):
    """Shared CNNdroid behaviour: Java-heap model loading and NCHW layout."""

    def check_feasibility(self, config: ModelConfig):
        model_bytes = self.model_memory_bytes(config, bytes_per_weight=4.0)
        activation_bytes = self.peak_activation_bytes(config, bytes_per_value=4.0)
        required = model_bytes * JAVA_MODEL_OVERHEAD + 2.0 * activation_bytes
        if required > JAVA_HEAP_LIMIT_BYTES:
            return FrameworkResult(
                framework=self.name,
                model=config.name,
                device=self.device.soc,
                status=RunStatus.OOM,
                reason=(
                    f"model needs {required / 2**20:.0f} MiB of Java heap, "
                    f"limit is {JAVA_HEAP_LIMIT_BYTES / 2**20:.0f} MiB"
                ),
            )
        return None


class CnnDroidCpuRunner(_CnnDroidBase):
    """CNNdroid running on the CPU (single-threaded, unvectorized)."""

    name = "CNNdroid CPU"
    unit = ExecutionUnit.CPU

    def profile(self) -> EfficiencyProfile:
        return EfficiencyProfile(
            name=self.name,
            compute_efficiency=0.020,
            memory_efficiency=0.50,
            launch_overhead_factor=5.0,
            per_inference_overhead_s=30e-3,
        )

    def model_workloads(self, config: ModelConfig) -> List[LayerWorkload]:
        return self._conventional_workloads(
            config,
            op_kind=OpKind.FP32,
            threads=1,
            fused_batchnorm=False,
            separate_activation=True,
            coalesced=True,
            weight_reuse=4.0,
            input_reuse=4.0,
        )


class CnnDroidGpuRunner(_CnnDroidBase):
    """CNNdroid running through the RenderScript GPU path."""

    name = "CNNdroid GPU"
    unit = ExecutionUnit.GPU

    def profile(self) -> EfficiencyProfile:
        return EfficiencyProfile(
            name=self.name,
            compute_efficiency=0.025,
            memory_efficiency=0.50,
            launch_overhead_factor=12.0,
            per_inference_overhead_s=40e-3,
        )

    def model_workloads(self, config: ModelConfig) -> List[LayerWorkload]:
        return self._conventional_workloads(
            config,
            op_kind=OpKind.FP32,
            threads=1,
            fused_batchnorm=False,
            separate_activation=True,
            coalesced=True,
            weight_reuse=4.0,
            input_reuse=8.0,
        )
