"""Command-line interface for the PhoneBit reproduction.

Usage (no console-script entry point is installed; invoke the module):

    python -m repro.cli devices
    python -m repro.cli sizes
    python -m repro.cli runtime     [--model "YOLOv2 Tiny"] [--device sd855]
    python -m repro.cli energy      [--model "YOLOv2 Tiny"] [--device sd820]
    python -m repro.cli figure5     [--device sd855]
    python -m repro.cli ablations
    python -m repro.cli summary     <model.pbit>
    python -m repro.cli serve-bench [--model MicroCNN] [--batches 1,4,16,64]
    python -m repro.cli loadgen     [--model MicroCNN] [--rps 200]
    python -m repro.cli rollout     [--model MicroCNN] [--divergent]
    python -m repro.cli rollback    [--model MicroCNN]
    python -m repro.cli cluster-worker --connect tcp://HOST:PORT

Each sub-command regenerates one of the paper's tables/figures, inspects a
``.pbit`` model file, or exercises the micro-batching inference service
(``serve-bench`` sweeps closed-loop throughput vs the sequential engine;
``loadgen`` offers an open-loop Poisson load and reports tail latency).
Both serving commands take ``--workers N`` to route the same traffic
through a sharded :class:`~repro.serving.cluster.ClusterService` instead
of one in-process service, and ``--transport pipe|uds|tcp`` to pick the
worker wire (see ``docs/architecture.md`` and ``docs/deployment.md``).
``loadgen`` additionally takes ``--autoscale MIN:MAX`` (elastic fleet —
grow on sustained shedding, shrink when idle), ``--pin MODEL=K,...``
(attach each model only to its rendezvous top-K workers), and
``--chaos SEED:PLAN`` (seeded deterministic fault injection — e.g.
``7:crash,stall*2,delay`` — against a cluster with retries, hedging and
slow-worker quarantine; see ``docs/deployment.md``).  ``--scenario
NAME|FILE|SPEC`` replays a seeded multi-tenant workload (bundled name,
JSON spec file, or inline tenant grammar) with SLO-tiered admission and
per-class pass summaries, composable with ``--chaos``; ``--slo
interactive|standard|batch`` tags a plain open-loop stream with one
class (see ``docs/serving.md``).
``cluster-worker`` runs one self-registering worker process — on the
router's host or any other — that dials the router, fetches model bytes
it has never seen into the per-host digest cache, and serves until the
router stops it.
``rollout`` drives a zero-downtime live rollout under sustained load —
publish a v2 artifact mid-stream, canary-mirror a traffic fraction
against the stable digest, promote on a clean gate (``--divergent``
instead publishes different weights and must auto-roll back on the
first mismatch); ``rollback`` aborts a live rollout by operator command
mid-canary.  Both print the rollout event timeline and verify zero
shed, zero lost requests and bit-identical outputs throughout (see
docs/deployment.md, "Live rollout & rollback").
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.analysis import ablations, experiments
from repro.gpusim.device import get_device


def _add_device_argument(parser: argparse.ArgumentParser, default: str) -> None:
    parser.add_argument(
        "--device",
        default=default,
        help="device preset (snapdragon_820 / snapdragon_855 / sd820 / sd855)",
    )


def parse_byte_size(text: str) -> int:
    """Parse a byte budget like ``64M``, ``512K``, ``1G`` or plain bytes."""
    text = str(text).strip()
    multipliers = {"K": 2**10, "M": 2**20, "G": 2**30}
    scale = 1
    if text and text[-1].upper() in multipliers:
        scale = multipliers[text[-1].upper()]
        text = text[:-1]
    try:
        value = int(float(text) * scale)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"invalid byte size {text!r}; expected e.g. 64M, 512K, 1G or bytes"
        ) from None
    if value <= 0:
        raise argparse.ArgumentTypeError("byte size must be positive")
    return value


def parse_autoscale_bounds(text: str) -> "tuple[int, int]":
    """Parse an autoscale spec like ``1:4`` into ``(min, max)`` workers."""
    parts = str(text).split(":")
    if len(parts) != 2:
        raise argparse.ArgumentTypeError(
            f"invalid autoscale spec {text!r}; expected MIN:MAX (e.g. 1:4)"
        )
    try:
        low, high = int(parts[0]), int(parts[1])
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"invalid autoscale spec {text!r}; MIN and MAX must be integers"
        ) from None
    if low < 1 or high < low:
        raise argparse.ArgumentTypeError(
            "autoscale bounds must satisfy 1 <= MIN <= MAX"
        )
    return (low, high)


def parse_pin_spec(text: str) -> "dict[str, int]":
    """Parse a pinning spec like ``VGG16=2,MicroCNN=1`` into ``{model: K}``."""
    pins: "dict[str, int]" = {}
    for item in str(text).split(","):
        item = item.strip()
        if not item:
            continue
        name, sep, count = item.partition("=")
        name = name.strip()
        if not sep or not name:
            raise argparse.ArgumentTypeError(
                f"invalid pin {item!r}; expected MODEL=K"
            )
        try:
            workers = int(count)
        except ValueError:
            raise argparse.ArgumentTypeError(
                f"invalid pin count in {item!r}; K must be an integer"
            ) from None
        if workers < 1:
            raise argparse.ArgumentTypeError(
                f"pin count for {name!r} must be >= 1"
            )
        pins[name] = workers
    if not pins:
        raise argparse.ArgumentTypeError("empty --pin spec")
    return pins


def parse_chaos_argument(text: str):
    """Parse ``--chaos SEED:PLAN`` into a fault plan (argparse type).

    Thin :mod:`argparse` shim over
    :func:`repro.serving.faults.parse_chaos_spec` so a bad spec surfaces
    as a usage error instead of a traceback.
    """
    from repro.serving.faults import parse_chaos_spec

    try:
        return parse_chaos_spec(text)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None


def parse_scenario_argument(text: str):
    """Parse ``--scenario`` into a :class:`ScenarioSpec` (argparse type).

    Accepts a bundled scenario name, a ``.json`` spec file, or an inline
    tenant spec string; malformed specs surface as usage errors.
    """
    from repro.serving.scenarios import resolve_scenario

    try:
        return resolve_scenario(text)
    except (ValueError, OSError, TypeError) as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None


#: Kernel-backend specs accepted by ``--backend`` — kept in lockstep with
#: :data:`repro.core.backends.BACKEND_CHOICES` (asserted by the CLI tests)
#: without importing the backend registry at parser-build time.
BACKEND_CHOICES = ("auto", "numpy", "cffi", "numba")


def _add_execution_arguments(parser: argparse.ArgumentParser) -> None:
    """Shared fused-executor knobs for the bench subcommands."""
    parser.add_argument(
        "--chunk-hint", type=parse_byte_size, default=None, metavar="BYTES",
        help="working-set byte budget for run_batch chunking (e.g. 64M); "
             "default uses the engine's built-in budget",
    )
    parser.add_argument(
        "--threads", type=int, default=None, metavar="N",
        help="fused-executor tile threads (default: REPRO_NUM_THREADS or "
             "all cores)",
    )
    parser.add_argument(
        "--backend", choices=BACKEND_CHOICES, default=None,
        help="compiled kernel backend for the fused plan (default: "
             "REPRO_BACKEND or auto — compile where possible, verified "
             "bit-exact, NumPy fallback otherwise)",
    )


def _add_transport_arguments(parser: argparse.ArgumentParser) -> None:
    """Shared cluster-transport knobs for the serving subcommands."""
    parser.add_argument(
        "--transport", choices=("pipe", "uds", "tcp"), default="pipe",
        help="cluster worker wire: multiprocessing pipes (single host, "
             "default), Unix-domain sockets, or TCP (cross-host)",
    )
    parser.add_argument(
        "--bind", default=None, metavar="ADDR",
        help="socket-transport listen address (tcp://host:port or "
             "uds:///path); defaults to TCP loopback on an ephemeral port "
             "or a temp-dir socket path",
    )
    parser.add_argument(
        "--expect-workers", type=int, default=0, metavar="N",
        help="wait for N externally launched cluster-worker processes to "
             "self-register (socket transports; combine with --workers 0 "
             "to spawn none locally)",
    )


def _wants_cluster(args) -> bool:
    """Route through a ClusterService instead of one in-process service?"""
    return (args.workers > 1 or args.transport != "pipe"
            or args.expect_workers > 0
            or getattr(args, "autoscale", None) is not None
            or getattr(args, "pin", None) is not None
            or getattr(args, "slo", None) is not None)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the PhoneBit paper's evaluation tables and figures.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("devices", help="Table I — device configurations")
    subparsers.add_parser("sizes", help="Table II — model sizes")

    runtime = subparsers.add_parser("runtime", help="Table III — runtime comparison")
    runtime.add_argument("--model", default=None,
                         help="limit to one model (AlexNet / 'YOLOv2 Tiny' / VGG16)")

    energy = subparsers.add_parser("energy", help="Table IV — power and FPS/W")
    energy.add_argument("--model", default="YOLOv2 Tiny")
    _add_device_argument(energy, "snapdragon_820")

    figure5 = subparsers.add_parser("figure5", help="Figure 5 — per-layer speedup")
    figure5.add_argument("--model", default="YOLOv2 Tiny")
    _add_device_argument(figure5, "snapdragon_855")

    subparsers.add_parser("ablations", help="fusion / branchless / packing ablations")

    summary = subparsers.add_parser("summary", help="summarize a .pbit model file")
    summary.add_argument("path", help="path to a .pbit file")

    serve_bench = subparsers.add_parser(
        "serve-bench",
        help="closed-loop serving throughput sweep vs sequential engine.run",
    )
    serve_bench.add_argument("--model", default="MicroCNN",
                             help="serving-zoo model (MicroCNN / TinyCNN / ...)")
    serve_bench.add_argument("--batches", default="1,4,16,64",
                             help="comma-separated offered batch levels")
    serve_bench.add_argument("--requests", type=int, default=64,
                             help="requests per offered-load level")
    serve_bench.add_argument("--max-wait-ms", type=float, default=2.0,
                             help="scheduler max wait before a partial flush")
    serve_bench.add_argument("--seed", type=int, default=0)
    serve_bench.add_argument("--json", metavar="PATH", default=None,
                             help="also write records to PATH ('-' for stdout)")
    serve_bench.add_argument("--workers", type=int, default=1, metavar="N",
                             help="serve through a ClusterService of N worker "
                                  "processes instead of one in-process service")
    _add_transport_arguments(serve_bench)
    _add_execution_arguments(serve_bench)

    loadgen = subparsers.add_parser(
        "loadgen",
        help="open-loop Poisson load generator against the inference service",
    )
    loadgen.add_argument("--model", default="MicroCNN",
                         help="serving-zoo model (MicroCNN / TinyCNN / ...)")
    loadgen.add_argument("--rps", type=float, default=200.0,
                         help="offered load in requests per second")
    loadgen.add_argument("--requests", type=int, default=64,
                         help="total requests to offer")
    loadgen.add_argument("--max-batch-size", type=int, default=32)
    loadgen.add_argument("--max-wait-ms", type=float, default=2.0)
    loadgen.add_argument("--cache-capacity", type=int, default=1024,
                         help="LRU response-cache entries (0 disables)")
    loadgen.add_argument("--unique-inputs", action="store_true",
                         help="make every request distinct (defeats the cache)")
    loadgen.add_argument("--seed", type=int, default=0)
    loadgen.add_argument("--workers", type=int, default=1, metavar="N",
                         help="offer the load to a ClusterService of N worker "
                              "processes instead of one in-process service")
    loadgen.add_argument("--autoscale", type=parse_autoscale_bounds,
                         default=None, metavar="MIN:MAX",
                         help="let the cluster grow on sustained shedding and "
                              "shrink when idle, within MIN..MAX workers "
                              "(implies cluster mode; see docs/deployment.md)")
    loadgen.add_argument("--pin", type=parse_pin_spec, default=None,
                         metavar="MODEL=K,...",
                         help="pin each MODEL to its rendezvous top-K workers "
                              "so only K workers attach and serve it "
                              "(implies cluster mode); pinned models are "
                              "published even if not the --model under load")
    loadgen.add_argument("--chaos", type=parse_chaos_argument, default=None,
                         metavar="SEED:PLAN",
                         help="run a deterministic chaos scenario: a seeded "
                              "fault plan (e.g. 7:crash,stall*2,delay) is "
                              "injected into a cluster with retries and "
                              "slow-worker quarantine enabled; the same SEED "
                              "replays the same fault schedule (implies "
                              "cluster mode with at least 2 workers)")
    loadgen.add_argument("--deadline-s", type=float, default=None, metavar="S",
                         help="end-to-end per-request deadline: expired work "
                              "is dropped unexecuted and its future fails "
                              "with DeadlineExceededError (chaos mode)")
    loadgen.add_argument("--scenario", type=parse_scenario_argument,
                         default=None, metavar="NAME|FILE|SPEC",
                         help="drive a seeded multi-tenant scenario instead "
                              "of a single-rate stream: a bundled name "
                              "(steady_mix, flash_crowd, ...), a .json spec "
                              "file, or an inline spec "
                              "('web,slo=interactive,rate=80;jobs,slo=batch"
                              ",rate=40'); implies cluster mode, composes "
                              "with --chaos (see docs/serving.md)")
    loadgen.add_argument("--slo", choices=("interactive", "standard",
                                           "batch"),
                         default=None,
                         help="tag every request with one SLO class for the "
                              "router's tiered admission (implies cluster "
                              "mode with non-blocking admission)")
    loadgen.add_argument("--rate-scale", type=float, default=1.0,
                         metavar="X",
                         help="multiply every scenario tenant's arrival "
                              "rate by X (scenario mode)")
    loadgen.add_argument("--duration-s", type=float, default=None,
                         metavar="S",
                         help="override the scenario's duration (scenario "
                              "mode)")
    loadgen.add_argument("--passes", type=int, default=1, metavar="N",
                         help="run the scenario N times with seeds "
                              "SEED..SEED+N-1 and aggregate per-class "
                              "attainment (scenario mode)")
    _add_transport_arguments(loadgen)
    _add_execution_arguments(loadgen)

    def _add_rollout_arguments(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("--model", default="MicroCNN",
                         help="serving-zoo model to roll out")
        sub.add_argument("--workers", type=int, default=2, metavar="N",
                         help="cluster worker processes")
        sub.add_argument("--requests", type=int, default=192,
                         help="open-loop requests offered across the drill")
        sub.add_argument("--rps", type=float, default=250.0,
                         help="offered load in requests per second")
        sub.add_argument("--seed", type=int, default=0)
        sub.add_argument("--publish-at", type=float, default=0.25,
                         metavar="F",
                         help="publish the v2 artifact once this fraction "
                              "of the schedule has arrived")
        sub.add_argument("--canary-fraction", type=float, default=0.25,
                         metavar="F",
                         help="fraction of traffic mirrored to the canary")
        sub.add_argument("--min-samples", type=int, default=4, metavar="N",
                         help="comparison samples required before promote")
        sub.add_argument("--json", metavar="PATH", default=None,
                         help="also write the rollout event timeline to "
                              "PATH ('-' for stdout)")

    rollout = subparsers.add_parser(
        "rollout",
        help="live-rollout drill: publish a v2 artifact under sustained "
             "load, canary it against the stable digest, promote on a "
             "clean gate (zero shed, zero lost, bit-identical)",
    )
    _add_rollout_arguments(rollout)
    rollout.add_argument(
        "--divergent", action="store_true",
        help="publish an artifact with genuinely different weights: the "
             "canary must catch the first mismatched answer and "
             "auto-roll back with the stable digest still serving")

    rollback = subparsers.add_parser(
        "rollback",
        help="operator-rollback drill: abort a live rollout mid-canary "
             "and verify the stable digest never stopped serving",
    )
    _add_rollout_arguments(rollback)

    cluster_worker = subparsers.add_parser(
        "cluster-worker",
        help="run one self-registering cluster worker (remote or loopback)",
    )
    cluster_worker.add_argument(
        "--connect", required=True, metavar="ADDR",
        help="router address: tcp://host:port or uds:///path/to.sock",
    )
    cluster_worker.add_argument(
        "--retry-s", type=float, default=30.0, metavar="S",
        help="keep dialing a router that is not up yet for this long "
             "(lets workers start before the router)",
    )
    cluster_worker.add_argument(
        "--no-reconnect", action="store_true",
        help="exit on connection loss instead of re-registering",
    )
    cluster_worker.add_argument(
        "--threads", type=int, default=None, metavar="N",
        help="fused-executor threads (overrides the router-sent config)",
    )
    cluster_worker.add_argument(
        "--backend", choices=BACKEND_CHOICES, default=None,
        help="kernel backend for this worker's host (overrides the "
             "router-sent config; selection is per host because the "
             "toolchain is)",
    )
    return parser


def _command_runtime(model: Optional[str]) -> str:
    models = (model,) if model else experiments.DEFAULT_MODELS
    table = experiments.table3_runtime(models=models)
    return table.table()


def _command_summary(path: str) -> str:
    from repro.core.model_format import load_network

    network = load_network(path)
    return network.summary()


def _command_serve_bench(args) -> str:
    from repro.core.engine import PhoneBitEngine
    from repro.serving import sweep_table, throughput_sweep, write_sweep_records

    batches = tuple(int(b) for b in str(args.batches).split(",") if b.strip())
    if _wants_cluster(args):
        from repro.serving.cluster import scaling_sweep, scaling_table

        if args.expect_workers > 0 and len(batches) > 1:
            raise SystemExit(
                "serve-bench: --expect-workers supports a single --batches "
                "level (each level's cluster close() stops the external "
                "workers; restart them between levels or use one level)"
            )
        records = []
        for batch in batches:
            records.extend(scaling_sweep(
                model=args.model,
                worker_counts=(args.workers,),
                offered_batch=batch,
                requests=args.requests,
                max_wait_ms=args.max_wait_ms,
                seed=args.seed,
                worker_threads=args.threads,
                worker_backend=args.backend or "auto",
                chunk_bytes=args.chunk_hint,
                transport=args.transport,
                bind=args.bind,
                expect_workers=args.expect_workers,
            ))
        table = scaling_table(
            records,
            title=f"Cluster serving throughput — {args.model} "
                  f"({args.workers}+{args.expect_workers} workers over "
                  f"{args.transport}, outputs verified bit-identical "
                  "to the single-process service)",
        )
        if args.json:
            table = table + "\n" + write_sweep_records(records, args.json)
        return table
    records = throughput_sweep(
        model=args.model,
        offered_batches=batches,
        requests_per_level=args.requests,
        max_wait_ms=args.max_wait_ms,
        seed=args.seed,
        engine=PhoneBitEngine(num_threads=args.threads, backend=args.backend),
        chunk_bytes=args.chunk_hint,
    )
    table = sweep_table(
        records,
        title=f"Serving throughput — {args.model} ({args.requests} requests/level, "
              "outputs verified bit-identical to unbatched engine.run)",
    )
    if args.json:
        table = table + "\n" + write_sweep_records(records, args.json)
    return table


def _command_chaos(args) -> str:
    """Seeded fault-injection run (``loadgen --chaos SEED:PLAN``)."""
    from repro.serving import run_chaos_scenario

    result = run_chaos_scenario(
        args.chaos,
        model=args.model,
        workers=max(2, args.workers),
        requests=args.requests,
        offered_rps=args.rps,
        deadline_s=args.deadline_s,
        seed=args.seed,
        max_batch_size=args.max_batch_size,
        max_wait_ms=args.max_wait_ms,
        cache_capacity=args.cache_capacity,
        chunk_bytes=args.chunk_hint,
        worker_threads=args.threads,
        worker_backend=args.backend or "auto",
        transport=args.transport,
        bind=args.bind,
        expect_workers=args.expect_workers,
    )
    return result.table()


def _command_scenario(args) -> str:
    """Seeded multi-tenant scenario run (``loadgen --scenario ...``)."""
    from repro.serving.scenarios import passes_table, run_scenario_passes

    results, aggregates = run_scenario_passes(
        args.scenario,
        passes=max(1, args.passes),
        seed=args.seed,
        workers=max(2, args.workers),
        duration_s=args.duration_s,
        rate_scale=args.rate_scale,
        chaos=args.chaos,
        max_batch_size=args.max_batch_size,
        max_wait_ms=args.max_wait_ms,
        cache_capacity=args.cache_capacity,
        chunk_bytes=args.chunk_hint,
        worker_threads=args.threads,
        worker_backend=args.backend or "auto",
        transport=args.transport,
        bind=args.bind,
        expect_workers=args.expect_workers,
    )
    pieces = [result.table() for result in results]
    if len(results) > 1:
        pieces.append(passes_table(aggregates))
    return "\n\n".join(pieces)


def _command_rollout(args, operator_rollback: bool = False) -> str:
    """Live-rollout / operator-rollback drill (``rollout`` / ``rollback``)."""
    from repro.serving.loadgen import run_rollout_drill, write_sweep_records
    from repro.serving.rollout import RolloutConfig

    min_samples = (10**9 if operator_rollback else max(1, args.min_samples))
    result = run_rollout_drill(
        model=args.model,
        workers=max(2, args.workers),
        requests=args.requests,
        offered_rps=args.rps,
        seed=args.seed,
        divergent=getattr(args, "divergent", False),
        operator_rollback=operator_rollback,
        publish_at=args.publish_at,
        rollout=RolloutConfig(
            canary_fraction=args.canary_fraction,
            # The rollback drill parks the rollout in canary (an
            # unreachable quota) so the operator abort is what ends it.
            min_canary_samples=min_samples,
        ),
    )
    table = result.table()
    if args.json:
        table = table + "\n" + write_sweep_records(
            list(result.timeline), args.json)
    return table


def _command_loadgen(args) -> str:
    from repro.core.engine import PhoneBitEngine
    from repro.serving import InferenceService, run_open_loop, synthetic_images

    if args.scenario is not None:
        return _command_scenario(args)
    if args.chaos is not None:
        return _command_chaos(args)
    if _wants_cluster(args):
        from repro.models.zoo import get_serving_config
        from repro.serving import ClusterService

        input_shape = get_serving_config(args.model).input_shape
        autoscale = None
        if args.autoscale is not None:
            from repro.serving.autoscale import AutoscaleConfig

            autoscale = AutoscaleConfig(min_workers=args.autoscale[0],
                                        max_workers=args.autoscale[1])
        # Pinned models must be published so workers can attach them.
        models = tuple(dict.fromkeys((args.model,) + tuple(args.pin or ())))
        service = ClusterService(
            models=models,
            workers=args.workers,
            max_batch_size=args.max_batch_size,
            max_wait_ms=args.max_wait_ms,
            cache_capacity=args.cache_capacity,
            chunk_bytes=args.chunk_hint,
            worker_threads=args.threads,
            worker_backend=args.backend or "auto",
            transport=args.transport,
            bind=args.bind,
            expect_workers=args.expect_workers,
            pin_models=args.pin,
            autoscale=autoscale,
        )
    else:
        service = InferenceService(
            engine=PhoneBitEngine(num_threads=args.threads,
                                  backend=args.backend),
            max_batch_size=args.max_batch_size,
            max_wait_ms=args.max_wait_ms,
            cache_capacity=args.cache_capacity,
            chunk_bytes=args.chunk_hint,
        )
        input_shape = None
    try:
        if input_shape is None:
            # Inside the guard: an unknown model must still close the service.
            input_shape = service.pool.get(args.model).input_shape
        images = synthetic_images(
            input_shape, args.requests, seed=args.seed,
            unique=args.unique_inputs,
        )
        if args.slo is not None:
            from repro.analysis.reporting import format_kv
            from repro.serving import run_open_loop_shedding

            shed_result = run_open_loop_shedding(
                service, args.model, images, offered_rps=args.rps,
                seed=args.seed, slo=args.slo,
            )
            return format_kv(
                [
                    ("slo class", args.slo),
                    ("offered", shed_result.offered),
                    ("completed", shed_result.completed),
                    ("shed", shed_result.shed),
                    ("shed %", 100.0 * shed_result.shed_rate),
                    ("achieved (req/s)", shed_result.achieved_rps),
                    ("retry-after mean (ms)",
                     shed_result.retry_after_ms_mean),
                ],
                title=f"Open loop ({args.model}, non-blocking admission)",
            )
        result = run_open_loop(
            service, args.model, images, offered_rps=args.rps, seed=args.seed
        )
    finally:
        service.close()
    return result.table()


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "devices":
        output = experiments.table1_devices().table()
    elif args.command == "sizes":
        output = experiments.table2_model_size().table()
    elif args.command == "runtime":
        output = _command_runtime(args.model)
    elif args.command == "energy":
        output = experiments.table4_energy(
            model=args.model, device=get_device(args.device)
        ).table()
    elif args.command == "figure5":
        output = experiments.figure5_layer_speedup(
            model=args.model, device=get_device(args.device)
        ).chart()
    elif args.command == "ablations":
        output = "\n\n".join([
            ablations.fusion_ablation().table("Ablation — layer integration"),
            ablations.branchless_ablation().table("Ablation — branch divergence"),
            ablations.packing_width_ablation().table("Ablation — packing word width"),
            ablations.workload_rule_ablation().table("Ablation — workload rule"),
        ])
    elif args.command == "summary":
        output = _command_summary(args.path)
    elif args.command == "serve-bench":
        output = _command_serve_bench(args)
    elif args.command == "loadgen":
        output = _command_loadgen(args)
    elif args.command == "rollout":
        output = _command_rollout(args)
    elif args.command == "rollback":
        output = _command_rollout(args, operator_rollback=True)
    elif args.command == "cluster-worker":
        from repro.serving.transport import run_cluster_worker

        return run_cluster_worker(
            args.connect,
            threads=args.threads,
            retry_s=args.retry_s,
            reconnect=not args.no_reconnect,
            backend=args.backend,
        )
    else:  # pragma: no cover - argparse enforces the choices
        raise SystemExit(2)
    print(output)
    return 0


if __name__ == "__main__":
    sys.exit(main())
