"""Command-line interface for the PhoneBit reproduction.

Usage (no console-script entry point is installed; invoke the module):

    python -m repro.cli devices
    python -m repro.cli sizes
    python -m repro.cli runtime   [--model "YOLOv2 Tiny"] [--device sd855]
    python -m repro.cli energy    [--model "YOLOv2 Tiny"] [--device sd820]
    python -m repro.cli figure5   [--device sd855]
    python -m repro.cli ablations
    python -m repro.cli summary   <model.pbit>

Each sub-command regenerates one of the paper's tables/figures or inspects a
``.pbit`` model file.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.analysis import ablations, experiments
from repro.gpusim.device import get_device


def _add_device_argument(parser: argparse.ArgumentParser, default: str) -> None:
    parser.add_argument(
        "--device",
        default=default,
        help="device preset (snapdragon_820 / snapdragon_855 / sd820 / sd855)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the PhoneBit paper's evaluation tables and figures.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("devices", help="Table I — device configurations")
    subparsers.add_parser("sizes", help="Table II — model sizes")

    runtime = subparsers.add_parser("runtime", help="Table III — runtime comparison")
    runtime.add_argument("--model", default=None,
                         help="limit to one model (AlexNet / 'YOLOv2 Tiny' / VGG16)")

    energy = subparsers.add_parser("energy", help="Table IV — power and FPS/W")
    energy.add_argument("--model", default="YOLOv2 Tiny")
    _add_device_argument(energy, "snapdragon_820")

    figure5 = subparsers.add_parser("figure5", help="Figure 5 — per-layer speedup")
    figure5.add_argument("--model", default="YOLOv2 Tiny")
    _add_device_argument(figure5, "snapdragon_855")

    subparsers.add_parser("ablations", help="fusion / branchless / packing ablations")

    summary = subparsers.add_parser("summary", help="summarize a .pbit model file")
    summary.add_argument("path", help="path to a .pbit file")
    return parser


def _command_runtime(model: Optional[str]) -> str:
    models = (model,) if model else experiments.DEFAULT_MODELS
    table = experiments.table3_runtime(models=models)
    return table.table()


def _command_summary(path: str) -> str:
    from repro.core.model_format import load_network

    network = load_network(path)
    return network.summary()


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "devices":
        output = experiments.table1_devices().table()
    elif args.command == "sizes":
        output = experiments.table2_model_size().table()
    elif args.command == "runtime":
        output = _command_runtime(args.model)
    elif args.command == "energy":
        output = experiments.table4_energy(
            model=args.model, device=get_device(args.device)
        ).table()
    elif args.command == "figure5":
        output = experiments.figure5_layer_speedup(
            model=args.model, device=get_device(args.device)
        ).chart()
    elif args.command == "ablations":
        output = "\n\n".join([
            ablations.fusion_ablation().table("Ablation — layer integration"),
            ablations.branchless_ablation().table("Ablation — branch divergence"),
            ablations.packing_width_ablation().table("Ablation — packing word width"),
            ablations.workload_rule_ablation().table("Ablation — workload rule"),
        ])
    elif args.command == "summary":
        output = _command_summary(args.path)
    else:  # pragma: no cover - argparse enforces the choices
        raise SystemExit(2)
    print(output)
    return 0


if __name__ == "__main__":
    sys.exit(main())
