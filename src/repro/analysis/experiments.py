"""Experiment drivers that regenerate the paper's tables and figures.

Every function returns a structured result object whose ``table()`` /
``chart()`` method renders the same rows/series the paper reports; the
benchmark harness under ``benchmarks/`` simply calls these and prints the
output.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.analysis.metrics import speedup_summary
from repro.analysis.reporting import format_bar_chart, format_table
from repro.frameworks.base import FrameworkResult
from repro.frameworks.registry import FRAMEWORK_ORDER, all_runners, get_runner
from repro.gpusim.device import DeviceSpec, snapdragon_820, snapdragon_855
from repro.gpusim.energy import EnergyModel, EnergyReport
from repro.models import BENCHMARK_MODELS, get_model_config, model_size_report
from repro.models.config import ModelConfig

#: Paper values used for the paper-vs-measured comparison in EXPERIMENTS.md.
PAPER_TABLE2 = {
    "AlexNet": {"full_mb": 249.5, "bnn_mb": 16.3, "full_acc": 89.0, "bnn_acc": 87.2},
    "YOLOv2 Tiny": {"full_mb": 63.4, "bnn_mb": 2.4, "full_acc": 57.1, "bnn_acc": 51.7},
    "VGG16": {"full_mb": 553.4, "bnn_mb": 32.1, "full_acc": 92.5, "bnn_acc": 87.8},
}

PAPER_TABLE3 = {
    ("Snapdragon 820", "AlexNet"): [8243, 766, 143, "CRASH", 103, 22.9],
    ("Snapdragon 820", "YOLOv2 Tiny"): [51313, 1483, 669, 468, 503, 42.1],
    ("Snapdragon 820", "VGG16"): ["OOM", "OOM", 2607, "CRASH", 1907, 152.3],
    ("Snapdragon 855", "AlexNet"): [5621, 369, 87, "CRASH", 24, 9.8],
    ("Snapdragon 855", "YOLOv2 Tiny"): [23144, 845, 306, 430, 88, 22.6],
    ("Snapdragon 855", "VGG16"): ["OOM", "OOM", 932, "CRASH", 252, 73.8],
}

PAPER_TABLE4 = {
    "CNNdroid CPU": {"power_mw": 914, "fps_per_watt": 0.02},
    "CNNdroid GPU": {"power_mw": 573, "fps_per_watt": 1.18},
    "Tensorflow Lite CPU": {"power_mw": 626, "fps_per_watt": 2.39},
    "Tensorflow Lite GPU": {"power_mw": 540, "fps_per_watt": 3.97},
    "Tensorflow Lite Quant": {"power_mw": 452, "fps_per_watt": 4.40},
    "PhoneBit": {"power_mw": 225.67, "fps_per_watt": 105.26},
}

PAPER_FIGURE5 = {
    "conv1": 23, "conv2": 38, "conv3": 62, "conv4": 34, "conv5": 43,
    "conv6": 60, "conv7": 42, "conv8": 41, "conv9": 3,
}

DEFAULT_MODELS = tuple(BENCHMARK_MODELS)


def default_devices() -> List[DeviceSpec]:
    """The two evaluation devices of Table I."""
    return [snapdragon_820(), snapdragon_855()]


# ---------------------------------------------------------------- Table I
@dataclass
class DeviceTable:
    """Result of the Table I experiment."""

    rows: List[dict]

    def table(self) -> str:
        headers = ["Device", "SOC", "Memory", "OS", "OpenCL Version", "ALUs in GPU"]
        return format_table(
            headers,
            [[row[h] for h in headers] for row in self.rows],
            title="Table I — mobile devices",
        )


def table1_devices(devices: Sequence[DeviceSpec] | None = None) -> DeviceTable:
    """Regenerate Table I from the device presets."""
    devices = list(devices) if devices is not None else default_devices()
    return DeviceTable(rows=[device.table_row() for device in devices])


# --------------------------------------------------------------- Table II
@dataclass
class ModelSizeTable:
    """Result of the Table II (model size) experiment."""

    rows: List[dict]

    def table(self) -> str:
        headers = ["Model", "Full-precision (MB)", "BNN (MB)", "Compression",
                   "Paper full (MB)", "Paper BNN (MB)"]
        table_rows = []
        for row in self.rows:
            paper = PAPER_TABLE2.get(row["model"], {})
            table_rows.append([
                row["model"],
                row["full_precision_mb"],
                row["bnn_mb"],
                f"{row['compression_ratio']:.1f}x",
                paper.get("full_mb", "-"),
                paper.get("bnn_mb", "-"),
            ])
        return format_table(headers, table_rows,
                            title="Table II — model size (measured vs paper)")


def table2_model_size(models: Sequence[str] = DEFAULT_MODELS) -> ModelSizeTable:
    """Regenerate the model-size half of Table II."""
    return ModelSizeTable(rows=[model_size_report(get_model_config(m)) for m in models])


@dataclass
class AccuracyProxyResult:
    """Result of the Table II accuracy-gap proxy experiment."""

    float_accuracy: float
    binary_accuracy: float
    chance_accuracy: float

    @property
    def drop_points(self) -> float:
        return 100.0 * (self.float_accuracy - self.binary_accuracy)

    def table(self) -> str:
        rows = [
            ["float (proxy)", 100.0 * self.float_accuracy],
            ["binary (proxy)", 100.0 * self.binary_accuracy],
            ["chance", 100.0 * self.chance_accuracy],
        ]
        return format_table(["model", "accuracy (%)"], rows,
                            title="Table II — accuracy-gap proxy (synthetic data)")


def table2_accuracy_proxy(
    train_size: int = 384,
    test_size: int = 128,
    image_size: int = 16,
    epochs: int = 12,
    hidden_dims: Sequence[int] = (96, 96),
    noise: float = 110.0,
    seed: int = 0,
) -> AccuracyProxyResult:
    """Reproduce the accuracy *gap* of Table II on a feasible proxy task.

    Trains the same small MLP twice — full precision and binarized — on the
    synthetic CIFAR-10 stand-in and reports both accuracies.  The expected
    shape is: float ≥ binary ≫ chance, with a gap of a few points.
    """
    from repro.datasets.synthetic import synthetic_cifar10
    from repro.training.trainer import train_classifier

    dataset = synthetic_cifar10(train_size=train_size, test_size=test_size,
                                image_size=image_size, noise=noise, seed=seed)
    _, float_result = train_classifier(dataset, hidden_dims=hidden_dims,
                                       binary=False, epochs=epochs, seed=seed)
    _, binary_result = train_classifier(dataset, hidden_dims=hidden_dims,
                                        binary=True, epochs=epochs, seed=seed)
    return AccuracyProxyResult(
        float_accuracy=float_result.test_accuracy,
        binary_accuracy=binary_result.test_accuracy,
        chance_accuracy=1.0 / dataset.num_classes,
    )


# -------------------------------------------------------------- Table III
@dataclass
class RuntimeTable:
    """Result of the Table III experiment."""

    results: Dict[str, Dict[str, Dict[str, FrameworkResult]]] = field(default_factory=dict)
    # results[device][model][framework] -> FrameworkResult

    def runtime_ms(self, device: str, model: str, framework: str) -> Optional[float]:
        result = self.results[device][model][framework]
        return result.runtime_ms if result.succeeded else None

    def table(self, device: str | None = None) -> str:
        blocks = []
        for device_name, per_model in self.results.items():
            if device is not None and device_name != device:
                continue
            rows = []
            for model, per_framework in per_model.items():
                cells = [per_framework[name].cell() for name in FRAMEWORK_ORDER]
                paper = PAPER_TABLE3.get((device_name, model))
                rows.append([model] + cells)
                if paper is not None:
                    rows.append(["  (paper)"] + [str(p) for p in paper])
            blocks.append(
                format_table(
                    ["Model"] + list(FRAMEWORK_ORDER), rows,
                    title=f"Table III — average runtime (ms), {device_name}",
                )
            )
        return "\n\n".join(blocks)

    def speedups(self, device: str) -> Dict[str, float]:
        """Mean speedup of PhoneBit over every baseline on one device."""
        phonebit = {m: self.runtime_ms(device, m, "PhoneBit")
                    for m in self.results[device]}
        summary = {}
        for framework in FRAMEWORK_ORDER[:-1]:
            baseline = {m: self.runtime_ms(device, m, framework)
                        for m in self.results[device]}
            summary[framework] = speedup_summary(framework, baseline, phonebit).mean
        return summary


def table3_runtime(
    models: Sequence[str] = DEFAULT_MODELS,
    devices: Sequence[DeviceSpec] | None = None,
) -> RuntimeTable:
    """Regenerate Table III: every framework × model × device."""
    devices = list(devices) if devices is not None else default_devices()
    table = RuntimeTable()
    for device in devices:
        table.results[device.soc] = {}
        runners = all_runners(device)
        for model in models:
            config = get_model_config(model)
            table.results[device.soc][model] = {
                runner.name: runner.run_model(config) for runner in runners
            }
    return table


# -------------------------------------------------------------- Table IV
@dataclass
class EnergyTable:
    """Result of the Table IV experiment."""

    model: str
    device: str
    reports: Dict[str, Optional[EnergyReport]]

    def table(self) -> str:
        rows = []
        for framework in FRAMEWORK_ORDER:
            report = self.reports.get(framework)
            paper = PAPER_TABLE4.get(framework, {})
            if report is None:
                rows.append([framework, "-", "-", paper.get("power_mw", "-"),
                             paper.get("fps_per_watt", "-")])
            else:
                rows.append([
                    framework,
                    report.average_power_mw,
                    report.fps_per_watt,
                    paper.get("power_mw", "-"),
                    paper.get("fps_per_watt", "-"),
                ])
        return format_table(
            ["Framework", "Power (mW)", "FPS/W", "Paper power", "Paper FPS/W"],
            rows,
            title=f"Table IV — energy, {self.model} on {self.device}",
            float_format="{:.2f}",
        )


def table4_energy(
    model: str = "YOLOv2 Tiny",
    device: DeviceSpec | None = None,
) -> EnergyTable:
    """Regenerate Table IV: power and FPS/W for every framework."""
    device = device or snapdragon_820()
    config = get_model_config(model)
    energy_model = EnergyModel(device)
    reports: Dict[str, Optional[EnergyReport]] = {}
    for runner in all_runners(device):
        result = runner.run_model(config)
        if result.succeeded and result.run_cost is not None:
            reports[runner.name] = energy_model.report(result.run_cost)
        else:
            reports[runner.name] = None
    return EnergyTable(model=model, device=device.soc, reports=reports)


# -------------------------------------------------------------- Figure 5
@dataclass
class LayerSpeedupFigure:
    """Result of the Figure 5 experiment."""

    model: str
    device: str
    baseline: str
    speedups: Dict[str, float]
    phonebit_ms: Dict[str, float]
    baseline_ms: Dict[str, float]

    def chart(self) -> str:
        return format_bar_chart(
            self.speedups,
            title=(
                f"Figure 5 — per-layer speedup of PhoneBit over {self.baseline} "
                f"({self.model}, {self.device}); paper: "
                + ", ".join(f"{k}={v}x" for k, v in PAPER_FIGURE5.items())
            ),
        )


def figure5_layer_speedup(
    model: str = "YOLOv2 Tiny",
    device: DeviceSpec | None = None,
    baseline: str = "CNNdroid GPU",
) -> LayerSpeedupFigure:
    """Regenerate Figure 5: per-conv-layer speedup over CNNdroid GPU."""
    device = device or snapdragon_855()
    config = get_model_config(model)
    phonebit = get_runner("PhoneBit", device).run_model(config)
    reference = get_runner(baseline, device).run_model(config)
    if not (phonebit.succeeded and reference.succeeded):
        raise RuntimeError("both frameworks must run the model for Figure 5")
    conv_names = [s.definition.name for s in config.conv_layers()]
    speedups = {}
    for name in conv_names:
        base_ms = reference.layer_times_ms.get(name)
        ours_ms = phonebit.layer_times_ms.get(name)
        if base_ms and ours_ms:
            speedups[name] = base_ms / ours_ms
    return LayerSpeedupFigure(
        model=model,
        device=device.soc,
        baseline=baseline,
        speedups=speedups,
        phonebit_ms={n: phonebit.layer_times_ms[n] for n in conv_names},
        baseline_ms={n: reference.layer_times_ms[n] for n in conv_names},
    )


def run_all(include_accuracy_proxy: bool = False) -> Dict[str, object]:
    """Run every experiment (used by the EXPERIMENTS.md generator)."""
    results: Dict[str, object] = {
        "table1": table1_devices(),
        "table2": table2_model_size(),
        "table3": table3_runtime(),
        "table4": table4_energy(),
        "figure5": figure5_layer_speedup(),
    }
    if include_accuracy_proxy:
        results["table2_accuracy"] = table2_accuracy_proxy()
    return results
