"""Plain-text table/figure rendering for the experiment harness."""

from __future__ import annotations

from typing import Iterable, List, Mapping, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
    float_format: str = "{:.1f}",
) -> str:
    """Render a list of rows as an aligned plain-text table."""
    rendered_rows: List[List[str]] = []
    for row in rows:
        rendered = []
        for cell in row:
            if isinstance(cell, float):
                rendered.append(float_format.format(cell))
            else:
                rendered.append(str(cell))
        rendered_rows.append(rendered)
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in rendered_rows:
        lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_kv(
    items: Iterable[Sequence[object]],
    title: str | None = None,
    float_format: str = "{:.2f}",
) -> str:
    """Render (key, value) pairs as an aligned two-column block.

    Used by the serving reports (:class:`repro.serving.service.ServiceReport`)
    and anywhere else a scalar summary beats a full table.
    """
    pairs = [(str(key), value) for key, value in items]
    rendered = []
    for key, value in pairs:
        if isinstance(value, float):
            rendered.append((key, float_format.format(value)))
        else:
            rendered.append((key, str(value)))
    lines = []
    if title:
        lines.append(title)
    key_width = max((len(key) for key, _ in rendered), default=0)
    for key, value in rendered:
        lines.append(f"{key.ljust(key_width)}  {value}")
    return "\n".join(lines)


def format_bar_chart(
    values: Mapping[str, float],
    title: str | None = None,
    width: int = 50,
    unit: str = "x",
) -> str:
    """Render a mapping as a horizontal ASCII bar chart (Figure 5 style)."""
    if not values:
        return title or ""
    maximum = max(values.values())
    lines = []
    if title:
        lines.append(title)
    label_width = max(len(label) for label in values)
    for label, value in values.items():
        bar_length = 0 if maximum <= 0 else int(round(width * value / maximum))
        bar = "#" * bar_length
        lines.append(f"{label.ljust(label_width)}  {value:6.1f}{unit}  {bar}")
    return "\n".join(lines)


def paper_vs_measured(
    rows: Iterable[Sequence[object]],
    headers: Sequence[str] = ("experiment", "paper", "measured"),
    title: str | None = None,
) -> str:
    """Convenience wrapper for EXPERIMENTS.md style comparisons."""
    return format_table(headers, rows, title=title)
