"""Derived metrics: speedups, compression ratios, accuracy deltas."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Optional


@dataclass(frozen=True)
class SpeedupSummary:
    """Speedup statistics of PhoneBit against one baseline."""

    baseline: str
    per_model: Dict[str, float]

    @property
    def mean(self) -> float:
        values = list(self.per_model.values())
        return sum(values) / len(values) if values else float("nan")

    @property
    def maximum(self) -> float:
        return max(self.per_model.values()) if self.per_model else float("nan")


def speedup_summary(
    baseline_name: str,
    baseline_ms: Mapping[str, Optional[float]],
    phonebit_ms: Mapping[str, Optional[float]],
) -> SpeedupSummary:
    """Per-model speedups of PhoneBit over a baseline (skips OOM/CRASH)."""
    per_model: Dict[str, float] = {}
    for model, base in baseline_ms.items():
        ours = phonebit_ms.get(model)
        if base is None or ours is None or ours <= 0:
            continue
        per_model[model] = base / ours
    return SpeedupSummary(baseline=baseline_name, per_model=per_model)


def compression_ratio(full_precision_mb: float, compressed_mb: float) -> float:
    """Model-size compression ratio (Table II)."""
    if compressed_mb <= 0:
        raise ValueError("compressed size must be positive")
    return full_precision_mb / compressed_mb


def accuracy_drop(full_precision_accuracy: float, binary_accuracy: float) -> float:
    """Accuracy lost by binarization, in percentage points."""
    return full_precision_accuracy - binary_accuracy


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean (used to summarize speedups across models)."""
    values = [v for v in values if v > 0]
    if not values:
        return float("nan")
    product = 1.0
    for value in values:
        product *= value
    return product ** (1.0 / len(values))


def fps(runtime_ms: float) -> float:
    """Frames per second for a per-frame latency."""
    if runtime_ms <= 0:
        raise ValueError("runtime must be positive")
    return 1000.0 / runtime_ms


def fps_per_watt(runtime_ms: float, power_mw: float) -> float:
    """Energy efficiency metric of Table IV."""
    if power_mw <= 0:
        raise ValueError("power must be positive")
    return fps(runtime_ms) / (power_mw / 1000.0)
