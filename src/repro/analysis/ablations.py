"""Ablation studies of PhoneBit's design choices.

DESIGN.md calls out four optimizations whose individual contribution the
paper argues for but does not isolate; these ablations quantify each with
the cost model:

* **Layer integration** (Sec. V-B) — fused conv+BN+binarize kernel vs three
  separate kernels with intermediate feature maps.
* **Branchless binarization** (Sec. VI-C, Eqn. 9) — branch-free epilogue vs
  the divergent four-way comparison of Eqn. 8.
* **Bit-packing word width** (Sec. V-A2) — 8/16/32/64-bit packing words.
* **Workload rule** (Sec. VI-B) — one thread computing 8 filters with
  in-register packing vs a separate packing pass.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

from repro.analysis.reporting import format_table
from repro.frameworks.phonebit_runner import PhoneBitRunner
from repro.gpusim.cost_model import CostModel
from repro.gpusim.device import DeviceSpec, snapdragon_855
from repro.models import get_model_config


@dataclass
class AblationResult:
    """Runtime of a model under several PhoneBit configurations."""

    model: str
    device: str
    runtimes_ms: Dict[str, float]

    def table(self, title: str) -> str:
        baseline = next(iter(self.runtimes_ms.values()))
        rows = [
            [name, ms, f"{ms / baseline:.2f}x"]
            for name, ms in self.runtimes_ms.items()
        ]
        return format_table(
            ["configuration", "runtime (ms)", "vs default"],
            rows,
            title=f"{title} ({self.model}, {self.device})",
            float_format="{:.2f}",
        )


def _runtime(runner: PhoneBitRunner, model: str) -> float:
    result = runner.run_model(get_model_config(model))
    if not result.succeeded:
        raise RuntimeError(f"PhoneBit failed on {model}: {result.reason}")
    return float(result.runtime_ms)


def fusion_ablation(model: str = "YOLOv2 Tiny",
                    device: DeviceSpec | None = None) -> AblationResult:
    """Fused conv+BN+binarize kernels vs separate kernels."""
    device = device or snapdragon_855()
    fused = PhoneBitRunner(device, fused=True)
    unfused = PhoneBitRunner(device, fused=False)
    return AblationResult(
        model=model,
        device=device.soc,
        runtimes_ms={
            "fused (PhoneBit)": _runtime(fused, model),
            "unfused conv/BN/binarize": _runtime(unfused, model),
        },
    )


def branchless_ablation(model: str = "YOLOv2 Tiny",
                        device: DeviceSpec | None = None) -> AblationResult:
    """Branch-free Eqn. (9) epilogue vs the divergent Eqn. (8) check."""
    device = device or snapdragon_855()
    branchless = PhoneBitRunner(device, branchless=True)
    divergent = PhoneBitRunner(device, branchless=False)
    return AblationResult(
        model=model,
        device=device.soc,
        runtimes_ms={
            "branchless (Eqn. 9)": _runtime(branchless, model),
            "divergent (Eqn. 8)": _runtime(divergent, model),
        },
    )


def packing_width_ablation(model: str = "YOLOv2 Tiny",
                           device: DeviceSpec | None = None,
                           word_sizes: Sequence[int] = (8, 16, 32, 64)) -> AblationResult:
    """Bit-packing word width sweep."""
    device = device or snapdragon_855()
    runtimes = {}
    for word_size in word_sizes:
        runner = PhoneBitRunner(device, word_size=word_size)
        runtimes[f"{word_size}-bit words"] = _runtime(runner, model)
    return AblationResult(model=model, device=device.soc, runtimes_ms=runtimes)


def workload_rule_ablation(model: str = "YOLOv2 Tiny",
                           device: DeviceSpec | None = None) -> AblationResult:
    """Integrated binarize+pack in the conv thread vs a separate packing pass.

    The rule is controlled by the channel-count limit; forcing the limit to
    zero makes every layer use the separate packing kernel.
    """
    from repro.core import kernels as kern

    device = device or snapdragon_855()
    config = get_model_config(model)
    runner = PhoneBitRunner(device)
    cost_model = CostModel(device, runner.profile())

    default_ms = cost_model.run_cost(runner.model_workloads(config)).total_ms
    original_limit = kern.INTEGRATED_PACKING_LIMIT
    try:
        kern.INTEGRATED_PACKING_LIMIT = 0
        separate_ms = cost_model.run_cost(runner.model_workloads(config)).total_ms
    finally:
        kern.INTEGRATED_PACKING_LIMIT = original_limit
    return AblationResult(
        model=model,
        device=device.soc,
        runtimes_ms={
            "integrated packing (<=256 ch)": default_ms,
            "separate packing pass": separate_ms,
        },
    )
