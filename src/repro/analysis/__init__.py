"""Experiment drivers and reporting for the paper's evaluation section.

:mod:`repro.analysis.experiments` regenerates every table and figure:

* Table I — device configurations (:func:`table1_devices`)
* Table II — model size and accuracy (:func:`table2_model_size`,
  :func:`table2_accuracy_proxy`)
* Table III — runtime across frameworks and devices (:func:`table3_runtime`)
* Table IV — power / energy efficiency (:func:`table4_energy`)
* Figure 5 — per-layer speedup over CNNdroid GPU (:func:`figure5_layer_speedup`)
* Ablations — fusion / branchless / packing width / workload rule
  (:mod:`repro.analysis.ablations`)
"""

from repro.analysis.metrics import SpeedupSummary, speedup_summary
from repro.analysis.reporting import format_table
from repro.analysis import experiments
from repro.analysis import ablations

__all__ = [
    "SpeedupSummary",
    "speedup_summary",
    "format_table",
    "experiments",
    "ablations",
]
