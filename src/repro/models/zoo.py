"""Model zoo: named benchmark configs and network builders.

``build_phonebit_network`` instantiates a binary network with synthetic
(random ±1) weights and randomly generated batch-norm statistics, mirroring
what the converter would produce from a trained model.  It is used for the
functional examples and tests; the benchmark harness works from the config
alone (no weights) through the framework runners.

``build_float_network`` instantiates the corresponding full-precision
network (float convolutions, batch-norm, ReLU) used for baseline
correctness checks on reduced input sizes.
"""

from __future__ import annotations

from typing import Callable, Dict

import numpy as np

from repro.core.fusion import BatchNormParams
from repro.core.layers import (
    AvgPool2d,
    BatchNorm2d,
    BinaryConv2d,
    BinaryDense,
    Dense,
    Flatten,
    FloatConv2d,
    InputConv2d,
    MaxPool2d,
    Relu,
)
from repro.core.network import Network
from repro.models.alexnet import alexnet_config
from repro.models.config import LayerDef, ModelConfig
from repro.models.vgg16 import vgg16_config
from repro.models.yolov2_tiny import yolov2_tiny_config

#: The three networks evaluated in the paper, keyed by their Table II names.
BENCHMARK_MODELS: Dict[str, Callable[[], ModelConfig]] = {
    "AlexNet": alexnet_config,
    "YOLOv2 Tiny": yolov2_tiny_config,
    "VGG16": vgg16_config,
}


def tiny_cnn_config() -> ModelConfig:
    """A CIFAR-sized binary CNN for the serving benchmarks and tests.

    The Table II/III networks run at 224²/416² inputs, which is the right
    scale for the cost-model sweeps but far too heavy for wall-clock serving
    experiments on a CPU host.  This config keeps the same structure (fused
    input conv, binary conv stack, binary classifier head) at 32² so the
    micro-batching service can be exercised end to end in milliseconds.
    """
    from repro.models.config import LayerDef

    return ModelConfig(
        name="TinyCNN",
        dataset="CIFAR-10",
        input_shape=(32, 32, 3),
        num_classes=10,
        layers=(
            LayerDef("conv", "conv1", out_channels=32, kernel_size=3, padding=1,
                     input_layer=True),
            LayerDef("maxpool", "pool1", pool_size=2, stride=2),
            LayerDef("conv", "conv2", out_channels=64, kernel_size=3, padding=1),
            LayerDef("maxpool", "pool2", pool_size=2, stride=2),
            LayerDef("conv", "conv3", out_channels=64, kernel_size=3, padding=1),
            LayerDef("maxpool", "pool3", pool_size=2, stride=2),
            LayerDef("flatten", "flatten"),
            LayerDef("dense", "fc1", out_features=128),
            LayerDef("dense", "fc2", out_features=10, output_binary=False),
        ),
        description="small binary CNN used by the serving subsystem",
    )


def micro_cnn_config() -> ModelConfig:
    """An 8×8 binary CNN living in the overhead-dominated serving regime.

    Dynamic micro-batching pays off precisely when per-request overhead
    (Python layer dispatch, small-array NumPy calls, per-run bookkeeping)
    rivals the arithmetic.  This thumbnail-sized model sits squarely in that
    regime — batched execution amortizes several-fold over per-request runs
    — so it anchors the serving throughput benchmark and its CI floor.
    """
    from repro.models.config import LayerDef

    return ModelConfig(
        name="MicroCNN",
        dataset="synthetic-8x8",
        input_shape=(8, 8, 3),
        num_classes=10,
        layers=(
            LayerDef("conv", "conv1", out_channels=8, kernel_size=3, padding=1,
                     input_layer=True),
            LayerDef("maxpool", "pool1", pool_size=2, stride=2),
            LayerDef("conv", "conv2", out_channels=16, kernel_size=3, padding=1),
            LayerDef("maxpool", "pool2", pool_size=2, stride=2),
            LayerDef("flatten", "flatten"),
            LayerDef("dense", "fc", out_features=10, output_binary=False),
        ),
        description="thumbnail binary CNN anchoring the serving benchmarks",
    )


#: Models servable by :mod:`repro.serving` — the paper's benchmark networks
#: plus the CPU-friendly serving models.
SERVING_MODELS: Dict[str, Callable[[], ModelConfig]] = {
    "TinyCNN": tiny_cnn_config,
    "MicroCNN": micro_cnn_config,
    **BENCHMARK_MODELS,
}


def _lookup(registry: Dict[str, Callable[[], ModelConfig]], name: str, **kwargs) -> ModelConfig:
    for key, factory in registry.items():
        if key.lower() == name.lower():
            return factory(**kwargs)
    raise KeyError(f"unknown model {name!r}; available: {sorted(registry)}")


def get_model_config(name: str, **kwargs) -> ModelConfig:
    """Look up a benchmark model config by (case-insensitive) name."""
    return _lookup(BENCHMARK_MODELS, name, **kwargs)


def get_serving_config(name: str, **kwargs) -> ModelConfig:
    """Look up a servable model config by (case-insensitive) name."""
    return _lookup(SERVING_MODELS, name, **kwargs)


def _random_batchnorm(rng: np.random.Generator, channels: int) -> BatchNormParams:
    """Plausible batch-norm statistics for synthetic-weight networks."""
    gamma = rng.uniform(0.5, 1.5, size=channels) * rng.choice([-1.0, 1.0], size=channels)
    return BatchNormParams(
        gamma=gamma,
        beta=rng.normal(0.0, 0.5, size=channels),
        mean=rng.normal(0.0, 2.0, size=channels),
        var=rng.uniform(0.5, 4.0, size=channels),
    )


def build_phonebit_network(
    config: ModelConfig,
    rng=0,
    word_size: int = 64,
    randomize_batchnorm: bool = True,
) -> Network:
    """Instantiate the binarized PhoneBit network described by ``config``."""
    rng = np.random.default_rng(rng)
    network = Network(
        config.name,
        input_shape=config.input_shape,
        input_dtype="uint8",
        metadata={"dataset": config.dataset, "num_classes": config.num_classes},
    )
    for shaped in config.shaped_layers():
        layer = shaped.definition
        in_shape = shaped.input_shape
        if layer.kind == "conv":
            in_channels = in_shape[2]
            bn = (
                _random_batchnorm(rng, layer.out_channels)
                if randomize_batchnorm and layer.binary
                else None
            )
            if not layer.binary:
                network.add(
                    FloatConv2d(
                        in_channels, layer.out_channels, layer.kernel_size,
                        stride=layer.stride, padding=layer.padding,
                        activation=layer.activation, rng=rng, name=layer.name,
                    )
                )
            elif layer.input_layer:
                network.add(
                    InputConv2d(
                        in_channels, layer.out_channels, layer.kernel_size,
                        stride=layer.stride, padding=layer.padding,
                        word_size=word_size, output_binary=layer.output_binary,
                        batchnorm=bn, rng=rng, name=layer.name,
                    )
                )
            else:
                network.add(
                    BinaryConv2d(
                        in_channels, layer.out_channels, layer.kernel_size,
                        stride=layer.stride, padding=layer.padding,
                        word_size=word_size, output_binary=layer.output_binary,
                        batchnorm=bn, rng=rng, name=layer.name,
                    )
                )
        elif layer.kind == "maxpool":
            network.add(MaxPool2d(layer.pool_size, layer.stride,
                                  padding=layer.padding, name=layer.name))
        elif layer.kind == "avgpool":
            network.add(AvgPool2d(layer.pool_size, layer.stride, name=layer.name))
        elif layer.kind == "flatten":
            network.add(Flatten(word_size=word_size, name=layer.name))
        elif layer.kind == "dense":
            in_features = int(np.prod(in_shape))
            bn = (
                _random_batchnorm(rng, layer.out_features)
                if randomize_batchnorm and layer.binary
                else None
            )
            if layer.binary:
                network.add(
                    BinaryDense(
                        in_features, layer.out_features, word_size=word_size,
                        output_binary=layer.output_binary, batchnorm=bn,
                        rng=rng, name=layer.name,
                    )
                )
            else:
                network.add(
                    Dense(in_features, layer.out_features,
                          activation=layer.activation, rng=rng, name=layer.name)
                )
        else:
            raise ValueError(f"unknown layer kind {layer.kind!r}")
    return network


def build_float_network(config: ModelConfig, rng=0) -> Network:
    """Instantiate the full-precision reference network for ``config``."""
    rng = np.random.default_rng(rng)
    network = Network(
        f"{config.name}-float",
        input_shape=config.input_shape,
        input_dtype="float32",
        metadata={"dataset": config.dataset, "num_classes": config.num_classes},
    )
    for shaped in config.shaped_layers():
        layer = shaped.definition
        in_shape = shaped.input_shape
        if layer.kind == "conv":
            network.add(
                FloatConv2d(
                    in_shape[2], layer.out_channels, layer.kernel_size,
                    stride=layer.stride, padding=layer.padding,
                    activation="relu" if layer.binary else layer.activation,
                    rng=rng, name=layer.name,
                )
            )
            network.add(BatchNorm2d.identity(layer.out_channels,
                                             name=f"{layer.name}_bn"))
        elif layer.kind == "maxpool":
            network.add(MaxPool2d(layer.pool_size, layer.stride,
                                  padding=layer.padding, name=layer.name))
        elif layer.kind == "avgpool":
            network.add(AvgPool2d(layer.pool_size, layer.stride, name=layer.name))
        elif layer.kind == "flatten":
            network.add(Flatten(name=layer.name))
        elif layer.kind == "dense":
            in_features = int(np.prod(in_shape))
            activation = "relu" if layer.binary else layer.activation
            network.add(
                Dense(in_features, layer.out_features, activation=activation,
                      rng=rng, name=layer.name)
            )
        else:
            raise ValueError(f"unknown layer kind {layer.kind!r}")
    return network


def model_size_report(config: ModelConfig) -> dict:
    """Model-size numbers for one Table II row (computed from the config)."""
    full_mb = config.full_precision_size_bytes() / 2**20
    binary_mb = config.binarized_size_bytes() / 2**20
    return {
        "model": config.name,
        "dataset": config.dataset,
        "full_precision_mb": full_mb,
        "bnn_mb": binary_mb,
        "compression_ratio": full_mb / binary_mb if binary_mb else float("inf"),
        "parameters": config.parameter_counts(),
        "macs": config.multiply_accumulates(),
    }
