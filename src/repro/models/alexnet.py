"""Binarized AlexNet for CIFAR-10.

The paper reports a 249.5 MB full-precision model, which corresponds to the
classic ImageNet AlexNet topology (five convolutions, three fully connected
layers, ~60 M parameters) applied to CIFAR-10 images upsampled to 227×227.
Following the usual BNN practice (and the PhoneBit code snippet, where the
first layer consumes the 8-bit image and the last layer stays in full
precision):

* ``conv1`` is the bit-plane input convolution;
* ``conv2``–``conv5`` and ``fc6``/``fc7`` are fused binary layers;
* ``fc8`` (the classifier) is full precision.
"""

from __future__ import annotations

from repro.models.config import LayerDef, ModelConfig


def alexnet_config(num_classes: int = 10, input_size: int = 227) -> ModelConfig:
    """AlexNet topology used for the CIFAR-10 benchmark.

    Parameters
    ----------
    num_classes:
        Number of output classes (10 for CIFAR-10).
    input_size:
        Input resolution; CIFAR-10 images are upsampled to 227×227 as in the
        original AlexNet.
    """
    layers = (
        LayerDef("conv", "conv1", out_channels=96, kernel_size=11, stride=4,
                 padding=0, binary=True, input_layer=True),
        LayerDef("maxpool", "pool1", pool_size=3, stride=2),
        LayerDef("conv", "conv2", out_channels=256, kernel_size=5, stride=1,
                 padding=2, binary=True),
        LayerDef("maxpool", "pool2", pool_size=3, stride=2),
        LayerDef("conv", "conv3", out_channels=384, kernel_size=3, stride=1,
                 padding=1, binary=True),
        LayerDef("conv", "conv4", out_channels=384, kernel_size=3, stride=1,
                 padding=1, binary=True),
        LayerDef("conv", "conv5", out_channels=256, kernel_size=3, stride=1,
                 padding=1, binary=True),
        LayerDef("maxpool", "pool5", pool_size=3, stride=2),
        LayerDef("flatten", "flatten"),
        LayerDef("dense", "fc6", out_features=4096, binary=True),
        LayerDef("dense", "fc7", out_features=4096, binary=True, output_binary=False),
        LayerDef("dense", "fc8", out_features=num_classes, binary=False,
                 activation=None),
    )
    return ModelConfig(
        name="AlexNet",
        dataset="CIFAR-10",
        input_shape=(input_size, input_size, 3),
        num_classes=num_classes,
        layers=layers,
        description="Binarized AlexNet (first layer bit-plane, last layer float)",
    )
