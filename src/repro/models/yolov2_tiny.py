"""Binarized YOLOv2-Tiny for VOC2007.

Nine convolution layers on a 416×416 input.  The paper's Fig. 5 discusses
exactly this structure: conv1 consumes the 8-bit image via bit-planes,
conv2–conv8 are fused binary layers, and conv9 (the 1×1 prediction head
producing 5 anchors × (20 classes + 5) = 125 channels) stays in full
precision.

Darknet's sixth max-pool uses a 2×2 window with stride 1 and asymmetric
("same") padding to keep the 13×13 resolution; the reproduction uses a 3×3
window with stride 1 and symmetric padding 1 instead, which preserves the
spatial size and the layer's negligible cost (documented in EXPERIMENTS.md).
"""

from __future__ import annotations

from repro.models.config import LayerDef, ModelConfig


def yolov2_tiny_config(num_classes: int = 20, num_anchors: int = 5,
                       input_size: int = 416) -> ModelConfig:
    """YOLOv2-Tiny topology used for the VOC2007 benchmark."""
    head_channels = num_anchors * (num_classes + 5)
    layers = (
        LayerDef("conv", "conv1", out_channels=16, kernel_size=3, padding=1,
                 binary=True, input_layer=True),
        LayerDef("maxpool", "pool1", pool_size=2, stride=2),
        LayerDef("conv", "conv2", out_channels=32, kernel_size=3, padding=1,
                 binary=True),
        LayerDef("maxpool", "pool2", pool_size=2, stride=2),
        LayerDef("conv", "conv3", out_channels=64, kernel_size=3, padding=1,
                 binary=True),
        LayerDef("maxpool", "pool3", pool_size=2, stride=2),
        LayerDef("conv", "conv4", out_channels=128, kernel_size=3, padding=1,
                 binary=True),
        LayerDef("maxpool", "pool4", pool_size=2, stride=2),
        LayerDef("conv", "conv5", out_channels=256, kernel_size=3, padding=1,
                 binary=True),
        LayerDef("maxpool", "pool5", pool_size=2, stride=2),
        LayerDef("conv", "conv6", out_channels=512, kernel_size=3, padding=1,
                 binary=True),
        LayerDef("maxpool", "pool6", pool_size=3, stride=1, padding=1),
        LayerDef("conv", "conv7", out_channels=1024, kernel_size=3, padding=1,
                 binary=True),
        LayerDef("conv", "conv8", out_channels=1024, kernel_size=3, padding=1,
                 binary=True, output_binary=False),
        LayerDef("conv", "conv9", out_channels=head_channels, kernel_size=1,
                 binary=False, activation=None),
    )
    return ModelConfig(
        name="YOLOv2 Tiny",
        dataset="VOC2007",
        input_shape=(input_size, input_size, 3),
        num_classes=num_classes,
        layers=layers,
        description="Binarized YOLOv2-Tiny (conv1 bit-plane, conv9 float head)",
    )
