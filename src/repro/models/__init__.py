"""Benchmark network definitions.

The paper evaluates three networks (Sec. VII):

* binarized **AlexNet** on CIFAR-10,
* binarized **YOLOv2-Tiny** on VOC2007,
* binarized **VGG16** on CIFAR-10.

Each is described by a framework-neutral :class:`~repro.models.config.ModelConfig`
from which the model zoo can build (a) a PhoneBit binary network, (b) a
full-precision float network for the baseline frameworks, or (c) the kernel
workloads used by the cost model without instantiating any weights.
"""

from repro.models.config import LayerDef, ModelConfig
from repro.models.alexnet import alexnet_config
from repro.models.yolov2_tiny import yolov2_tiny_config
from repro.models.vgg16 import vgg16_config
from repro.models.zoo import (
    BENCHMARK_MODELS,
    SERVING_MODELS,
    build_float_network,
    build_phonebit_network,
    get_model_config,
    get_serving_config,
    micro_cnn_config,
    model_size_report,
    tiny_cnn_config,
)
from repro.models.yolo_head import Detection, decode_head, detect, non_maximum_suppression

__all__ = [
    "Detection",
    "decode_head",
    "detect",
    "non_maximum_suppression",
    "LayerDef",
    "ModelConfig",
    "alexnet_config",
    "yolov2_tiny_config",
    "vgg16_config",
    "BENCHMARK_MODELS",
    "SERVING_MODELS",
    "tiny_cnn_config",
    "micro_cnn_config",
    "get_model_config",
    "get_serving_config",
    "build_phonebit_network",
    "build_float_network",
    "model_size_report",
]
