"""YOLOv2 detection head decoding.

The last (full-precision) layer of the binarized YOLOv2-Tiny network
produces a ``(13, 13, 125)`` tensor — 5 anchor boxes × (4 box coordinates +
objectness + 20 VOC class scores) per grid cell.  This module turns that raw
head into detections: sigmoid/exponential box decoding against the anchor
priors, class softmax, score thresholding and greedy non-maximum
suppression.  It is used by the detection example and exercised directly by
the test-suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.datasets.detection import BoundingBox, iou

#: Anchor boxes (width, height in grid-cell units) of YOLOv2-Tiny on VOC.
VOC_ANCHORS: Tuple[Tuple[float, float], ...] = (
    (1.08, 1.19), (3.42, 4.41), (6.63, 11.38), (9.42, 5.11), (16.62, 10.52),
)


@dataclass(frozen=True)
class Detection:
    """One decoded detection."""

    box: BoundingBox
    score: float

    @property
    def class_index(self) -> int:
        return self.box.class_index


def sigmoid(x: np.ndarray) -> np.ndarray:
    """Numerically safe logistic function."""
    return 1.0 / (1.0 + np.exp(-np.clip(x, -30, 30)))


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Softmax along ``axis``."""
    shifted = x - x.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=axis, keepdims=True)


def decode_head(
    head: np.ndarray,
    num_classes: int = 20,
    anchors: Sequence[Tuple[float, float]] = VOC_ANCHORS,
    score_threshold: float = 0.35,
) -> List[Detection]:
    """Decode a raw YOLOv2 head into scored, normalized bounding boxes.

    Parameters
    ----------
    head:
        Array of shape ``(H, W, len(anchors) * (5 + num_classes))``.
    num_classes:
        Number of object classes (20 for VOC).
    anchors:
        Anchor priors in grid-cell units.
    score_threshold:
        Minimum ``objectness × class`` score for a detection to be kept.
    """
    head = np.asarray(head, dtype=np.float64)
    if head.ndim != 3:
        raise ValueError(f"expected an (H, W, C) head, got shape {head.shape}")
    grid_h, grid_w, channels = head.shape
    expected = len(anchors) * (5 + num_classes)
    if channels != expected:
        raise ValueError(
            f"head has {channels} channels, expected {expected} "
            f"({len(anchors)} anchors x (5 + {num_classes}))"
        )
    predictions = head.reshape(grid_h, grid_w, len(anchors), 5 + num_classes)

    xy = sigmoid(predictions[..., 0:2])
    wh = np.exp(np.clip(predictions[..., 2:4], -8, 8))
    objectness = sigmoid(predictions[..., 4])
    class_probs = softmax(predictions[..., 5:], axis=-1)

    detections: List[Detection] = []
    for row in range(grid_h):
        for col in range(grid_w):
            for anchor_index, (anchor_w, anchor_h) in enumerate(anchors):
                best_class = int(np.argmax(class_probs[row, col, anchor_index]))
                score = float(
                    objectness[row, col, anchor_index]
                    * class_probs[row, col, anchor_index, best_class]
                )
                if score < score_threshold:
                    continue
                x_center = (col + float(xy[row, col, anchor_index, 0])) / grid_w
                y_center = (row + float(xy[row, col, anchor_index, 1])) / grid_h
                width = min(anchor_w * float(wh[row, col, anchor_index, 0]) / grid_w, 1.0)
                height = min(anchor_h * float(wh[row, col, anchor_index, 1]) / grid_h, 1.0)
                detections.append(
                    Detection(
                        box=BoundingBox(best_class, x_center, y_center, width, height),
                        score=score,
                    )
                )
    return detections


def non_maximum_suppression(
    detections: Sequence[Detection],
    iou_threshold: float = 0.45,
    per_class: bool = True,
) -> List[Detection]:
    """Greedy non-maximum suppression over decoded detections."""
    ordered = sorted(detections, key=lambda d: d.score, reverse=True)
    kept: List[Detection] = []
    for candidate in ordered:
        suppressed = False
        for existing in kept:
            if per_class and existing.class_index != candidate.class_index:
                continue
            if iou(candidate.box, existing.box) >= iou_threshold:
                suppressed = True
                break
        if not suppressed:
            kept.append(candidate)
    return kept


def detect(
    head: np.ndarray,
    num_classes: int = 20,
    anchors: Sequence[Tuple[float, float]] = VOC_ANCHORS,
    score_threshold: float = 0.35,
    iou_threshold: float = 0.45,
) -> List[Detection]:
    """Decode + NMS in one call."""
    return non_maximum_suppression(
        decode_head(head, num_classes=num_classes, anchors=anchors,
                    score_threshold=score_threshold),
        iou_threshold=iou_threshold,
    )
