"""Framework-neutral model descriptions.

A :class:`ModelConfig` is the single source of truth for a benchmark
network: the PhoneBit builder, the float builder and every framework runner
derive their layer structure (and therefore their op counts, parameter
counts and memory footprints) from it.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterator, List, Optional, Tuple

from repro.core.kernels import ConvGeometry
from repro.core.tensor import conv_output_size


@dataclass(frozen=True)
class LayerDef:
    """Definition of one layer in a benchmark model.

    ``kind`` is one of ``"conv"``, ``"maxpool"``, ``"avgpool"``,
    ``"flatten"``, ``"dense"``.
    """

    kind: str
    name: str
    out_channels: int = 0
    kernel_size: int = 0
    stride: int = 1
    padding: int = 0
    pool_size: int = 0
    out_features: int = 0
    binary: bool = True
    input_layer: bool = False
    output_binary: bool = True
    activation: Optional[str] = None

    def with_name(self, name: str) -> "LayerDef":
        return replace(self, name=name)


@dataclass(frozen=True)
class ShapedLayer:
    """A layer definition annotated with its input and output shapes."""

    definition: LayerDef
    input_shape: Tuple[int, ...]
    output_shape: Tuple[int, ...]

    @property
    def conv_geometry(self) -> ConvGeometry:
        if self.definition.kind != "conv":
            raise ValueError(f"layer {self.definition.name} is not a convolution")
        h, w, c = self.input_shape
        return ConvGeometry(
            in_height=h,
            in_width=w,
            in_channels=c,
            out_channels=self.definition.out_channels,
            kernel_size=self.definition.kernel_size,
            stride=self.definition.stride,
            padding=self.definition.padding,
        )


@dataclass(frozen=True)
class ModelConfig:
    """Complete description of a benchmark model."""

    name: str
    dataset: str
    input_shape: Tuple[int, int, int]
    num_classes: int
    layers: Tuple[LayerDef, ...] = field(default_factory=tuple)
    description: str = ""

    # --------------------------------------------------------------- shapes
    def shaped_layers(self) -> List[ShapedLayer]:
        """Every layer annotated with its input/output shape."""
        shaped: List[ShapedLayer] = []
        shape: Tuple[int, ...] = self.input_shape
        for layer in self.layers:
            out_shape = _propagate(layer, shape)
            shaped.append(ShapedLayer(layer, shape, out_shape))
            shape = out_shape
        return shaped

    def output_shape(self) -> Tuple[int, ...]:
        shape: Tuple[int, ...] = self.input_shape
        for layer in self.layers:
            shape = _propagate(layer, shape)
        return shape

    def conv_layers(self) -> Iterator[ShapedLayer]:
        """Only the convolution layers (used for Fig. 5)."""
        for shaped in self.shaped_layers():
            if shaped.definition.kind == "conv":
                yield shaped

    # ------------------------------------------------------------- counting
    def parameter_counts(self) -> dict:
        """Binary / float parameter counts in the binarized model.

        Binary layers contribute 1-bit weights plus per-channel float
        thresholds; non-binary layers contribute float32 weights and biases.
        """
        binary = 0
        float32 = 0
        for shaped in self.shaped_layers():
            layer = shaped.definition
            if layer.kind == "conv":
                h, w, c = shaped.input_shape
                weights = layer.kernel_size ** 2 * c * layer.out_channels
                if layer.binary:
                    binary += weights + layer.out_channels
                    float32 += layer.out_channels
                else:
                    float32 += weights + layer.out_channels
            elif layer.kind == "dense":
                in_features = 1
                for dim in shaped.input_shape:
                    in_features *= dim
                weights = in_features * layer.out_features
                if layer.binary:
                    binary += weights + layer.out_features
                    float32 += layer.out_features
                else:
                    float32 += weights + layer.out_features
        return {"binary": binary, "float32": float32}

    def full_precision_size_bytes(self) -> int:
        """Model size with every weight stored as float32 (Table II left)."""
        counts = self.parameter_counts()
        return 4 * (counts["binary"] + counts["float32"])

    def binarized_size_bytes(self) -> int:
        """Model size in the compressed PhoneBit format (Table II right)."""
        counts = self.parameter_counts()
        return counts["binary"] // 8 + 4 * counts["float32"]

    def multiply_accumulates(self) -> int:
        """Total MACs of one full-precision inference."""
        total = 0
        for shaped in self.shaped_layers():
            layer = shaped.definition
            if layer.kind == "conv":
                total += shaped.conv_geometry.macs
            elif layer.kind == "dense":
                in_features = 1
                for dim in shaped.input_shape:
                    in_features *= dim
                total += in_features * layer.out_features
        return total


def _propagate(layer: LayerDef, shape: Tuple[int, ...]) -> Tuple[int, ...]:
    """Shape inference for one layer definition."""
    if layer.kind == "conv":
        h, w, _ = shape
        oh = conv_output_size(h, layer.kernel_size, layer.stride, layer.padding)
        ow = conv_output_size(w, layer.kernel_size, layer.stride, layer.padding)
        return (oh, ow, layer.out_channels)
    if layer.kind in ("maxpool", "avgpool"):
        h, w, c = shape
        oh = conv_output_size(h, layer.pool_size, layer.stride, layer.padding)
        ow = conv_output_size(w, layer.pool_size, layer.stride, layer.padding)
        return (oh, ow, c)
    if layer.kind == "flatten":
        total = 1
        for dim in shape:
            total *= dim
        return (total,)
    if layer.kind == "dense":
        return (layer.out_features,)
    raise ValueError(f"unknown layer kind {layer.kind!r}")
