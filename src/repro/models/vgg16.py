"""Binarized VGG16 for CIFAR-10.

Thirteen 3×3 convolutions in five blocks followed by three fully connected
layers.  The paper's 553.4 MB full-precision size matches the classic
ImageNet VGG16 (~138 M parameters); CIFAR-10 images are upsampled to
224×224.  As with the other benchmarks, the first convolution consumes the
8-bit image via bit-planes and the final classifier stays in full precision.
"""

from __future__ import annotations

from repro.models.config import LayerDef, ModelConfig

_BLOCKS = (
    (64, 2),
    (128, 2),
    (256, 3),
    (512, 3),
    (512, 3),
)


def vgg16_config(num_classes: int = 10, input_size: int = 224,
                 classifier_width: int = 4096) -> ModelConfig:
    """VGG16 topology used for the CIFAR-10 benchmark."""
    layers = []
    conv_index = 0
    for block_index, (channels, repeats) in enumerate(_BLOCKS, start=1):
        for _ in range(repeats):
            conv_index += 1
            layers.append(
                LayerDef(
                    "conv",
                    f"conv{conv_index}",
                    out_channels=channels,
                    kernel_size=3,
                    padding=1,
                    binary=True,
                    input_layer=(conv_index == 1),
                )
            )
        layers.append(LayerDef("maxpool", f"pool{block_index}", pool_size=2, stride=2))
    layers.append(LayerDef("flatten", "flatten"))
    layers.append(LayerDef("dense", "fc1", out_features=classifier_width, binary=True))
    layers.append(
        LayerDef("dense", "fc2", out_features=classifier_width, binary=True,
                 output_binary=False)
    )
    layers.append(LayerDef("dense", "fc3", out_features=num_classes, binary=False))
    return ModelConfig(
        name="VGG16",
        dataset="CIFAR-10",
        input_shape=(input_size, input_size, 3),
        num_classes=num_classes,
        layers=tuple(layers),
        description="Binarized VGG16 (first layer bit-plane, classifier head float)",
    )
