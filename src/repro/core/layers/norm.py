"""Stand-alone batch normalization layer.

In PhoneBit networks batch-norm is normally folded into the preceding binary
convolution (Sec. V-B); this layer exists for the *unfused* execution path
used by the baseline frameworks, the fusion ablation benchmark and the float
reference networks.
"""

from __future__ import annotations

import numpy as np

from repro.core.fusion import BatchNormParams, batchnorm_forward
from repro.core.layers.base import Layer, ParamCount
from repro.core.tensor import Layout, Tensor


class BatchNorm2d(Layer):
    """Per-channel batch normalization over the last (channel) axis."""

    def __init__(self, params: BatchNormParams, name: str | None = None) -> None:
        super().__init__(name)
        self.params = params

    @classmethod
    def identity(cls, channels: int, name: str | None = None) -> "BatchNorm2d":
        """Identity normalization (γ=1, β=0, µ=0, σ²=1)."""
        return cls(
            BatchNormParams(
                gamma=np.ones(channels),
                beta=np.zeros(channels),
                mean=np.zeros(channels),
                var=np.ones(channels),
            ),
            name=name,
        )

    def output_shape(self, input_shape: tuple) -> tuple:
        if input_shape[-1] != self.params.channels:
            raise ValueError(
                f"{self.name}: expected {self.params.channels} channels, "
                f"got {input_shape[-1]}"
            )
        return tuple(input_shape)

    def normalize_values(self, values: np.ndarray) -> np.ndarray:
        """Normalize a raw array exactly as :meth:`forward` would (float32 out).

        The execution-plan compiler folds an unfused ``conv → BatchNorm2d →
        Binarize`` block into a single integer threshold by bisecting this
        very computation, so the cast chain (float64 math, float32 result)
        lives here in one place and the fold stays bit-exact by construction.
        """
        out = batchnorm_forward(np.asarray(values, dtype=np.float64), self.params)
        return out.astype(np.float32)

    def forward(self, x: Tensor) -> Tensor:
        if x.packed:
            raise ValueError(f"{self.name}: batch-norm needs float activations")
        return Tensor(self.normalize_values(x.data), Layout.NHWC)

    def param_count(self) -> ParamCount:
        return ParamCount(float32=4 * self.params.channels)
