"""Convolution layers: bit-plane input conv, fused binary conv, float conv.

``InputConv2d`` and ``BinaryConv2d`` implement the paper's fused
conv + batch-norm + binarize block: the convolution produces the integer
pre-activation ``x1`` via xor/popcount (or and/popcount for the bit-plane
input layer) and the output bit is obtained with the branchless threshold
operator of Eqn. (9), then packed along the channel dimension — all without
materializing intermediate float feature maps.

``FloatConv2d`` is the full-precision convolution used for the last layer of
the benchmark networks (e.g. conv9 of YOLOv2-Tiny), which the paper keeps in
float and accelerates only with vectorized dot products.
"""

from __future__ import annotations

import numpy as np

from repro.core import binary_conv, bitpack
from repro.core.binarize import binarize_sign
from repro.core.branchless import branchless_binarize
from repro.core.fusion import (
    BatchNormParams,
    affine_head_values,
    compute_threshold,
)
from repro.core.layers.base import Layer, ParamCount, require_rng
from repro.core.tensor import Layout, Tensor, conv_output_size


def _default_batchnorm(channels: int) -> BatchNormParams:
    """Identity batch-norm (γ=1, β=0, µ=0, σ²=1)."""
    return BatchNormParams(
        gamma=np.ones(channels),
        beta=np.zeros(channels),
        mean=np.zeros(channels),
        var=np.ones(channels),
    )


def _random_weight_bits(
    rng: np.random.Generator, kernel_size: int, in_channels: int, out_channels: int
) -> np.ndarray:
    """Random ±1 filter bank expressed as bits."""
    return rng.integers(
        0, 2, size=(kernel_size, kernel_size, in_channels, out_channels), dtype=np.uint8
    )


class _FusedBinaryConvBase(Layer):
    """Shared machinery for the two fused binary convolution layers."""

    #: Channel-count limit under which one thread computes 8 filters and
    #: packs their bits in private memory (Sec. VI-B); above it, packing
    #: runs as a separate pass.
    INTEGRATED_PACKING_LIMIT = 256

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        word_size: int = 64,
        output_binary: bool = True,
        weight_bits: np.ndarray | None = None,
        weights_packed: np.ndarray | None = None,
        batchnorm: BatchNormParams | None = None,
        bias: np.ndarray | None = None,
        rng=None,
        name: str | None = None,
    ) -> None:
        super().__init__(name)
        if in_channels <= 0 or out_channels <= 0:
            raise ValueError("channel counts must be positive")
        if kernel_size <= 0 or stride <= 0 or padding < 0:
            raise ValueError("invalid convolution geometry")
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        self.word_size = word_size
        self.output_binary = output_binary

        if weights_packed is not None:
            if weight_bits is not None:
                raise ValueError("pass weight_bits or weights_packed, not both")
            self.adopt_packed_weights(weights_packed)
        else:
            rng = require_rng(rng)
            if weight_bits is None:
                weight_bits = _random_weight_bits(
                    rng, kernel_size, in_channels, out_channels
                )
            self.weight_bits = weight_bits

        self.batchnorm = batchnorm or _default_batchnorm(out_channels)
        if self.batchnorm.channels != out_channels:
            raise ValueError("batch-norm channel count must match out_channels")
        self.bias = (
            np.zeros(out_channels) if bias is None else np.asarray(bias, dtype=np.float64)
        )
        if self.bias.shape != (out_channels,):
            raise ValueError("bias must have one value per output channel")
        self.threshold = compute_threshold(self.batchnorm, self.bias)
        self.gamma = self.batchnorm.gamma

    @property
    def weight_bits(self) -> np.ndarray:
        """Binary filter bank as bits of shape ``(KH, KW, Cin, Cout)``.

        A layer constructed from already-packed weights (shared-memory
        attach, see :meth:`adopt_packed_weights`) materializes the unpacked
        bits lazily on first access; the fused execution path never needs
        them, so a serving worker typically never pays the 8× expansion.
        """
        token = self._weight_bits
        if not isinstance(token, np.ndarray):  # packed-only sentinel
            cached = self._unpacked_cache
            if cached is not None and cached[0] is token:
                return cached[1]
            packed = self._packed_cache[1]
            transposed = np.transpose(packed, (1, 2, 3, 0))  # (KH, KW, Wc, Cout)
            bits = bitpack.unpack_bits(transposed, self.in_channels, axis=2)
            bits.setflags(write=False)
            # Cached beside — not in place of — the sentinel: swapping
            # _weight_bits itself would invalidate the warm execution plan
            # (its snapshots key on this attribute's identity) on a mere
            # inspection read.
            self._unpacked_cache = (token, bits)
            return bits
        return token

    @weight_bits.setter
    def weight_bits(self, bits: np.ndarray) -> None:
        bits = np.array(bits, dtype=np.uint8, copy=True)
        expected = (
            self.kernel_size,
            self.kernel_size,
            self.in_channels,
            self.out_channels,
        )
        if bits.shape != expected:
            raise ValueError(f"weight bits must have shape {expected}, got {bits.shape}")
        # Copied above and frozen here so in-place edits cannot silently
        # bypass the packed-weight cache invalidation; reassign to mutate.
        bits.setflags(write=False)
        self._weight_bits = bits
        self._packed_cache = None

    def adopt_packed_weights(self, packed: np.ndarray) -> None:
        """Adopt an already-packed filter bank without copying it.

        ``packed`` must be exactly what :attr:`weights_packed` would compute
        — shape ``(Cout, KH, KW, words)`` in the layer's word dtype, packed
        along the input-channel dimension.  The array is served as-is (a
        shared-memory attach stays zero-copy) and frozen; the unpacked
        :attr:`weight_bits` are materialized lazily if ever requested.
        """
        packed = np.asarray(packed)
        words = bitpack.words_per_channel(self.in_channels, self.word_size)
        expected = (self.out_channels, self.kernel_size, self.kernel_size, words)
        dtype = bitpack.word_dtype(self.word_size)
        if packed.shape != expected or packed.dtype != dtype:
            raise ValueError(
                f"packed weights must have shape {expected} and dtype {dtype}, "
                f"got {packed.shape} / {packed.dtype}"
            )
        if packed.flags.writeable:
            packed.setflags(write=False)
        # A *fresh* sentinel per adoption: the execution-plan cache keys its
        # validity on the identity of _weight_bits, so re-adopting new
        # packed weights must change that identity or a stale plan would
        # keep serving the old filters.
        token = object()
        self._weight_bits = token
        self._packed_cache = (token, packed)
        self._unpacked_cache = None

    @property
    def weights_packed(self) -> np.ndarray:
        """Packed filters, computed once per weight assignment and cached.

        Repacking happens only when :attr:`weight_bits` is reassigned, so
        repeated forward passes / ``engine.run()`` calls share one packed
        copy instead of re-packing per call.

        The cache entry carries the exact bits array it was packed from and
        is only served when that array is still the layer's current weights.
        This keeps the cache coherent without a lock even when a weight
        reassignment lands while another thread (e.g. a serving scheduler
        batch) is mid-pack: a packing result belonging to superseded weights
        can be stored, but it can never be *served* for the new weights —
        the identity check fails and the new weights are repacked.
        Concurrent first reads may pack twice; both results are identical.
        """
        bits = self._weight_bits
        cache = self._packed_cache
        if cache is not None and cache[0] is bits:
            return cache[1]
        packed = binary_conv.pack_weights(bits, word_size=self.word_size)
        self._packed_cache = (bits, packed)
        return packed

    @property
    def uses_integrated_packing(self) -> bool:
        """Whether the workload rule keeps binarize+pack inside the conv thread."""
        return self.in_channels <= self.INTEGRATED_PACKING_LIMIT

    def output_shape(self, input_shape: tuple) -> tuple:
        h, w, c = input_shape
        if c != self.in_channels:
            raise ValueError(
                f"{self.name}: expected {self.in_channels} input channels, got {c}"
            )
        oh = conv_output_size(h, self.kernel_size, self.stride, self.padding)
        ow = conv_output_size(w, self.kernel_size, self.stride, self.padding)
        return (oh, ow, self.out_channels)

    def fused_output_bits(self, x1: np.ndarray) -> np.ndarray:
        """Output bits for integer pre-activations ``x1`` (Eqn. 9).

        This is the layer's *reference* decision function; the execution
        plan compiler extracts an equivalent integer threshold from it
        (:func:`repro.core.fusion.exact_integer_threshold`) so the fused
        kernels can test the xor-popcount accumulator directly.
        """
        return branchless_binarize(x1, self.threshold, self.gamma)

    def affine_values(self, x1: np.ndarray) -> np.ndarray:
        """Float head values for ``x1``: the folded BN affine, in float32."""
        return affine_head_values(self.batchnorm, self.bias, x1)

    @property
    def x1_magnitude_bound(self) -> int:
        """Largest possible ``|x1|`` — bounds the plan compiler's search."""
        return self.kernel_size ** 2 * self.in_channels

    def _finalize(self, x1: np.ndarray) -> Tensor:
        """Apply the fused threshold (or the float BN affine) to ``x1``."""
        if self.output_binary:
            bits = self.fused_output_bits(x1)
            packed = binary_conv.pack_activations(bits, word_size=self.word_size)
            return Tensor(
                packed, Layout.NHWC, packed=True, true_channels=self.out_channels
            )
        return Tensor(self.affine_values(x1), Layout.NHWC)

    def param_count(self) -> ParamCount:
        # Computed from the geometry (not weight_bits.size) so accounting
        # never forces a packed-only layer to materialize unpacked bits.
        weights = self.kernel_size ** 2 * self.in_channels * self.out_channels
        binary = weights + self.out_channels  # weights + γ signs
        return ParamCount(binary=binary, float32=self.out_channels)  # thresholds ξ


class InputConv2d(_FusedBinaryConvBase):
    """First-layer convolution on 8-bit integer images via bit-planes (Eqn. 2)."""

    def __init__(self, *args, input_bits: int = 8, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.input_bits = input_bits

    @property
    def x1_magnitude_bound(self) -> int:
        # The integer convolution of Eqn. (2): |I·W| <= (2^bits - 1)·K²·Cin.
        return ((1 << self.input_bits) - 1) * self.kernel_size ** 2 * self.in_channels

    def forward(self, x: Tensor) -> Tensor:
        if x.packed:
            raise ValueError(f"{self.name}: expected an unpacked integer image")
        image = np.asarray(x.data)
        if image.dtype.kind not in "ui":
            raise ValueError(f"{self.name}: expected an integer image, got {image.dtype}")
        x1 = binary_conv.input_conv2d_bitplanes(
            image,
            self.weights_packed,
            true_channels=self.in_channels,
            kernel_size=self.kernel_size,
            stride=self.stride,
            padding=self.padding,
            input_bits=self.input_bits,
            word_size=self.word_size,
        )
        return self._finalize(x1)


class BinaryConv2d(_FusedBinaryConvBase):
    """Fused binary convolution + batch-norm + binarization layer (Eqn. 1/8/9)."""

    def forward(self, x: Tensor) -> Tensor:
        if x.packed:
            packed = x.data
            true_channels = x.true_channels
        else:
            bits = binarize_sign(x.data)
            packed = binary_conv.pack_activations(bits, word_size=self.word_size)
            true_channels = int(x.data.shape[-1])
        if true_channels != self.in_channels:
            raise ValueError(
                f"{self.name}: expected {self.in_channels} input channels, got {true_channels}"
            )
        x1 = binary_conv.binary_conv2d_packed(
            packed,
            self.weights_packed,
            true_channels=self.in_channels,
            kernel_size=self.kernel_size,
            stride=self.stride,
            padding=self.padding,
        )
        return self._finalize(x1)


class FloatConv2d(Layer):
    """Full-precision convolution layer (used for final prediction layers)."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        use_bias: bool = True,
        activation: str | None = None,
        weights: np.ndarray | None = None,
        bias: np.ndarray | None = None,
        rng=None,
        name: str | None = None,
    ) -> None:
        super().__init__(name)
        if activation not in (None, "relu", "leaky_relu"):
            raise ValueError(f"unsupported activation {activation!r}")
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        self.use_bias = use_bias
        self.activation = activation

        rng = require_rng(rng)
        shape = (kernel_size, kernel_size, in_channels, out_channels)
        if weights is None:
            weights = rng.standard_normal(shape) * np.sqrt(2.0 / (kernel_size**2 * in_channels))
        self.weights = np.asarray(weights, dtype=np.float32)
        if self.weights.shape != shape:
            raise ValueError(f"weights must have shape {shape}, got {self.weights.shape}")
        if bias is None:
            bias = np.zeros(out_channels)
        self.bias = np.asarray(bias, dtype=np.float32)

    def output_shape(self, input_shape: tuple) -> tuple:
        h, w, c = input_shape
        if c != self.in_channels:
            raise ValueError(
                f"{self.name}: expected {self.in_channels} input channels, got {c}"
            )
        oh = conv_output_size(h, self.kernel_size, self.stride, self.padding)
        ow = conv_output_size(w, self.kernel_size, self.stride, self.padding)
        return (oh, ow, self.out_channels)

    def forward(self, x: Tensor) -> Tensor:
        if x.packed:
            raise ValueError(f"{self.name}: float convolution cannot consume packed bits")
        out = binary_conv.conv2d_float_nhwc(
            np.asarray(x.data, dtype=np.float64),
            self.weights,
            stride=self.stride,
            padding=self.padding,
            bias=self.bias if self.use_bias else None,
        )
        if self.activation == "relu":
            out = np.maximum(out, 0.0)
        elif self.activation == "leaky_relu":
            out = np.where(out > 0, out, 0.1 * out)
        return Tensor(out.astype(np.float32), Layout.NHWC)

    def param_count(self) -> ParamCount:
        count = self.weights.size + (self.out_channels if self.use_bias else 0)
        return ParamCount(float32=int(count))
