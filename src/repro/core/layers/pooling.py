"""Pooling layers.

Max pooling over binary (±1) activations has a convenient packed form: the
maximum of a window is +1 as soon as any element is +1, so the packed-word
implementation is a bitwise OR of the window's words.  PhoneBit exploits
this to keep the activation stream packed between convolution layers.

Average pooling operates on float activations only (it appears in the float
heads of the benchmark networks).
"""

from __future__ import annotations

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from repro.core.layers.base import Layer
from repro.core.tensor import Layout, Tensor, conv_output_size, pad_spatial_nhwc


def _pool_windows(data: np.ndarray, pool_size: int, stride: int) -> np.ndarray:
    """Strided ``(N, OH, OW, C, ph, pw)`` view of all pooling windows.

    Zero-copy: the result is a ``sliding_window_view`` subsampled by the
    stride, covering exactly the windows a stride-``stride`` pooling visits
    (identical edge semantics to the explicit double loop — trailing rows
    and columns that do not fit a full window are dropped).
    """
    # Validates that the window fits, mirroring conv/pool shape inference.
    conv_output_size(data.shape[1], pool_size, stride, 0)
    conv_output_size(data.shape[2], pool_size, stride, 0)
    windows = sliding_window_view(data, (pool_size, pool_size), axis=(1, 2))
    return windows[:, ::stride, ::stride]


class MaxPool2d(Layer):
    """Max pooling; packed binary inputs are pooled with bitwise OR.

    ``padding`` pads spatially before pooling.  For packed binary inputs the
    pad value is the all-zero word (every padded activation is −1), which is
    the identity element of the binary max; for float inputs the pad value
    is −inf so padded positions never win.
    """

    def __init__(self, pool_size: int = 2, stride: int | None = None,
                 padding: int = 0, name: str | None = None) -> None:
        super().__init__(name)
        if pool_size <= 0:
            raise ValueError("pool size must be positive")
        self.pool_size = pool_size
        self.stride = stride if stride is not None else pool_size
        if self.stride <= 0:
            raise ValueError("stride must be positive")
        if padding < 0:
            raise ValueError("padding must be non-negative")
        self.padding = padding

    def output_shape(self, input_shape: tuple) -> tuple:
        h, w, c = input_shape
        oh = conv_output_size(h, self.pool_size, self.stride, self.padding)
        ow = conv_output_size(w, self.pool_size, self.stride, self.padding)
        return (oh, ow, c)

    def forward(self, x: Tensor) -> Tensor:
        data = np.asarray(x.data)
        if self.padding:
            if x.packed:
                data = pad_spatial_nhwc(data, self.padding, value=0)
            elif data.dtype.kind == "f":
                data = pad_spatial_nhwc(data, self.padding, value=-np.inf)
            else:
                data = pad_spatial_nhwc(
                    data, self.padding, value=np.iinfo(data.dtype).min
                )
        windows = _pool_windows(data, self.pool_size, self.stride)
        if x.packed:
            # max over ±1 values == bitwise OR over the packed words.
            out = np.bitwise_or.reduce(windows, axis=(-2, -1))
        else:
            out = windows.max(axis=(-2, -1))
        out = np.ascontiguousarray(out)
        return Tensor(out, Layout.NHWC, packed=x.packed, true_channels=x.true_channels)


class AvgPool2d(Layer):
    """Average pooling on float activations."""

    def __init__(self, pool_size: int = 2, stride: int | None = None,
                 name: str | None = None) -> None:
        super().__init__(name)
        if pool_size <= 0:
            raise ValueError("pool size must be positive")
        self.pool_size = pool_size
        self.stride = stride if stride is not None else pool_size
        if self.stride <= 0:
            raise ValueError("stride must be positive")

    def output_shape(self, input_shape: tuple) -> tuple:
        h, w, c = input_shape
        oh = conv_output_size(h, self.pool_size, self.stride, 0)
        ow = conv_output_size(w, self.pool_size, self.stride, 0)
        return (oh, ow, c)

    def forward(self, x: Tensor) -> Tensor:
        if x.packed:
            raise ValueError(f"{self.name}: average pooling needs float activations")
        data = np.asarray(x.data, dtype=np.float64)
        windows = _pool_windows(data, self.pool_size, self.stride)
        out = windows.mean(axis=(-2, -1)).astype(np.float32)
        return Tensor(out, Layout.NHWC)
