"""Pooling layers.

Max pooling over binary (±1) activations has a convenient packed form: the
maximum of a window is +1 as soon as any element is +1, so the packed-word
implementation is a bitwise OR of the window's words.  PhoneBit exploits
this to keep the activation stream packed between convolution layers.

Average pooling operates on float activations only (it appears in the float
heads of the benchmark networks).
"""

from __future__ import annotations

import numpy as np

from repro.core.layers.base import Layer
from repro.core.tensor import Layout, Tensor, conv_output_size, pad_spatial_nhwc


def _pool_windows(data: np.ndarray, pool_size: int, stride: int):
    """Yield (i, j, window) triples of pooling windows of an NHWC array."""
    _, h, w, _ = data.shape
    oh = conv_output_size(h, pool_size, stride, 0)
    ow = conv_output_size(w, pool_size, stride, 0)
    for i in range(oh):
        for j in range(ow):
            window = data[:, i * stride:i * stride + pool_size,
                          j * stride:j * stride + pool_size, :]
            yield i, j, window


class MaxPool2d(Layer):
    """Max pooling; packed binary inputs are pooled with bitwise OR.

    ``padding`` pads spatially before pooling.  For packed binary inputs the
    pad value is the all-zero word (every padded activation is −1), which is
    the identity element of the binary max; for float inputs the pad value
    is −inf so padded positions never win.
    """

    def __init__(self, pool_size: int = 2, stride: int | None = None,
                 padding: int = 0, name: str | None = None) -> None:
        super().__init__(name)
        if pool_size <= 0:
            raise ValueError("pool size must be positive")
        self.pool_size = pool_size
        self.stride = stride if stride is not None else pool_size
        if self.stride <= 0:
            raise ValueError("stride must be positive")
        if padding < 0:
            raise ValueError("padding must be non-negative")
        self.padding = padding

    def output_shape(self, input_shape: tuple) -> tuple:
        h, w, c = input_shape
        oh = conv_output_size(h, self.pool_size, self.stride, self.padding)
        ow = conv_output_size(w, self.pool_size, self.stride, self.padding)
        return (oh, ow, c)

    def forward(self, x: Tensor) -> Tensor:
        data = np.asarray(x.data)
        if self.padding:
            if x.packed:
                data = pad_spatial_nhwc(data, self.padding, value=0)
            elif data.dtype.kind == "f":
                data = pad_spatial_nhwc(data, self.padding, value=-np.inf)
            else:
                data = pad_spatial_nhwc(
                    data, self.padding, value=np.iinfo(data.dtype).min
                )
        n, h, w, c = data.shape
        oh = conv_output_size(h, self.pool_size, self.stride, 0)
        ow = conv_output_size(w, self.pool_size, self.stride, 0)
        out = np.empty((n, oh, ow, c), dtype=data.dtype)
        for i, j, window in _pool_windows(data, self.pool_size, self.stride):
            flat = window.reshape(n, -1, c)
            if x.packed:
                out[:, i, j, :] = np.bitwise_or.reduce(flat, axis=1)
            else:
                out[:, i, j, :] = flat.max(axis=1)
        return Tensor(out, Layout.NHWC, packed=x.packed, true_channels=x.true_channels)


class AvgPool2d(Layer):
    """Average pooling on float activations."""

    def __init__(self, pool_size: int = 2, stride: int | None = None,
                 name: str | None = None) -> None:
        super().__init__(name)
        if pool_size <= 0:
            raise ValueError("pool size must be positive")
        self.pool_size = pool_size
        self.stride = stride if stride is not None else pool_size
        if self.stride <= 0:
            raise ValueError("stride must be positive")

    def output_shape(self, input_shape: tuple) -> tuple:
        h, w, c = input_shape
        oh = conv_output_size(h, self.pool_size, self.stride, 0)
        ow = conv_output_size(w, self.pool_size, self.stride, 0)
        return (oh, ow, c)

    def forward(self, x: Tensor) -> Tensor:
        if x.packed:
            raise ValueError(f"{self.name}: average pooling needs float activations")
        data = np.asarray(x.data, dtype=np.float64)
        n, h, w, c = data.shape
        oh = conv_output_size(h, self.pool_size, self.stride, 0)
        ow = conv_output_size(w, self.pool_size, self.stride, 0)
        out = np.empty((n, oh, ow, c), dtype=np.float32)
        for i, j, window in _pool_windows(data, self.pool_size, self.stride):
            out[:, i, j, :] = window.reshape(n, -1, c).mean(axis=1)
        return Tensor(out, Layout.NHWC)
