"""Layer base class and parameter accounting.

Parameter accounting distinguishes binary (1-bit) from full-precision
(32-bit) and 8-bit parameters because Table II of the paper compares the
compressed PhoneBit model size against the full-precision model size.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.tensor import Tensor


@dataclass(frozen=True)
class ParamCount:
    """Number of parameters held by a layer, split by storage precision."""

    binary: int = 0
    float32: int = 0
    int8: int = 0

    def __add__(self, other: "ParamCount") -> "ParamCount":
        return ParamCount(
            binary=self.binary + other.binary,
            float32=self.float32 + other.float32,
            int8=self.int8 + other.int8,
        )

    @property
    def total(self) -> int:
        """Total number of parameters regardless of precision."""
        return self.binary + self.float32 + self.int8

    @property
    def compressed_bytes(self) -> int:
        """Bytes when stored in PhoneBit's compressed format."""
        return (self.binary + 7) // 8 + 4 * self.float32 + self.int8

    @property
    def full_precision_bytes(self) -> int:
        """Bytes when every parameter is stored as float32."""
        return 4 * self.total


class Layer:
    """Base class for all PhoneBit layers."""

    def __init__(self, name: str | None = None) -> None:
        self.name = name or self.__class__.__name__.lower()

    def output_shape(self, input_shape: tuple) -> tuple:
        """Shape (excluding batch) produced for a given input shape."""
        raise NotImplementedError

    def forward(self, x: Tensor) -> Tensor:
        """Functionally execute the layer on a batch tensor."""
        raise NotImplementedError

    def param_count(self) -> ParamCount:
        """Parameter inventory for model-size accounting."""
        return ParamCount()

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return f"{self.__class__.__name__}(name={self.name!r})"


def require_rng(rng: np.random.Generator | int | None) -> np.random.Generator:
    """Normalize a seed / generator argument into a Generator."""
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(rng)
