"""Dense (fully connected) layers: fused binary and full precision.

``BinaryDense`` mirrors :class:`repro.core.layers.conv.BinaryConv2d` for
1-D activations: the weight matrix is packed along the input-feature
dimension, the dot product uses xor/popcount (Eqn. 1) and the output is
binarized with the fused threshold of Eqn. (8)/(9).  ``Dense`` is the float
classifier head kept at full precision (the last layer of the AlexNet and
VGG16 benchmarks).
"""

from __future__ import annotations

import numpy as np

from repro.core import bitpack
from repro.core.binarize import binarize_sign
from repro.core.branchless import branchless_binarize
from repro.core.fusion import (
    BatchNormParams,
    affine_head_values,
    compute_threshold,
)
from repro.core.layers.base import Layer, ParamCount, require_rng
from repro.core.tensor import Layout, Tensor


def _pack_dense_weights(weight_bits: np.ndarray, word_size: int) -> np.ndarray:
    """Pack a dense weight matrix along its input-feature dimension."""
    return np.ascontiguousarray(
        bitpack.pack_bits(weight_bits, word_size=word_size, axis=0).T
    )


def _default_batchnorm(features: int) -> BatchNormParams:
    return BatchNormParams(
        gamma=np.ones(features),
        beta=np.zeros(features),
        mean=np.zeros(features),
        var=np.ones(features),
    )


class BinaryDense(Layer):
    """Fused binary fully connected layer."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        word_size: int = 64,
        output_binary: bool = True,
        weight_bits: np.ndarray | None = None,
        weights_packed: np.ndarray | None = None,
        batchnorm: BatchNormParams | None = None,
        bias: np.ndarray | None = None,
        rng=None,
        name: str | None = None,
    ) -> None:
        super().__init__(name)
        if in_features <= 0 or out_features <= 0:
            raise ValueError("feature counts must be positive")
        self.in_features = in_features
        self.out_features = out_features
        self.word_size = word_size
        self.output_binary = output_binary

        if weights_packed is not None:
            if weight_bits is not None:
                raise ValueError("pass weight_bits or weights_packed, not both")
            self.adopt_packed_weights(weights_packed)
        else:
            rng = require_rng(rng)
            if weight_bits is None:
                weight_bits = rng.integers(
                    0, 2, size=(in_features, out_features), dtype=np.uint8
                )
            self.weight_bits = weight_bits

        self.batchnorm = batchnorm or _default_batchnorm(out_features)
        if self.batchnorm.channels != out_features:
            raise ValueError("batch-norm feature count must match out_features")
        self.bias = (
            np.zeros(out_features) if bias is None else np.asarray(bias, dtype=np.float64)
        )
        self.threshold = compute_threshold(self.batchnorm, self.bias)
        self.gamma = self.batchnorm.gamma

    @property
    def weight_bits(self) -> np.ndarray:
        """Binary weight matrix as bits of shape ``(in_features, out_features)``.

        A layer constructed from already-packed weights (shared-memory
        attach, see :meth:`adopt_packed_weights`) materializes the unpacked
        bits lazily on first access; the execution path never needs them.
        """
        token = self._weight_bits
        if not isinstance(token, np.ndarray):  # packed-only sentinel
            cached = self._unpacked_cache
            if cached is not None and cached[0] is token:
                return cached[1]
            packed = self._packed_cache[1]
            bits = bitpack.unpack_bits(
                np.ascontiguousarray(packed.T), self.in_features, axis=0
            )
            bits.setflags(write=False)
            # Cached beside — not in place of — the sentinel: swapping
            # _weight_bits itself would invalidate the warm execution plan
            # (its snapshots key on this attribute's identity) on a mere
            # inspection read.
            self._unpacked_cache = (token, bits)
            return bits
        return token

    @weight_bits.setter
    def weight_bits(self, bits: np.ndarray) -> None:
        bits = np.array(bits, dtype=np.uint8, copy=True)
        if bits.shape != (self.in_features, self.out_features):
            raise ValueError(
                f"weight bits must have shape {(self.in_features, self.out_features)}, "
                f"got {bits.shape}"
            )
        # Copied above and frozen here so in-place edits cannot silently
        # bypass the packed-weight cache invalidation; reassign to mutate.
        bits.setflags(write=False)
        self._weight_bits = bits
        self._packed_cache = None

    def adopt_packed_weights(self, packed: np.ndarray) -> None:
        """Adopt an already-packed weight matrix without copying it.

        ``packed`` must be exactly what :attr:`weights_packed` would compute
        — shape ``(out_features, words)`` in the layer's word dtype, packed
        along the input-feature dimension.  The array is served as-is (a
        shared-memory attach stays zero-copy) and frozen; the unpacked
        :attr:`weight_bits` are materialized lazily if ever requested.
        """
        packed = np.asarray(packed)
        words = bitpack.words_per_channel(self.in_features, self.word_size)
        expected = (self.out_features, words)
        dtype = bitpack.word_dtype(self.word_size)
        if packed.shape != expected or packed.dtype != dtype:
            raise ValueError(
                f"packed weights must have shape {expected} and dtype {dtype}, "
                f"got {packed.shape} / {packed.dtype}"
            )
        if packed.flags.writeable:
            packed.setflags(write=False)
        # A *fresh* sentinel per adoption: the execution-plan cache keys its
        # validity on the identity of _weight_bits, so re-adopting new
        # packed weights must change that identity or a stale plan would
        # keep serving the old filters.
        token = object()
        self._weight_bits = token
        self._packed_cache = (token, packed)
        self._unpacked_cache = None

    @property
    def weights_packed(self) -> np.ndarray:
        """Weights packed along the input-feature dimension: (out_features, n_words).

        Packed once per weight assignment and cached; repeated forward
        passes reuse the cached copy.  As with the conv layers, the cache
        entry carries the bits array it was packed from and is only served
        while that array is still current, so a reassignment landing while
        another thread is mid-pack can never leave the cache stale.
        """
        bits = self._weight_bits
        cache = self._packed_cache
        if cache is not None and cache[0] is bits:
            return cache[1]
        packed = _pack_dense_weights(bits, self.word_size)
        self._packed_cache = (bits, packed)
        return packed

    def output_shape(self, input_shape: tuple) -> tuple:
        features = int(np.prod(input_shape))
        if features != self.in_features:
            raise ValueError(
                f"{self.name}: expected {self.in_features} input features, got {features}"
            )
        return (self.out_features,)

    def fused_output_bits(self, x1: np.ndarray) -> np.ndarray:
        """Output bits for integer pre-activations ``x1`` (Eqn. 9).

        Reference decision function consumed by the execution-plan compiler
        (see :meth:`repro.core.layers.conv._FusedBinaryConvBase.fused_output_bits`).
        """
        return branchless_binarize(x1, self.threshold, self.gamma)

    def affine_values(self, x1: np.ndarray) -> np.ndarray:
        """Float head values for ``x1``: the folded BN affine, in float32."""
        return affine_head_values(self.batchnorm, self.bias, x1)

    @property
    def x1_magnitude_bound(self) -> int:
        """Largest possible ``|x1|`` — bounds the plan compiler's search."""
        return self.in_features

    def forward(self, x: Tensor) -> Tensor:
        if x.packed:
            if x.data.ndim != 2:
                raise ValueError(f"{self.name}: packed input must be flattened first")
            packed = x.data
            features = x.true_channels
        else:
            data = np.asarray(x.data).reshape(x.data.shape[0], -1)
            bits = binarize_sign(data)
            packed = bitpack.pack_bits(bits, word_size=self.word_size, axis=1)
            features = data.shape[1]
        if features != self.in_features:
            raise ValueError(
                f"{self.name}: expected {self.in_features} input features, got {features}"
            )
        disagree = bitpack.xor_popcount_gemm(packed, self.weights_packed)
        x1 = self.in_features - 2 * disagree
        if self.output_binary:
            bits = self.fused_output_bits(x1)
            out_packed = bitpack.pack_bits(bits, word_size=self.word_size, axis=1)
            return Tensor(out_packed, Layout.NHWC, packed=True,
                          true_channels=self.out_features)
        return Tensor(self.affine_values(x1), Layout.NHWC)

    def param_count(self) -> ParamCount:
        # Computed from the geometry (not weight_bits.size) so accounting
        # never forces a packed-only layer to materialize unpacked bits.
        binary = self.in_features * self.out_features + self.out_features
        return ParamCount(binary=binary, float32=self.out_features)


class Dense(Layer):
    """Full-precision fully connected layer."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        use_bias: bool = True,
        activation: str | None = None,
        weights: np.ndarray | None = None,
        bias: np.ndarray | None = None,
        rng=None,
        name: str | None = None,
    ) -> None:
        super().__init__(name)
        if activation not in (None, "relu", "softmax"):
            raise ValueError(f"unsupported activation {activation!r}")
        self.in_features = in_features
        self.out_features = out_features
        self.use_bias = use_bias
        self.activation = activation

        rng = require_rng(rng)
        if weights is None:
            weights = rng.standard_normal((in_features, out_features)) * np.sqrt(
                2.0 / in_features
            )
        self.weights = np.asarray(weights, dtype=np.float32)
        if self.weights.shape != (in_features, out_features):
            raise ValueError(
                f"weights must have shape {(in_features, out_features)}, "
                f"got {self.weights.shape}"
            )
        self.bias = np.zeros(out_features, dtype=np.float32) if bias is None else np.asarray(
            bias, dtype=np.float32
        )

    def output_shape(self, input_shape: tuple) -> tuple:
        features = int(np.prod(input_shape))
        if features != self.in_features:
            raise ValueError(
                f"{self.name}: expected {self.in_features} input features, got {features}"
            )
        return (self.out_features,)

    def forward(self, x: Tensor) -> Tensor:
        if x.packed:
            # A float head following a binary layer consumes the packed bits
            # as ±1 values (the engine unpacks them on the fly).
            bits = bitpack.unpack_bits(x.data, x.true_channels, axis=-1)
            data = (2.0 * bits.astype(np.float64) - 1.0).reshape(x.data.shape[0], -1)
        else:
            data = np.asarray(x.data, dtype=np.float64).reshape(x.data.shape[0], -1)
        out = data @ self.weights.astype(np.float64)
        if self.use_bias:
            out = out + self.bias
        if self.activation == "relu":
            out = np.maximum(out, 0.0)
        elif self.activation == "softmax":
            shifted = out - out.max(axis=1, keepdims=True)
            exp = np.exp(shifted)
            out = exp / exp.sum(axis=1, keepdims=True)
        return Tensor(out.astype(np.float32), Layout.NHWC)

    def param_count(self) -> ParamCount:
        count = self.weights.size + (self.out_features if self.use_bias else 0)
        return ParamCount(float32=int(count))
