"""Activation and reshaping layers."""

from __future__ import annotations

import numpy as np

from repro.core import bitpack
from repro.core.binarize import binarize_sign
from repro.core.layers.base import Layer
from repro.core.tensor import Layout, Tensor


class Binarize(Layer):
    """Sign-binarize a float tensor and pack it along the channel dimension.

    Used on the unfused execution path (the fused layers binarize inline).
    """

    def __init__(self, word_size: int = 64, name: str | None = None) -> None:
        super().__init__(name)
        self.word_size = word_size

    def output_shape(self, input_shape: tuple) -> tuple:
        return tuple(input_shape)

    def forward(self, x: Tensor) -> Tensor:
        if x.packed:
            return x
        data = np.asarray(x.data)
        bits = binarize_sign(data)
        axis = data.ndim - 1
        packed = bitpack.pack_bits(bits, word_size=self.word_size, axis=axis)
        return Tensor(packed, Layout.NHWC, packed=True, true_channels=int(data.shape[-1]))


class Flatten(Layer):
    """Flatten spatial dimensions into a feature vector.

    Packed binary tensors are flattened by unpacking, reordering to
    (H, W, C) feature order and repacking, so that the bit order matches a
    float network flattened the same way.
    """

    def __init__(self, word_size: int = 64, name: str | None = None) -> None:
        super().__init__(name)
        self.word_size = word_size

    def output_shape(self, input_shape: tuple) -> tuple:
        return (int(np.prod(input_shape)),)

    def forward(self, x: Tensor) -> Tensor:
        data = np.asarray(x.data)
        batch = data.shape[0]
        if not x.packed:
            return Tensor(data.reshape(batch, -1), Layout.NHWC)
        bits = bitpack.unpack_bits(data, x.true_channels, axis=-1)
        flat_bits = bits.reshape(batch, -1)
        packed = bitpack.pack_bits(flat_bits, word_size=self.word_size, axis=1)
        return Tensor(packed, Layout.NHWC, packed=True,
                      true_channels=int(flat_bits.shape[1]))


class Relu(Layer):
    """Rectified linear activation (float paths only)."""

    def output_shape(self, input_shape: tuple) -> tuple:
        return tuple(input_shape)

    def forward(self, x: Tensor) -> Tensor:
        if x.packed:
            raise ValueError(f"{self.name}: ReLU needs float activations")
        return Tensor(np.maximum(np.asarray(x.data), 0.0), Layout.NHWC)


class Softmax(Layer):
    """Softmax over the last axis (classifier heads)."""

    def output_shape(self, input_shape: tuple) -> tuple:
        return tuple(input_shape)

    def forward(self, x: Tensor) -> Tensor:
        if x.packed:
            raise ValueError(f"{self.name}: softmax needs float activations")
        data = np.asarray(x.data, dtype=np.float64)
        shifted = data - data.max(axis=-1, keepdims=True)
        exp = np.exp(shifted)
        out = exp / exp.sum(axis=-1, keepdims=True)
        return Tensor(out.astype(np.float32), Layout.NHWC)
