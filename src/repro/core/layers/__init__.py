"""Layer zoo for PhoneBit networks.

Every layer consumes and produces :class:`repro.core.tensor.Tensor` objects
so that binary layers can hand packed-word activations directly to their
successors (the "layer overflow" the paper's fusion removes never
materializes intermediate float maps).
"""

from repro.core.layers.base import Layer, ParamCount
from repro.core.layers.conv import BinaryConv2d, FloatConv2d, InputConv2d
from repro.core.layers.dense import BinaryDense, Dense
from repro.core.layers.norm import BatchNorm2d
from repro.core.layers.pooling import AvgPool2d, MaxPool2d
from repro.core.layers.activation import Binarize, Flatten, Relu, Softmax

__all__ = [
    "Layer",
    "ParamCount",
    "InputConv2d",
    "BinaryConv2d",
    "FloatConv2d",
    "BinaryDense",
    "Dense",
    "BatchNorm2d",
    "MaxPool2d",
    "AvgPool2d",
    "Binarize",
    "Flatten",
    "Relu",
    "Softmax",
]
