"""Ahead-of-time execution plans: fused thresholds, buffer arena, threading.

``Network.forward`` interprets a network layer by layer; every binary block
re-derives packed inputs, materializes an int64 pre-activation map, converts
it to float64 for the Eqn. (9) comparison and allocates fresh intermediates.
An :class:`ExecutionPlan` compiles the network once instead:

* **Pattern matching / lowering** — ``InputConv2d``/``BinaryConv2d``/
  ``BinaryDense`` blocks (including the *unfused* three-layer spelling
  ``conv → BatchNorm2d → Binarize`` the converter emits for baseline
  frameworks) are lowered to fused packed steps.  The per-channel threshold
  ξ of Eqns. (5–8) is extracted as an exact **integer** decision boundary
  (:func:`repro.core.fusion.exact_integer_threshold`) and, for the
  xor-popcount layers, folded into the *accumulator* domain: the kernel
  tests the raw disagreement count and emits packed bits directly, so
  neither the ±1 pre-activation ``x1`` nor any unpacked/float intermediate
  is ever materialized between binary blocks.
* **Arena memory planning** — activations in a sequential chain die as soon
  as the next step has consumed them, so fused outputs ping-pong between
  two arena slots and all patch gathers share one scratch slot.  Arenas are
  pooled per plan and reused across ``run_batch`` chunks and serving
  requests; concurrent executions each borrow their own arena.
* **Multi-threaded tile execution** — fused GEMMs split their patch rows
  into tiles dispatched on a shared thread pool (NumPy releases the GIL in
  the xor/popcount/packbits inner loops).  ``REPRO_NUM_THREADS`` (or the
  engine's ``num_threads``) controls the fan-out; the default is
  ``os.cpu_count()``.

Plans are cached on the network (:func:`get_plan`) and — like the layers'
packed-weight caches — validated by identity snapshots of every array they
were compiled from, so a weight or batch-norm reassignment can never be
served by a stale plan.  Layers whose pattern does not match run through
their ordinary ``forward`` as fallback steps; plan outputs are bit-identical
to ``Network.forward`` by construction (enforced by tests and the
``bench_fused_exec`` benchmark).
"""

from __future__ import annotations

import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core import binary_conv, bitpack
from repro.core.binarize import binarize_sign
from repro.core.fusion import exact_integer_threshold
from repro.core.layers import (
    BatchNorm2d,
    Binarize,
    BinaryConv2d,
    BinaryDense,
    InputConv2d,
)
from repro.core.tensor import Layout, Tensor, conv_output_size

#: Upper bound on the rows one fused tile processes (matches the bounded
#: working set of the tiled popcount GEMMs in :mod:`repro.core.bitpack`).
_ROW_TILE = 512

#: Lower bound on tile rows when splitting for the thread pool — below this
#: the per-task dispatch overhead beats the parallelism.
_MIN_ROW_TILE = 64


def positive_int(value, name: str) -> int:
    """Validate ``value`` as a positive integer (the single validation path).

    Every thread-count source — the ``REPRO_NUM_THREADS`` environment
    override, the CLI's ``--threads``, and tuned thread counts from
    :mod:`repro.core.backends.tuner` — funnels through this helper, so
    they cannot disagree on what counts as valid or how the error reads.
    """
    try:
        parsed = int(value)
    except (TypeError, ValueError):
        parsed = 0
    if parsed < 1 or (isinstance(value, float) and not value.is_integer()):
        raise ValueError(f"{name} must be a positive integer, got {value!r}")
    return parsed


def default_num_threads() -> int:
    """Thread fan-out for fused tile execution.

    ``REPRO_NUM_THREADS`` overrides (validated by :func:`positive_int`);
    the default is ``os.cpu_count()``.
    """
    env = os.environ.get("REPRO_NUM_THREADS", "").strip()
    if env:
        return positive_int(env, "REPRO_NUM_THREADS")
    return os.cpu_count() or 1


_POOL_LOCK = threading.Lock()
_POOLS: Dict[int, ThreadPoolExecutor] = {}


def _shared_pool(threads: int) -> ThreadPoolExecutor:
    """Process-wide executor per fan-out (workers are reused, never torn down)."""
    with _POOL_LOCK:
        pool = _POOLS.get(threads)
        if pool is None:
            pool = ThreadPoolExecutor(
                max_workers=threads, thread_name_prefix=f"repro-tiles-{threads}"
            )
            _POOLS[threads] = pool
        return pool


def _reset_pools_after_fork() -> None:
    """Drop inherited thread-pool handles in a forked child.

    A ``fork()``ed child inherits the parent's ``_POOLS`` dict, but not the
    pool *threads* — submitting to an inherited executor would hang forever.
    The cluster workers (``repro.serving.cluster``) fork after the parent
    has warmed plans, so fresh pools must be lazily rebuilt in the child.
    """
    global _POOL_LOCK
    _POOL_LOCK = threading.Lock()  # the inherited lock may be mid-acquire
    _POOLS.clear()


if hasattr(os, "register_at_fork"):  # POSIX only; spawn contexts start clean
    os.register_at_fork(after_in_child=_reset_pools_after_fork)


def _row_tiles(rows: int, threads: int,
               row_tile: Optional[int] = None) -> List[Tuple[int, int]]:
    """Split ``rows`` into contiguous tile ranges for (threaded) execution.

    ``row_tile`` overrides the built-in upper bound — the knob the
    auto-tuner (:mod:`repro.core.backends.tuner`) searches per host.
    """
    tile = _ROW_TILE if row_tile is None else positive_int(row_tile, "row_tile")
    if threads > 1:
        # Aim for a few tiles per worker so uneven tile costs still balance,
        # without shrinking tiles below the dispatch-overhead floor.
        balanced = -(-rows // (threads * 4))
        tile = min(tile, max(_MIN_ROW_TILE, balanced))
    return [(r0, min(r0 + tile, rows)) for r0 in range(0, rows, tile)]


class BufferArena:
    """Named, grow-only scratch buffers reused across plan executions.

    A slot is a flat byte buffer that only ever grows; :meth:`view` returns
    a typed window of the requested shape.  One arena is used by exactly one
    execution at a time (the plan keeps a free-list), so views need no
    locking — liveness is guaranteed by the plan's slot assignment, not by
    reference counting.
    """

    def __init__(self) -> None:
        self._buffers: Dict[str, np.ndarray] = {}

    def view(self, name: str, shape: Tuple[int, ...], dtype) -> np.ndarray:
        dtype = np.dtype(dtype)
        nbytes = int(np.prod(shape)) * dtype.itemsize
        buf = self._buffers.get(name)
        if buf is None or buf.nbytes < nbytes:
            buf = np.empty(max(nbytes, 1), dtype=np.uint8)
            self._buffers[name] = buf
        return buf[:nbytes].view(dtype).reshape(shape)

    def owns(self, array: np.ndarray) -> bool:
        """Whether ``array`` is a view into one of this arena's buffers."""
        base = array
        while isinstance(base, np.ndarray):
            for buf in self._buffers.values():
                if base is buf:
                    return True
            base = base.base
        return False

    @property
    def nbytes(self) -> int:
        """Bytes currently held across all slots."""
        return sum(buf.nbytes for buf in self._buffers.values())


class _ExecContext:
    """Per-execution resources handed to every step."""

    __slots__ = ("arena", "pool", "threads", "row_tile", "col_tile")

    def __init__(self, arena: BufferArena, pool: Optional[ThreadPoolExecutor],
                 threads: int, row_tile: Optional[int] = None,
                 col_tile: Optional[int] = None) -> None:
        self.arena = arena
        self.pool = pool
        self.threads = threads
        self.row_tile = row_tile
        self.col_tile = col_tile

    def run_tiles(self, rows: int, work: Callable[[int, int], None]) -> None:
        """Run ``work(r0, r1)`` over row tiles, fanned out when possible."""
        tiles = _row_tiles(rows, self.threads, self.row_tile)
        if self.pool is None or len(tiles) <= 1:
            for r0, r1 in tiles:
                work(r0, r1)
            return
        # list() drains the iterator so worker exceptions propagate here.
        list(self.pool.map(lambda t: work(t[0], t[1]), tiles))


class LayerStep:
    """Fallback step: execute one layer through its ordinary ``forward``."""

    fused = False

    def __init__(self, layer, layer_index: int) -> None:
        self.layer = layer
        self.layer_start = layer_index
        self.layer_stop = layer_index + 1

    @property
    def describe(self) -> str:
        return f"layer {type(self.layer).__name__}({self.layer.name})"

    def run(self, x: Tensor, ctx: _ExecContext) -> Tensor:
        return self.layer.forward(x)


class _FusedStepBase:
    """Shared bookkeeping for the fused packed steps."""

    fused = True

    def __init__(self, layer, layer_start: int, layer_stop: int,
                 threshold: np.ndarray, flip: np.ndarray,
                 out_word_size: int, out_slot: str) -> None:
        self.layer = layer
        self.layer_start = layer_start
        self.layer_stop = layer_stop
        #: Integer x1-domain decision boundary: bit = (x1 >= threshold) ^ flip.
        self.threshold = threshold
        self.flip = flip
        self.out_word_size = out_word_size
        self.out_slot = out_slot
        self.weights_packed = layer.weights_packed  # compile-time snapshot
        #: Compiled kernel backend attached by
        #: :func:`repro.core.backends.select_for_plan` after the step's
        #: kernels were verified bit-exact against NumPy; ``None`` runs the
        #: NumPy reference path.
        self.compiled = None


class FusedConvStep(_FusedStepBase):
    """Fused binary convolution → threshold → packed bits (Eqns. 1/5–9)."""

    def __init__(self, layer, layer_start: int, layer_stop: int,
                 threshold: np.ndarray, flip: np.ndarray,
                 out_word_size: int, out_slot: str) -> None:
        super().__init__(layer, layer_start, layer_stop, threshold, flip,
                         out_word_size, out_slot)
        self.is_input_conv = isinstance(layer, InputConv2d)
        if self.is_input_conv:
            # The plan lowers the first layer to an exact float64 GEMM: the
            # 8-bit integer convolution's every intermediate is an integer
            # far below 2^53, so BLAS dgemm reproduces the bit-plane
            # accumulation of Eqn. (2) bit-exactly while running orders of
            # magnitude faster on CPU (the bit-plane kernels model the
            # paper's GPU popcount path and survive as the layerwise
            # reference the tests compare against).
            self.float_weights = np.ascontiguousarray(
                (2.0 * layer.weight_bits.astype(np.float64) - 1.0).reshape(
                    -1, layer.out_channels
                )
            )
        else:
            self.flat_filters = np.ascontiguousarray(
                self.weights_packed.reshape(layer.out_channels, -1)
            )
            # Fold the boundary into the accumulator domain:
            #   x1 = L − 2·d  ⇒  (x1 >= t) ⇔ (d <= (L − t) // 2),
            # clipped to the feasible count range [−1, L] so it fits the
            # kernel's int32 accumulator.
            length = layer.kernel_size ** 2 * layer.in_channels
            acc = np.floor_divide(length - threshold, 2)
            self.acc_threshold = np.clip(acc, -1, length).astype(np.int32)

    @property
    def describe(self) -> str:
        layer = self.layer
        kind = "input-conv(exact-gemm)" if self.is_input_conv else "conv(xor-popcount)"
        span = self.layer_stop - self.layer_start
        folded = "" if span == 1 else f" [folds {span} layers]"
        return (
            f"fused {kind} {layer.name}: {layer.in_channels}→{layer.out_channels} "
            f"k{layer.kernel_size} s{layer.stride} p{layer.padding}, "
            f"w{self.out_word_size} packed out{folded}"
        )

    def run(self, x: Tensor, ctx: _ExecContext) -> Tensor:
        layer = self.layer
        if self.is_input_conv:
            return self._run_input_conv(x, ctx)
        if x.packed:
            packed = x.data
            true_channels = x.true_channels
        else:
            bits = binarize_sign(x.data)
            packed = binary_conv.pack_activations(bits, word_size=layer.word_size)
            true_channels = int(x.data.shape[-1])
        if true_channels != layer.in_channels:
            raise ValueError(
                f"{layer.name}: expected {layer.in_channels} input channels, "
                f"got {true_channels}"
            )
        n, h, w, wc_in = packed.shape
        k = layer.kernel_size
        oh = conv_output_size(h, k, layer.stride, layer.padding)
        ow = conv_output_size(w, k, layer.stride, layer.padding)
        rows = n * oh * ow
        compiled = self.compiled
        gather = None
        if k == 1 and layer.padding == 0 and layer.stride == 1:
            # Zero-copy reshape, no gather buffer needed.
            patches, _, _ = binary_conv.packed_patch_matrix(
                packed, k, layer.stride, layer.padding
            )
            if compiled is not None:
                patches = np.ascontiguousarray(patches)
        elif compiled is not None:
            # Fold the patch gather into the row tiles: each tile gathers
            # its own patch rows with the compiled im2col kernel right
            # before consuming them, so the gather is threaded too and its
            # output stays cache-hot for the fused GEMM.
            packed = np.ascontiguousarray(packed)
            patches = ctx.arena.view("patch", (rows, k * k * wc_in), packed.dtype)

            def gather(r0, r1, _packed=packed, _patches=patches):
                compiled.packed_patch_rows(
                    _packed, k, layer.stride, layer.padding, oh, ow,
                    _patches, r0, r1,
                )
        else:
            patch_out = ctx.arena.view("patch", (rows, k * k * wc_in), packed.dtype)
            patches, _, _ = binary_conv.packed_patch_matrix(
                packed, k, layer.stride, layer.padding, out=patch_out
            )
        if patches.shape[1] != self.flat_filters.shape[1]:
            raise ValueError("activation and filter packing widths do not match")
        wc_out = bitpack.words_per_channel(layer.out_channels, self.out_word_size)
        out = ctx.arena.view(
            self.out_slot, (rows, wc_out), bitpack.word_dtype(self.out_word_size)
        )
        fused_rows = (
            bitpack.fused_xor_threshold_rows if compiled is None
            else compiled.fused_xor_threshold_rows
        )

        def work(r0: int, r1: int) -> None:
            if gather is not None:
                gather(r0, r1)
            fused_rows(
                patches, self.flat_filters, self.acc_threshold, self.flip,
                out, r0, r1, self.out_word_size, col_tile=ctx.col_tile,
            )

        ctx.run_tiles(rows, work)
        return Tensor(
            out.reshape(n, oh, ow, wc_out), Layout.NHWC,
            packed=True, true_channels=layer.out_channels,
        )

    def _run_input_conv(self, x: Tensor, ctx: _ExecContext) -> Tensor:
        layer = self.layer
        if x.packed:
            raise ValueError(f"{layer.name}: expected an unpacked integer image")
        image = np.asarray(x.data)
        if image.dtype.kind not in "ui":
            raise ValueError(
                f"{layer.name}: expected an integer image, got {image.dtype}"
            )
        # Same range validation the bit-plane path applies in
        # ``split_bitplanes``: the exact GEMM would happily convolve
        # out-of-range values, but the compiled thresholds were only
        # bisected over the ``input_bits`` range — and the interpreter
        # raises, so the plan must too.
        if image.size:
            if image.dtype.kind == "i" and image.min() < 0:
                raise ValueError("bit-plane splitting requires non-negative values")
            if image.max() >= (1 << layer.input_bits):
                raise ValueError(
                    f"image values do not fit in {layer.input_bits} bits"
                )
        k = layer.kernel_size
        n, h, w = image.shape[:3]
        oh = conv_output_size(h, k, layer.stride, layer.padding)
        ow = conv_output_size(w, k, layer.stride, layer.padding)
        rows = n * oh * ow
        cout = layer.out_channels
        volume = k * k * layer.in_channels
        # Gather integer patches straight into a float64 arena buffer (the
        # copyto casts), multiply by the ±1 filter matrix with one dgemm —
        # exact, see __init__ — then threshold + pack the float x1 rows.
        patches = ctx.arena.view("patch", (rows, volume), np.float64)
        binary_conv.gather_patches_nhwc(
            image, k, layer.stride, layer.padding, out=patches
        )
        x1 = ctx.arena.view("x1", (rows, cout), np.float64)
        np.matmul(patches, self.float_weights, out=x1)
        wc_out = bitpack.words_per_channel(cout, self.out_word_size)
        out = ctx.arena.view(
            self.out_slot, (rows, wc_out), bitpack.word_dtype(self.out_word_size)
        )
        ctx.run_tiles(
            rows,
            lambda r0, r1: bitpack.threshold_pack_rows(
                x1, self.threshold, self.flip, out, r0, r1,
                self.out_word_size,
            ),
        )
        return Tensor(
            out.reshape(n, oh, ow, wc_out), Layout.NHWC,
            packed=True, true_channels=cout,
        )


class FusedDenseStep(_FusedStepBase):
    """Fused binary dense → accumulator threshold → packed bits."""

    @property
    def describe(self) -> str:
        layer = self.layer
        span = self.layer_stop - self.layer_start
        folded = "" if span == 1 else f" [folds {span} layers]"
        return (
            f"fused dense(xor-popcount) {layer.name}: "
            f"{layer.in_features}→{layer.out_features}, "
            f"w{self.out_word_size} packed out{folded}"
        )

    def __init__(self, layer, layer_start: int, layer_stop: int,
                 threshold: np.ndarray, flip: np.ndarray,
                 out_word_size: int, out_slot: str) -> None:
        super().__init__(layer, layer_start, layer_stop, threshold, flip,
                         out_word_size, out_slot)
        acc = np.floor_divide(layer.in_features - threshold, 2)
        self.acc_threshold = np.clip(acc, -1, layer.in_features).astype(np.int32)

    def run(self, x: Tensor, ctx: _ExecContext) -> Tensor:
        layer = self.layer
        if x.packed:
            if x.data.ndim != 2:
                raise ValueError(f"{layer.name}: packed input must be flattened first")
            packed = x.data
            features = x.true_channels
        else:
            data = np.asarray(x.data).reshape(x.data.shape[0], -1)
            bits = binarize_sign(data)
            packed = bitpack.pack_bits(bits, word_size=layer.word_size, axis=1)
            features = data.shape[1]
        if features != layer.in_features:
            raise ValueError(
                f"{layer.name}: expected {layer.in_features} input features, "
                f"got {features}"
            )
        if packed.shape[1] != self.weights_packed.shape[1]:
            raise ValueError("operand packing widths do not match")
        packed = np.ascontiguousarray(packed)
        rows = packed.shape[0]
        wc_out = bitpack.words_per_channel(layer.out_features, self.out_word_size)
        out = ctx.arena.view(
            self.out_slot, (rows, wc_out), bitpack.word_dtype(self.out_word_size)
        )
        fused_rows = (
            bitpack.fused_xor_threshold_rows if self.compiled is None
            else self.compiled.fused_xor_threshold_rows
        )
        weights = self.weights_packed
        if self.compiled is not None and not weights.flags["C_CONTIGUOUS"]:
            weights = np.ascontiguousarray(weights)
        ctx.run_tiles(
            rows,
            lambda r0, r1: fused_rows(
                packed, weights, self.acc_threshold, self.flip,
                out, r0, r1, self.out_word_size, col_tile=ctx.col_tile,
            ),
        )
        return Tensor(out, Layout.NHWC, packed=True,
                      true_channels=layer.out_features)


class ExecutionPlan:
    """A compiled network: fused steps + arena pool + thread fan-out.

    Plans hold compile-time snapshots of every array they depend on
    (packed weights, thresholds, batch-norm parameters); :meth:`is_current`
    checks those identities so :func:`get_plan` can transparently recompile
    after a weight or batch-norm reassignment — a stale plan is never
    executed (same lock-free snapshot discipline as the layers'
    packed-weight caches).
    """

    def __init__(self, network, steps: Sequence[object],
                 attr_snapshots: Sequence[Tuple[object, str, object]],
                 per_sample_bytes: int) -> None:
        self.network_name = network.name
        self.input_shape = tuple(network.input_shape)
        self.steps = list(steps)
        self.per_sample_bytes = int(per_sample_bytes)
        self._layers_snapshot = tuple(network.layers)
        self._attr_snapshots = list(attr_snapshots)
        self._arena_lock = threading.Lock()
        self._arenas: List[BufferArena] = []
        #: Resolved backend name after :meth:`select_backend` ("numpy" until
        #: then) and the per-step selection report it produced.
        self.backend_spec = "numpy"
        self.backend_selection: Optional[Dict[str, str]] = None
        self._backend_requested: Optional[str] = None

    # ------------------------------------------------------------- validity
    def is_current(self, network) -> bool:
        """Whether this plan still matches the network it was compiled from."""
        layers = network.layers
        if len(layers) != len(self._layers_snapshot):
            return False
        for layer, snap in zip(layers, self._layers_snapshot):
            if layer is not snap:
                return False
        for obj, attr, snapshot in self._attr_snapshots:
            if getattr(obj, attr, None) is not snapshot:
                return False
        return True

    @property
    def fused_step_count(self) -> int:
        return sum(1 for step in self.steps if step.fused)

    # ------------------------------------------------------------- resources
    def _acquire_arena(self) -> BufferArena:
        with self._arena_lock:
            if self._arenas:
                return self._arenas.pop()
        return BufferArena()

    def _release_arena(self, arena: BufferArena) -> None:
        with self._arena_lock:
            self._arenas.append(arena)

    # ------------------------------------------------------------- backends
    def select_backend(self, spec: Optional[str] = None) -> Dict[str, str]:
        """Attach compiled kernels to this plan's fused steps (idempotent).

        ``spec`` is a :data:`repro.core.backends.BACKEND_CHOICES` name;
        ``None`` uses the process default (``REPRO_BACKEND`` or ``auto``).
        Each eligible step is verified bit-exact against the NumPy
        reference before it adopts a compiled kernel — see
        :func:`repro.core.backends.select_for_plan`.  Re-selection with the
        same spec is a no-op, so warm paths may call this per batch.
        """
        from repro.core import backends

        spec = (spec or backends.default_backend_spec()).lower()
        if spec == self._backend_requested and self.backend_selection is not None:
            return self.backend_selection
        report = backends.select_for_plan(self, spec)
        self._backend_requested = spec
        return report

    def backend_report(self) -> Dict[str, object]:
        """What each step runs on: spec, resolved backend, per-step map."""
        steps = self.backend_selection
        if steps is None:
            steps = {
                f"[{index}] {step.describe}": "numpy"
                for index, step in enumerate(self.steps)
            }
        return {
            "spec": self._backend_requested or "numpy",
            "backend": self.backend_spec,
            "steps": dict(steps),
        }

    # ------------------------------------------------------------- execution
    def coerce_input(self, x) -> Tensor:
        if not isinstance(x, Tensor):
            x = Tensor(np.asarray(x), Layout.NHWC)
        if x.data.shape[1:] != self.input_shape:
            raise ValueError(
                f"{self.network_name}: expected input shape (N,)+{self.input_shape}, "
                f"got {x.data.shape}"
            )
        return x

    def execute(
        self,
        x,
        threads: Optional[int] = None,
        step_times: Optional[list] = None,
        row_tile: Optional[int] = None,
        col_tile: Optional[int] = None,
    ) -> Tensor:
        """Run the plan on a batch; bit-identical to ``Network.forward``.

        Parameters
        ----------
        x:
            Input batch (ndarray or :class:`Tensor`).
        threads:
            Tile fan-out; defaults to :func:`default_num_threads`.
        step_times:
            Optional list; ``(step, seconds)`` is appended per step so the
            engine can attribute wall clock to layers.
        row_tile, col_tile:
            Tile-shape overrides (rows per tile, filter columns per inner
            block).  ``None`` keeps the built-in defaults; the per-host
            auto-tuner (:mod:`repro.core.backends.tuner`) supplies
            measured winners.  Tiling never changes results, only speed.
        """
        current = self.coerce_input(x)
        threads = default_num_threads() if threads is None else max(1, int(threads))
        arena = self._acquire_arena()
        pool = _shared_pool(threads) if threads > 1 else None
        ctx = _ExecContext(arena, pool, threads, row_tile, col_tile)
        try:
            for step in self.steps:
                t0 = time.perf_counter()
                current = step.run(current, ctx)
                if step_times is not None:
                    step_times.append((step, time.perf_counter() - t0))
            if arena.owns(current.data):
                # Detach before the arena returns to the free-list: another
                # execution may borrow (and overwrite) it the moment the
                # finally block runs.  Ownership is checked on the actual
                # buffer, not the step type, because a fallback step may
                # pass an arena-backed tensor through unchanged.
                current = Tensor(
                    current.data.copy(), current.layout,
                    current.packed, current.true_channels,
                )
            return current
        finally:
            self._release_arena(arena)

    # ------------------------------------------------------------- reporting
    def describe(self) -> str:
        """Human-readable plan IR (one line per step)."""
        lines = [
            f"ExecutionPlan for {self.network_name!r} "
            f"({self.fused_step_count}/{len(self.steps)} steps fused, "
            f"~{self.per_sample_bytes / 2**20:.2f} MiB arena/sample)"
        ]
        for index, step in enumerate(self.steps):
            slot = getattr(step, "out_slot", "-")
            lines.append(f"  [{index:2d}] {step.describe}  → {slot}")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return (
            f"ExecutionPlan(network={self.network_name!r}, "
            f"steps={len(self.steps)}, fused={self.fused_step_count})"
        )


# ----------------------------------------------------------------- compile
def _match_fused_block(layers, index):
    """Match a fusable block starting at ``layers[index]``.

    Returns ``(consumed, predicate, out_word_size)`` or ``None``.  A block
    is either a single binary layer that packs its own output
    (``output_binary=True``) or the unfused three-layer spelling
    ``conv/dense → BatchNorm2d → Binarize``; ``predicate`` replicates the
    matched path's exact arithmetic (including float32 casts) per channel.
    """
    layer = layers[index]
    channels = (
        layer.out_features if isinstance(layer, BinaryDense) else layer.out_channels
    )
    if layer.output_binary:
        return 1, layer.fused_output_bits, layer.word_size
    if index + 2 < len(layers):
        bn, sign = layers[index + 1], layers[index + 2]
        if (
            isinstance(bn, BatchNorm2d)
            and isinstance(sign, Binarize)
            and bn.params.channels == channels
        ):
            def predicate(x1, _layer=layer, _bn=bn):
                return binarize_sign(_bn.normalize_values(_layer.affine_values(x1)))

            return 3, predicate, sign.word_size
    return None


def _fused_attr_snapshots(step) -> List[Tuple[object, str, object]]:
    """Identity snapshots of everything a fused step's lowering depends on."""
    layer = step.layer
    snapshots = [
        (layer, "_weight_bits", layer._weight_bits),
        (layer, "batchnorm", layer.batchnorm),
        (layer, "bias", layer.bias),
        (layer, "threshold", layer.threshold),
        (layer, "gamma", layer.gamma),
    ]
    return snapshots


def compile_plan(network) -> ExecutionPlan:
    """Compile ``network`` into an :class:`ExecutionPlan`."""
    shapes = network.layer_shapes()
    layers = list(network.layers)
    steps: List[object] = []
    snapshots: List[Tuple[object, str, object]] = []
    per_sample_peak = 0
    fused_index = 0
    i = 0
    while i < len(layers):
        layer = layers[i]
        match = None
        if isinstance(layer, (InputConv2d, BinaryConv2d, BinaryDense)):
            match = _match_fused_block(layers, i)
        if match is None:
            step = LayerStep(layer, i)
            in_shape, out_shape = shapes[i][1], shapes[i][2]
            working = 4 * (int(np.prod(in_shape)) + int(np.prod(out_shape)))
            steps.append(step)
            per_sample_peak = max(per_sample_peak, working)
            i += 1
            continue
        consumed, predicate, out_word_size = match
        bound = layer.x1_magnitude_bound
        out_slot = f"act{fused_index % 2}"
        fused_index += 1
        if isinstance(layer, BinaryDense):
            threshold, flip = exact_integer_threshold(
                predicate, layer.out_features, -bound, bound
            )
            step = FusedDenseStep(
                layer, i, i + consumed, threshold, flip, out_word_size, out_slot
            )
            in_words = bitpack.words_per_channel(layer.in_features, layer.word_size)
            out_words = bitpack.words_per_channel(layer.out_features, out_word_size)
            working = (
                in_words * np.dtype(bitpack.word_dtype(layer.word_size)).itemsize
                + out_words * np.dtype(bitpack.word_dtype(out_word_size)).itemsize
            )
        else:
            threshold, flip = exact_integer_threshold(
                predicate, layer.out_channels, -bound, bound
            )
            step = FusedConvStep(
                layer, i, i + consumed, threshold, flip, out_word_size, out_slot
            )
            in_shape = shapes[i][1]
            oh = conv_output_size(
                in_shape[0], layer.kernel_size, layer.stride, layer.padding
            )
            ow = conv_output_size(
                in_shape[1], layer.kernel_size, layer.stride, layer.padding
            )
            wc_in = bitpack.words_per_channel(layer.in_channels, layer.word_size)
            wc_out = bitpack.words_per_channel(layer.out_channels, out_word_size)
            word_bytes = np.dtype(bitpack.word_dtype(layer.word_size)).itemsize
            out_bytes = oh * ow * wc_out * np.dtype(
                bitpack.word_dtype(out_word_size)
            ).itemsize
            if isinstance(layer, InputConv2d):
                # Exact-GEMM lowering: float64 patches + float64 x1 map.
                volume = layer.kernel_size ** 2 * layer.in_channels
                working = (
                    int(np.prod(in_shape))
                    + oh * ow * volume * 8
                    + oh * ow * layer.out_channels * 8
                    + out_bytes
                )
            else:
                in_bytes = in_shape[0] * in_shape[1] * wc_in * word_bytes
                patch_bytes = oh * ow * layer.kernel_size ** 2 * wc_in * word_bytes
                working = in_bytes + patch_bytes + out_bytes
        snapshots.extend(_fused_attr_snapshots(step))
        for extra in layers[i + 1:i + consumed]:
            if isinstance(extra, BatchNorm2d):
                snapshots.append((extra, "params", extra.params))
        steps.append(step)
        per_sample_peak = max(per_sample_peak, int(working))
        i += consumed
    return ExecutionPlan(network, steps, snapshots, per_sample_peak)


def get_plan(network) -> ExecutionPlan:
    """Compiled plan for ``network``, cached on the network object.

    The cached plan is revalidated against the network's current layer and
    parameter identities on every call; a reassignment (weights, batch-norm,
    layer list) triggers a transparent recompile.  Concurrent first calls
    may compile twice — both results are identical and the last store wins,
    mirroring the packed-weight caches' lock-free discipline.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.core.plan import get_plan
    >>> from repro.models.zoo import build_phonebit_network, micro_cnn_config
    >>> network = build_phonebit_network(micro_cnn_config())
    >>> plan = get_plan(network)
    >>> plan.fused_step_count >= 2        # conv + dense blocks were fused
    True
    >>> get_plan(network) is plan         # cached until weights change
    True
    >>> batch = np.zeros((2, 8, 8, 3), dtype=np.uint8)
    >>> out = plan.execute(batch, threads=1)
    >>> bool(np.array_equal(out.data, network.forward(batch).data))
    True
    """
    plan = getattr(network, "_plan_cache", None)
    if plan is not None and plan.is_current(network):
        return plan
    plan = compile_plan(network)
    network._plan_cache = plan
    return plan
