"""The PhoneBit inference engine.

The engine plays the role of the OpenCL runtime in the paper: it walks a
:class:`~repro.core.network.Network`, executes each layer functionally (the
bit-exact NumPy kernels) and/or emits the corresponding
:class:`~repro.gpusim.kernel.KernelLaunch` descriptors to the mobile-GPU
cost model to obtain the simulated on-device latency.

Two usage modes:

``run(network, batch)``
    Execute the network on real data and return the output together with an
    :class:`InferenceReport` (simulated latency, per-layer breakdown,
    memory footprint).

``estimate(network)``
    Skip the functional execution and only produce the cost estimate —
    used by the benchmark harness so full-size networks (VGG16 at 224²,
    YOLOv2-Tiny at 416²) can be swept quickly.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.core import kernels as kern
from repro.core import plan as plan_mod
from repro.core.kernels import ConvGeometry
from repro.core.layers import (
    AvgPool2d,
    BatchNorm2d,
    Binarize,
    BinaryConv2d,
    BinaryDense,
    Dense,
    Flatten,
    FloatConv2d,
    InputConv2d,
    MaxPool2d,
    Relu,
    Softmax,
)
from repro.core.network import Network
from repro.core.tensor import Tensor
from repro.gpusim.cost_model import CostModel, EfficiencyProfile, RunCost
from repro.gpusim.device import DeviceSpec, snapdragon_855
from repro.gpusim.kernel import KernelLaunch, LayerWorkload, OpKind


#: Default byte budget for the working-set-aware chunk heuristic: batches
#: whose per-image arena working set would exceed this are split into chunks
#: that fit (see :meth:`PhoneBitEngine.auto_chunk_size`).
DEFAULT_CHUNK_BYTES = 256 * 2**20

#: Efficiency profile of PhoneBit's hand-tuned OpenCL kernels.
PHONEBIT_PROFILE = EfficiencyProfile(
    name="phonebit",
    compute_efficiency=0.80,
    memory_efficiency=0.90,
    launch_overhead_factor=1.0,
    per_inference_overhead_s=1.5e-3,
)


@dataclass
class InferenceReport:
    """Result of running (or estimating) one inference."""

    network_name: str
    device_name: str
    latency_ms: float
    layer_times_ms: Dict[str, float]
    run_cost: RunCost
    output: Optional[Tensor] = None
    peak_activation_bytes: float = 0.0
    weight_bytes: float = 0.0
    extras: dict = field(default_factory=dict)

    @property
    def fps(self) -> float:
        return 1000.0 / self.latency_ms if self.latency_ms > 0 else float("inf")


@dataclass
class BatchInferenceReport:
    """Result of one batched execution (:meth:`PhoneBitEngine.run_batch`).

    Wall-clock figures are real measurements on this machine; ``estimate``
    carries the simulated single-image on-device cost (computed once for
    the whole batch rather than once per image).
    """

    network_name: str
    device_name: str
    batch_size: int
    wall_ms_total: float
    layer_wall_ms: Dict[str, float]
    estimate: Optional[InferenceReport]
    output: Optional[Tensor] = None

    @property
    def wall_ms_per_image(self) -> float:
        return self.wall_ms_total / self.batch_size if self.batch_size else 0.0

    @property
    def throughput_ips(self) -> float:
        """Measured end-to-end throughput in images per second."""
        if self.wall_ms_total <= 0:
            return float("inf")
        return 1000.0 * self.batch_size / self.wall_ms_total

    @property
    def layer_throughput_ips(self) -> Dict[str, float]:
        """Measured per-layer throughput in images per second."""
        return {
            name: (1000.0 * self.batch_size / ms if ms > 0 else float("inf"))
            for name, ms in self.layer_wall_ms.items()
        }


class PhoneBitEngine:
    """Inference engine combining functional execution with cost estimation."""

    def __init__(
        self,
        device: DeviceSpec | None = None,
        word_size: int = 64,
        profile: EfficiencyProfile | None = None,
        fused: bool = True,
        branchless: bool = True,
        use_plan: bool = True,
        num_threads: int | None = None,
        backend: str | None = None,
        auto_tune: bool = True,
    ) -> None:
        self.device = device or snapdragon_855()
        self.word_size = word_size
        self.profile = profile or PHONEBIT_PROFILE
        self.fused = fused
        self.branchless = branchless
        #: Execute through compiled fused plans (:mod:`repro.core.plan`);
        #: ``False`` forces the layer-by-layer interpreter (the unfused
        #: baseline the ``bench_fused_exec`` benchmark measures against).
        self.use_plan = use_plan
        #: Tile-execution thread fan-out; ``None`` defers to
        #: ``REPRO_NUM_THREADS``, then to a tuned per-host winner when one
        #: exists, then to ``os.cpu_count()`` at execution time.  Every one
        #: of those sources is validated by
        #: :func:`repro.core.plan.positive_int`, the single thread-count
        #: validation path.
        self.num_threads = num_threads
        #: Kernel backend spec applied to plans before execution — one of
        #: :data:`repro.core.backends.BACKEND_CHOICES`; ``None`` defers to
        #: ``REPRO_BACKEND`` / ``"auto"``.  Selection is per plan step and
        #: gated on bit-exactness (:mod:`repro.core.backends`).
        self.backend = backend
        #: Consult the digest-keyed per-host tuning cache
        #: (:mod:`repro.core.backends.tuner`) for measured thread/tile/chunk
        #: winners.  Explicit ``num_threads`` / ``chunk_bytes`` settings
        #: always override tuned values.
        self.auto_tune = auto_tune
        self.cost_model = CostModel(self.device, self.profile)

    # ----------------------------------------------------------- planning
    def _plan_for(self, network: Network, backend: str | None = None):
        """Compiled (and cached) execution plan, or None when disabled.

        Also (re)attaches the compiled kernel backend: selection is
        idempotent per spec, so the per-batch cost is one string compare.
        """
        if not self.use_plan:
            return None
        plan = plan_mod.get_plan(network)
        plan.select_backend(backend or self.backend)
        return plan

    def _tuned_for(self, network: Network, plan, batch_size: int):
        """Tuned per-host config for this batch, or None.

        Best-effort by design: any tuner/cache failure means built-in
        defaults.  Tuned records only carry result-neutral knobs, so a
        stale record can slow execution down but never change outputs.
        """
        if not self.auto_tune or plan is None:
            return None
        try:
            from repro.core.backends import tuner

            return tuner.lookup_network(network, batch_size)
        except Exception:  # noqa: BLE001 - tuning must never break inference
            return None

    def backend_report(self, network: Network) -> dict:
        """Per-step backend selection for ``network`` under current settings."""
        plan = self._plan_for(network)
        if plan is None:
            return {"spec": "numpy", "backend": "numpy", "steps": {}}
        return plan.backend_report()

    def auto_chunk_size(
        self,
        network: Network,
        batch_size: int,
        chunk_bytes: int = DEFAULT_CHUNK_BYTES,
        plan=None,
    ) -> int:
        """Working-set-aware chunk bound: images per chunk within a byte budget.

        The compiled plan knows its per-image arena working set (packed
        activations + patch scratch, plus the bit-plane ``x1`` map for the
        input layer); the chunk is sized so that working set stays within
        ``chunk_bytes``.  Without a plan the estimate falls back to float32
        layer activations.  At least one image always runs per chunk — the
        budget bounds the *chunking*, it cannot make a single image fit.
        """
        if chunk_bytes <= 0:
            raise ValueError("chunk_bytes must be positive")
        if plan is None:
            plan = self._plan_for(network)
        if plan is not None:
            per_sample = plan.per_sample_bytes
        else:
            per_sample = max(
                (
                    4 * (int(np.prod(in_shape)) + int(np.prod(out_shape)))
                    for _, in_shape, out_shape in network.layer_shapes()
                ),
                default=0,
            )
        if per_sample <= 0:
            return batch_size
        return max(1, min(batch_size, chunk_bytes // per_sample))

    # ----------------------------------------------------------- workloads
    def _elementwise_workload(
        self, name: str, layer_type: str, values: int, element_bytes: float,
        op_kind: OpKind = OpKind.FP32,
    ) -> LayerWorkload:
        kernel = KernelLaunch(
            name=f"{name}/{layer_type}",
            work_items=max(values, 1),
            ops_per_item=2,
            bytes_read_per_item=element_bytes,
            bytes_written_per_item=element_bytes,
            op_kind=op_kind,
            vector_width=4,
        )
        return LayerWorkload(layer_name=name, layer_type=layer_type, kernels=[kernel])

    def network_workloads(self, network: Network) -> List[LayerWorkload]:
        """Translate every layer of a network into kernel workloads."""
        workloads: List[LayerWorkload] = []
        packed_stream = False
        for layer, in_shape, out_shape in network.layer_shapes():
            if isinstance(layer, InputConv2d):
                geometry = ConvGeometry(
                    in_height=in_shape[0], in_width=in_shape[1],
                    in_channels=layer.in_channels, out_channels=layer.out_channels,
                    kernel_size=layer.kernel_size, stride=layer.stride,
                    padding=layer.padding,
                )
                workloads.append(
                    kern.phonebit_binary_conv_workload(
                        layer.name, geometry, word_size=self.word_size,
                        fused=self.fused, branchless=self.branchless,
                        input_bitplanes=layer.input_bits,
                        output_binary=layer.output_binary,
                    )
                )
                packed_stream = layer.output_binary
            elif isinstance(layer, BinaryConv2d):
                geometry = ConvGeometry(
                    in_height=in_shape[0], in_width=in_shape[1],
                    in_channels=layer.in_channels, out_channels=layer.out_channels,
                    kernel_size=layer.kernel_size, stride=layer.stride,
                    padding=layer.padding,
                )
                workloads.append(
                    kern.phonebit_binary_conv_workload(
                        layer.name, geometry, word_size=self.word_size,
                        fused=self.fused, branchless=self.branchless,
                        output_binary=layer.output_binary,
                    )
                )
                packed_stream = layer.output_binary
            elif isinstance(layer, FloatConv2d):
                geometry = ConvGeometry(
                    in_height=in_shape[0], in_width=in_shape[1],
                    in_channels=layer.in_channels, out_channels=layer.out_channels,
                    kernel_size=layer.kernel_size, stride=layer.stride,
                    padding=layer.padding,
                )
                workloads.append(kern.phonebit_float_conv_workload(layer.name, geometry))
                packed_stream = False
            elif isinstance(layer, (MaxPool2d, AvgPool2d)):
                padding = getattr(layer, "padding", 0)
                workloads.append(
                    kern.phonebit_pool_workload(
                        layer.name, in_shape[0], in_shape[1], in_shape[2],
                        layer.pool_size, layer.stride, padding,
                        packed=packed_stream and isinstance(layer, MaxPool2d),
                        word_size=self.word_size,
                    )
                )
            elif isinstance(layer, BinaryDense):
                workloads.append(
                    kern.phonebit_binary_dense_workload(
                        layer.name, layer.in_features, layer.out_features,
                        word_size=self.word_size,
                        output_binary=layer.output_binary,
                    )
                )
                packed_stream = layer.output_binary
            elif isinstance(layer, Dense):
                workloads.append(
                    kern.phonebit_float_dense_workload(
                        layer.name, layer.in_features, layer.out_features
                    )
                )
                packed_stream = False
            elif isinstance(layer, Binarize):
                values = int(np.prod(out_shape))
                workloads.append(
                    self._elementwise_workload(
                        layer.name, "binarize", values, 4.0, OpKind.BITWISE
                    )
                )
                packed_stream = True
            elif isinstance(layer, (BatchNorm2d, Relu, Softmax)):
                values = int(np.prod(out_shape))
                workloads.append(
                    self._elementwise_workload(layer.name, type(layer).__name__.lower(),
                                               values, 4.0)
                )
            elif isinstance(layer, Flatten):
                # Pure view change; PhoneBit performs it during the next
                # layer's indexing, so no kernel is emitted.
                continue
            else:
                raise TypeError(
                    f"engine does not know how to cost layer type {type(layer).__name__}"
                )
        return workloads

    # ----------------------------------------------------------- estimation
    def estimate(self, network: Network) -> InferenceReport:
        """Estimate one-image inference latency without executing the math."""
        workloads = self.network_workloads(network)
        run_cost = self.cost_model.run_cost(workloads)
        peak_activation = max((w.activation_bytes for w in workloads), default=0.0)
        weight_bytes = sum(w.weight_bytes for w in workloads)
        return InferenceReport(
            network_name=network.name,
            device_name=self.device.soc,
            latency_ms=run_cost.total_ms,
            layer_times_ms=run_cost.layer_times_ms(),
            run_cost=run_cost,
            peak_activation_bytes=peak_activation,
            weight_bytes=weight_bytes,
        )

    # ----------------------------------------------------------- execution
    def run(self, network: Network, batch: np.ndarray) -> InferenceReport:
        """Execute the network on a batch and attach the cost estimate.

        Examples
        --------
        >>> import numpy as np
        >>> from repro.core.engine import PhoneBitEngine
        >>> from repro.models.zoo import build_phonebit_network, micro_cnn_config
        >>> network = build_phonebit_network(micro_cnn_config())
        >>> engine = PhoneBitEngine()
        >>> batch = np.zeros((2, 8, 8, 3), dtype=np.uint8)
        >>> report = engine.run(network, batch)
        >>> report.output.data.shape   # one 10-class row per image
        (2, 10)
        >>> report.latency_ms > 0      # simulated on-device latency attached
        True
        """
        plan = self._plan_for(network)
        if plan is not None:
            x = network.coerce_input(batch)
            tuned = self._tuned_for(network, plan, int(x.data.shape[0]))
            threads, row_tile, col_tile = self._resolve_execution(tuned)
            output = plan.execute(
                x, threads=threads, row_tile=row_tile, col_tile=col_tile
            )
        else:
            output = network.forward(batch)
        report = self.estimate(network)
        report.output = output
        return report

    def _resolve_execution(self, tuned):
        """Fold a tuned record into (threads, row_tile, col_tile).

        Explicit settings outrank measurements: the engine's
        ``num_threads`` (the CLI's ``--threads``) and the
        ``REPRO_NUM_THREADS`` environment override both beat the tuned
        thread count; tile shapes have no explicit knob and come straight
        from the record.
        """
        threads = self.num_threads
        if tuned is None:
            return threads, None, None
        if threads is None and not os.environ.get("REPRO_NUM_THREADS", "").strip():
            threads = tuned.threads
        return threads, tuned.row_tile, tuned.col_tile

    def run_batch(
        self,
        network: Network,
        batch: np.ndarray,
        chunk_size: int | None = None,
        collect_estimate: bool = True,
        chunk_bytes: int | None = None,
        backend: str | None = None,
    ) -> BatchInferenceReport:
        """Execute a whole batch through the network in one vectorized pass.

        Unlike calling :meth:`run` once per image, this amortizes all
        per-call overhead across the batch: every layer kernel runs once on
        the full (or chunked) batch, per-layer wall-clock times and
        throughput are recorded, and the simulated cost estimate is computed
        a single time instead of once per image.

        This method is reentrant: it keeps all mutable state in locals, so
        concurrent callers (e.g. the serving scheduler's worker threads) may
        share one engine and one network as long as the network's weights
        are not mutated mid-flight — layer forward passes only *read* layer
        state, and the packed-weight caches tolerate concurrent lazy
        initialization.

        Examples
        --------
        >>> import numpy as np
        >>> from repro.core.engine import PhoneBitEngine
        >>> from repro.models.zoo import build_phonebit_network, micro_cnn_config
        >>> network = build_phonebit_network(micro_cnn_config())
        >>> engine = PhoneBitEngine()
        >>> batch = np.zeros((4, 8, 8, 3), dtype=np.uint8)
        >>> report = engine.run_batch(network, batch, collect_estimate=False)
        >>> report.output.data.shape
        (4, 10)
        >>> per_image = engine.run(network, batch[:1]).output.data[0]
        >>> bool(np.array_equal(report.output.data[0], per_image))
        True

        Parameters
        ----------
        network:
            The network to execute.
        batch:
            Input of shape ``(N,) + network.input_shape``.
        chunk_size:
            Optional explicit bound on how many images run through the layer
            stack at once.  When omitted, the working-set-aware heuristic
            below picks the chunk.  The final output buffer is allocated
            once and reused across chunks (chunk results are written in
            place, never concatenated).
        collect_estimate:
            When False, skip the simulated on-device cost estimate (the
            report's ``estimate`` is None).  The serving hot path disables
            it: the estimate depends only on the network, not the data, so
            recomputing it per micro-batch is pure overhead.
        chunk_bytes:
            Byte budget for the working-set-aware chunk heuristic
            (:meth:`auto_chunk_size`); defaults to the tuned per-host
            budget when one exists, then ``DEFAULT_CHUNK_BYTES``.  Ignored
            when ``chunk_size`` is given explicitly.
        backend:
            Per-call kernel backend override (a
            :data:`repro.core.backends.BACKEND_CHOICES` spec); ``None``
            keeps the engine's ``backend`` setting.
        """
        x = network.coerce_input(batch)
        n = int(x.data.shape[0])
        if n == 0:
            raise ValueError("run_batch needs a non-empty batch")
        if chunk_size is not None and chunk_size <= 0:
            raise ValueError("chunk_size must be positive")
        if chunk_bytes is not None and chunk_bytes <= 0:
            raise ValueError("chunk_bytes must be positive")
        plan = self._plan_for(network, backend)
        tuned = self._tuned_for(network, plan, n)
        threads, row_tile, col_tile = self._resolve_execution(tuned)
        if chunk_size is None:
            budget = chunk_bytes
            if budget is None and tuned is not None and tuned.chunk_bytes:
                budget = tuned.chunk_bytes
            if budget is None:
                budget = DEFAULT_CHUNK_BYTES
            auto = self.auto_chunk_size(network, n, budget, plan=plan)
            chunk_size = auto if auto < n else None

        # Report keys must be unique even when layers share a (default)
        # name, or duplicate layers would silently merge their timings;
        # repeats are disambiguated as "name#2", "name#3", ...
        layer_keys: List[str] = []
        name_counts: Dict[str, int] = {}
        for layer in network.layers:
            count = name_counts.get(layer.name, 0) + 1
            name_counts[layer.name] = count
            layer_keys.append(layer.name if count == 1 else f"{layer.name}#{count}")
        layer_wall: Dict[str, float] = {key: 0.0 for key in layer_keys}
        out_buffer: Optional[np.ndarray] = None
        out_template: Optional[Tensor] = None

        starts = range(0, n, chunk_size) if chunk_size else [0]
        t_total = time.perf_counter()
        for start in starts:
            stop = min(start + chunk_size, n) if chunk_size else n
            chunk = Tensor(
                x.data[start:stop], x.layout, x.packed, x.true_channels
            ) if (start, stop) != (0, n) else x
            if plan is not None:
                step_times: list = []
                current = plan.execute(
                    chunk, threads=threads, step_times=step_times,
                    row_tile=row_tile, col_tile=col_tile,
                )
                for step, seconds in step_times:
                    # A fused step may cover several layers (conv → BN →
                    # binarize); its wall clock is attributed to the first.
                    layer_wall[layer_keys[step.layer_start]] += seconds
            else:
                current = chunk
                t_layer = time.perf_counter()
                for key, (_, current) in zip(layer_keys, network.iter_forward(current)):
                    now = time.perf_counter()
                    layer_wall[key] += now - t_layer
                    t_layer = now
            if out_buffer is None:
                # First chunk sizes the reusable output buffer for the batch.
                out_shape = (n,) + current.data.shape[1:]
                out_buffer = np.empty(out_shape, dtype=current.data.dtype)
                out_template = current
            out_buffer[start:stop] = current.data
        wall_ms = (time.perf_counter() - t_total) * 1000.0

        output = Tensor(
            out_buffer,
            out_template.layout,
            out_template.packed,
            out_template.true_channels,
        )
        return BatchInferenceReport(
            network_name=network.name,
            device_name=self.device.soc,
            batch_size=n,
            wall_ms_total=wall_ms,
            layer_wall_ms={name: ms * 1000.0 for name, ms in layer_wall.items()},
            estimate=self.estimate(network) if collect_estimate else None,
            output=output,
        )


def split_batch_output(
    output: Tensor,
    sizes: "list[int] | tuple[int, ...]",
    copy: bool = False,
) -> List[Tensor]:
    """Split a batched output tensor back into per-request tensors.

    The serving executor concatenates several requests into one micro-batch;
    this undoes that concatenation.  ``sizes`` holds the number of leading
    rows each request contributed, and must sum to the batch dimension.

    With ``copy=False`` the returned tensors are zero-copy row views sharing
    the batch buffer — cheap, but any part kept alive pins the whole buffer.
    With ``copy=True`` each part owns its data, which is what the serving
    path uses: responses outlive the batch (response cache, client
    references) and must not alias one another.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.core.tensor import Layout, Tensor
    >>> batched = Tensor(np.arange(12).reshape(6, 2), Layout.NHWC)
    >>> parts = split_batch_output(batched, [2, 1, 3])
    >>> [p.data.shape[0] for p in parts]
    [2, 1, 3]
    >>> bool(parts[1].data[0, 0] == batched.data[2, 0])
    True
    """
    sizes = [int(s) for s in sizes]
    if any(s <= 0 for s in sizes):
        raise ValueError("every request must contribute at least one row")
    n = int(output.data.shape[0])
    if sum(sizes) != n:
        raise ValueError(
            f"request sizes sum to {sum(sizes)} but the batch has {n} rows"
        )
    parts: List[Tensor] = []
    start = 0
    for size in sizes:
        rows = output.data[start:start + size]
        parts.append(
            Tensor(
                rows.copy() if copy else rows,
                output.layout,
                output.packed,
                output.true_channels,
            )
        )
        start += size
    return parts
