"""Tensor layout utilities.

PhoneBit stores activations in NHWC ("row-major order with interleaved
channels", Sec. V-A1) so that channel-wise bit packing and coalesced memory
access both happen along the innermost dimension.  Mainstream frameworks
(Caffe, Torch) default to NCHW; the converter therefore needs cheap and
explicit layout conversion.

The :class:`Tensor` wrapper is intentionally thin: it carries a NumPy array,
a :class:`Layout` tag and (for packed binary tensors) the true channel count
before word padding.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np


class Layout(enum.Enum):
    """Memory layout of a 4-D activation tensor."""

    NHWC = "NHWC"
    NCHW = "NCHW"

    @property
    def channel_axis(self) -> int:
        """Axis index that holds the channel dimension."""
        return 3 if self is Layout.NHWC else 1


def nchw_to_nhwc(array: np.ndarray) -> np.ndarray:
    """Transpose a 4-D NCHW array to NHWC."""
    if array.ndim != 4:
        raise ValueError(f"expected a 4-D tensor, got shape {array.shape}")
    return np.ascontiguousarray(np.transpose(array, (0, 2, 3, 1)))


def nhwc_to_nchw(array: np.ndarray) -> np.ndarray:
    """Transpose a 4-D NHWC array to NCHW."""
    if array.ndim != 4:
        raise ValueError(f"expected a 4-D tensor, got shape {array.shape}")
    return np.ascontiguousarray(np.transpose(array, (0, 3, 1, 2)))


def convert_layout(array: np.ndarray, src: Layout, dst: Layout) -> np.ndarray:
    """Convert ``array`` from layout ``src`` to layout ``dst``."""
    if src is dst:
        return array
    if src is Layout.NCHW and dst is Layout.NHWC:
        return nchw_to_nhwc(array)
    return nhwc_to_nchw(array)


@dataclass
class Tensor:
    """A NumPy array tagged with its layout.

    Parameters
    ----------
    data:
        The underlying array.  4-D activation tensors follow ``layout``;
        other ranks (e.g. flattened dense activations) ignore it.
    layout:
        Memory layout of ``data`` when 4-D.
    packed:
        True when the channel dimension holds packed binary words rather
        than individual values.
    true_channels:
        Number of valid channels before word padding (only meaningful when
        ``packed`` is True).
    """

    data: np.ndarray
    layout: Layout = Layout.NHWC
    packed: bool = False
    true_channels: int = field(default=0)

    def __post_init__(self) -> None:
        self.data = np.asarray(self.data)
        if self.packed and self.true_channels <= 0:
            raise ValueError("packed tensors must record their true channel count")

    @property
    def shape(self) -> tuple:
        return tuple(self.data.shape)

    @property
    def dtype(self) -> np.dtype:
        return self.data.dtype

    @property
    def nbytes(self) -> int:
        """Bytes occupied by the payload."""
        return int(self.data.nbytes)

    @property
    def channels(self) -> int:
        """Logical channel count (unpadded for packed tensors)."""
        if self.packed:
            return self.true_channels
        if self.data.ndim == 4:
            return int(self.data.shape[self.layout.channel_axis])
        return int(self.data.shape[-1])

    def to_layout(self, layout: Layout) -> "Tensor":
        """Return a copy of this tensor converted to ``layout``."""
        if self.data.ndim != 4 or layout is self.layout:
            return Tensor(self.data, layout, self.packed, self.true_channels)
        converted = convert_layout(self.data, self.layout, layout)
        return Tensor(converted, layout, self.packed, self.true_channels)

    def numpy(self) -> np.ndarray:
        """Return the underlying array."""
        return self.data


def pad_spatial_nhwc(array: np.ndarray, padding: int, value: float = 0.0) -> np.ndarray:
    """Zero-pad (or constant-pad) the H and W dimensions of an NHWC array."""
    if padding < 0:
        raise ValueError("padding must be non-negative")
    if padding == 0:
        return array
    pad_width = ((0, 0), (padding, padding), (padding, padding), (0, 0))
    return np.pad(array, pad_width, mode="constant", constant_values=value)


def conv_output_size(size: int, kernel: int, stride: int, padding: int) -> int:
    """Spatial output size of a convolution/pooling window."""
    if size + 2 * padding < kernel:
        raise ValueError(
            f"window of size {kernel} does not fit input of size {size} "
            f"with padding {padding}"
        )
    return (size + 2 * padding - kernel) // stride + 1
