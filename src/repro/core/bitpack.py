"""Channel-dimension bit packing and packed binary arithmetic.

PhoneBit packs the bits of binarized activations and weights along the
channel dimension into machine words (``uchar`` .. ``ulong`` and the OpenCL
vector types built on top of them, Sec. V-A2).  A binary dot product between
two packed vectors then reduces to ``xor`` + ``popcount`` (Eqn. 1):

    a · b = Len − 2 · popcount(xor(a, b))

where bit ``1`` encodes the value ``+1`` and bit ``0`` encodes ``−1`` and
``Len`` is the *unpadded* vector length.  Channel counts that are not a
multiple of the word size are zero-padded; because both operands share the
padding, the padded bits xor to zero and never perturb the popcount.

The first network layer receives 8-bit integer inputs rather than ±1 values.
Its bit-planes are unipolar ({0, 1}); the dot product of a unipolar vector
``x`` with a bipolar vector ``w`` uses ``and`` instead of ``xor``:

    x · w = 2 · popcount(and(x, w)) − popcount(x)

Popcount dispatch (the OpenCL kernels use the native ``popcount`` builtin):

* ``np.bitwise_count`` — the hardware popcount ufunc, used whenever the
  installed NumPy provides it (NumPy ≥ 2.0).
* :func:`popcount_swar` — a branch-free SWAR fallback that stays in-register
  (shift/mask arithmetic in the word's own dtype, no byte expansion).
* :func:`popcount_lut` — the original 256-entry byte-LUT gather, kept as the
  naive reference the micro-benchmarks compare against.

The tiled GEMM entry points :func:`xor_popcount_gemm` and
:func:`and_popcount_gemm` evaluate all-pairs packed dot products with
bounded working-set temporaries; they are the building blocks of the
convolution and dense kernels.
"""

from __future__ import annotations

import numpy as np

#: Word widths supported by the packing kernels, mirroring the OpenCL scalar
#: types used by PhoneBit (uchar, ushort, uint, ulong).
SUPPORTED_WORD_SIZES = (8, 16, 32, 64)

_WORD_DTYPES = {
    8: np.uint8,
    16: np.uint16,
    32: np.uint32,
    64: np.uint64,
}

#: Little-endian dtypes used to (re)interpret packed byte streams as words,
#: so the "bit i of the word holds element i" layout is platform independent.
_LE_WORD_DTYPES = {size: np.dtype(f"<u{size // 8}") for size in SUPPORTED_WORD_SIZES}

#: Whether the installed NumPy exposes the hardware popcount ufunc.
HAS_BITWISE_COUNT = hasattr(np, "bitwise_count")

#: Per-byte popcount lookup table backing :func:`popcount_lut`.
_POPCOUNT_TABLE = np.array(
    [bin(i).count("1") for i in range(256)], dtype=np.uint8
)

#: SWAR constants per word width: (mask_1, mask_2, mask_4, ones_replicated,
#: final_shift).  The classic branch-free popcount: pairwise bit sums, then
#: nibble sums, then a multiply that accumulates all byte counts into the
#: top byte.
_SWAR_CONSTANTS = {
    8: (0x55, 0x33, 0x0F, 0x01, 0),
    16: (0x5555, 0x3333, 0x0F0F, 0x0101, 8),
    32: (0x55555555, 0x33333333, 0x0F0F0F0F, 0x01010101, 24),
    64: (
        0x5555555555555555,
        0x3333333333333333,
        0x0F0F0F0F0F0F0F0F,
        0x0101010101010101,
        56,
    ),
}

#: Tile sizes for the all-pairs popcount GEMMs.  The working set of one tile
#: is ``ROW_TILE × COL_TILE × n_words`` words regardless of problem size;
#: 128 rows keeps the broadcast xor/popcount temporaries L2-resident, which
#: measures ~20% faster than 512-row tiles on the development container.
_GEMM_ROW_TILE = 128
_GEMM_COL_TILE = 64


def word_dtype(word_size: int) -> np.dtype:
    """Return the NumPy dtype backing a packing word of ``word_size`` bits."""
    try:
        return np.dtype(_WORD_DTYPES[word_size])
    except KeyError:
        raise ValueError(
            f"unsupported word size {word_size}; expected one of {SUPPORTED_WORD_SIZES}"
        ) from None


def words_per_channel(channels: int, word_size: int) -> int:
    """Number of packing words needed to hold ``channels`` bits.

    Examples
    --------
    >>> words_per_channel(64, 64)
    1
    >>> words_per_channel(65, 64)   # padding rounds the last word up
    2
    >>> words_per_channel(3, 8)
    1
    """
    if channels <= 0:
        raise ValueError("channel count must be positive")
    word_dtype(word_size)
    return (channels + word_size - 1) // word_size


def pack_bits(bits: np.ndarray, word_size: int = 64, axis: int = -1) -> np.ndarray:
    """Pack an array of {0, 1} bits along ``axis`` into unsigned words.

    Bits are packed little-endian within each word (bit ``i`` of the word
    holds element ``i`` of the group), and the axis is zero-padded up to a
    multiple of ``word_size``.  Implemented as one ``np.packbits`` pass plus
    a little-endian dtype view, so no 64-wide shift/sum temporaries are
    materialized.

    Parameters
    ----------
    bits:
        Array whose values are 0 or 1 (any integer or boolean dtype).
    word_size:
        Packing word width in bits (8, 16, 32 or 64).
    axis:
        Axis along which to pack (the channel axis for NHWC tensors).

    Returns
    -------
    numpy.ndarray
        Array with the packed axis reduced by a factor of ``word_size``
        (rounded up), of dtype ``uint{word_size}``.

    Examples
    --------
    Bit ``i`` of each word holds element ``i`` of its group (little-endian):

    >>> import numpy as np
    >>> pack_bits(np.array([1, 0, 1, 1]), word_size=8)
    array([13], dtype=uint8)
    >>> packed = pack_bits(np.ones((2, 70), dtype=np.uint8), word_size=64)
    >>> packed.shape   # 70 bits -> 2 little-endian uint64 words per row
    (2, 2)
    """
    bits = np.asarray(bits)
    if bits.size and bits.dtype != np.bool_ and (bits.min() < 0 or bits.max() > 1):
        raise ValueError("pack_bits expects an array of 0/1 values")
    return _pack01(bits, word_size, axis)


def _pack01(bits: np.ndarray, word_size: int, axis: int) -> np.ndarray:
    """Pack already-validated {0, 1} bits (the hot-path core of :func:`pack_bits`).

    The fused plan kernels produce boolean comparison results that are 0/1
    by construction, so they skip :func:`pack_bits`'s min/max validation
    pass over the full array.
    """
    dtype = word_dtype(word_size)
    bits = np.moveaxis(np.asarray(bits), axis, -1)
    length = bits.shape[-1]
    n_words = words_per_channel(length, word_size)
    bytes_per_word = word_size // 8
    if bits.dtype != np.bool_:
        bits = bits.astype(np.uint8, copy=False)
    packed8 = np.packbits(bits, axis=-1, bitorder="little")
    padded_bytes = n_words * bytes_per_word
    if packed8.shape[-1] != padded_bytes:
        pad = np.zeros(
            packed8.shape[:-1] + (padded_bytes - packed8.shape[-1],), dtype=np.uint8
        )
        packed8 = np.concatenate([packed8, pad], axis=-1)
    packed8 = np.ascontiguousarray(packed8)
    words = packed8.view(_LE_WORD_DTYPES[word_size]).astype(dtype, copy=False)
    return np.ascontiguousarray(np.moveaxis(words, -1, axis))


def unpack_bits(packed: np.ndarray, length: int, axis: int = -1) -> np.ndarray:
    """Inverse of :func:`pack_bits`.

    Parameters
    ----------
    packed:
        Packed word array produced by :func:`pack_bits`.
    length:
        True (unpadded) number of bits to recover along ``axis``.
    axis:
        Axis holding the packed words.

    Examples
    --------
    >>> import numpy as np
    >>> bits = np.array([[1, 0, 1], [0, 1, 1]], dtype=np.uint8)
    >>> restored = unpack_bits(pack_bits(bits, word_size=8), 3)
    >>> np.array_equal(bits, restored)
    True
    """
    packed = np.asarray(packed)
    word_size = packed.dtype.itemsize * 8
    word_dtype(word_size)
    moved = np.ascontiguousarray(np.moveaxis(packed, axis, -1))
    as_bytes = moved.astype(_LE_WORD_DTYPES[word_size], copy=False).view(np.uint8)
    bits = np.unpackbits(as_bytes, axis=-1, bitorder="little", count=length)
    return np.ascontiguousarray(np.moveaxis(bits, -1, axis))


def popcount_lut(words: np.ndarray) -> np.ndarray:
    """Byte-LUT popcount — the naive reference implementation.

    Expands every word into its bytes and gathers a 256-entry table; kept
    for cross-checking and as the baseline the micro-benchmarks measure the
    fast paths against.
    """
    words = np.asarray(words)
    if words.dtype.kind != "u":
        raise ValueError("popcount expects an unsigned integer array")
    contiguous = np.ascontiguousarray(words)
    as_bytes = contiguous.view(np.uint8).reshape(words.shape + (words.dtype.itemsize,))
    return _POPCOUNT_TABLE[as_bytes].sum(axis=-1, dtype=np.int64)


def popcount_swar(words: np.ndarray) -> np.ndarray:
    """Branch-free SWAR popcount in the array's own word width.

    Pure shift/mask arithmetic (no LUT gather, no byte expansion): pairwise
    bit sums, nibble sums, then a replicated-ones multiply that accumulates
    the byte counts into the top byte.  Returns the same shape with the
    input's dtype (each count fits easily: ≤ 64).

    Examples
    --------
    >>> import numpy as np
    >>> int(popcount_swar(np.array([0xFF], dtype=np.uint8))[0])
    8
    >>> int(popcount_swar(np.array([0xF0F0F0F0], dtype=np.uint32))[0])
    16
    """
    words = np.asarray(words)
    if words.dtype.kind != "u":
        raise ValueError("popcount expects an unsigned integer array")
    width = words.dtype.itemsize * 8
    m1, m2, m4, ones, shift = _SWAR_CONSTANTS[width]
    t = words.dtype.type
    x = words.copy()
    x -= (x >> t(1)) & t(m1)
    x = (x & t(m2)) + ((x >> t(2)) & t(m2))
    x = (x + (x >> t(4))) & t(m4)
    if shift:
        x = (x * t(ones)) >> t(shift)
    return x


if HAS_BITWISE_COUNT:

    def popcount_words(words: np.ndarray) -> np.ndarray:
        """Per-element popcount in a narrow dtype (no int64 widening)."""
        words = np.asarray(words)
        if words.dtype.kind != "u":
            raise ValueError("popcount expects an unsigned integer array")
        return np.bitwise_count(words)

else:  # pragma: no cover - exercised only on NumPy < 2.0

    popcount_words = popcount_swar


def popcount(words: np.ndarray) -> np.ndarray:
    """Per-element population count of an unsigned integer array (int64).

    Dispatches to ``np.bitwise_count`` when available (NumPy ≥ 2), else the
    SWAR fallback — both bit-exact with :func:`popcount_lut`.

    Examples
    --------
    >>> import numpy as np
    >>> popcount(np.array([0, 1, 255], dtype=np.uint8))
    array([0, 1, 8])
    """
    return popcount_words(words).astype(np.int64)


def _reduce_counts(counts: np.ndarray, dtype) -> np.ndarray:
    """Sum a ``(rows, cols, n_words)`` popcount tile over its word axis.

    ``np.einsum`` compiles to a specialized SIMD reduction that measures
    ~5× faster than ``ndarray.sum`` over this short trailing axis; the
    explicit ``dtype`` widens the per-word counts before accumulation.
    ``casting="unsafe"`` admits the SWAR fallback's unsigned counts (each
    is at most the word width, so the signed cast cannot lose anything).
    """
    return np.einsum("ijk->ij", counts, dtype=dtype, casting="unsafe")


def _popcount_gemm(a, b, op, out):
    """Shared tiling/validation for the all-pairs popcount reductions."""
    a = np.ascontiguousarray(a)
    b = np.ascontiguousarray(b)
    if a.ndim != 2 or b.ndim != 2:
        raise ValueError("popcount GEMM expects 2-D packed matrices")
    if a.dtype != b.dtype:
        raise ValueError("operands must share the same packed dtype")
    if a.shape[1] != b.shape[1]:
        raise ValueError("operand packing widths do not match")
    rows, cols = a.shape[0], b.shape[0]
    if out is None:
        out = np.empty((rows, cols), dtype=np.int64)
    for i0 in range(0, rows, _GEMM_ROW_TILE):
        i1 = min(i0 + _GEMM_ROW_TILE, rows)
        a_tile = a[i0:i1, None, :]
        for j0 in range(0, cols, _GEMM_COL_TILE):
            j1 = min(j0 + _GEMM_COL_TILE, cols)
            x = op(a_tile, b[None, j0:j1, :])
            out[i0:i1, j0:j1] = _reduce_counts(popcount_words(x), np.int64)
    return out


def xor_popcount_gemm(
    a: np.ndarray, b: np.ndarray, out: np.ndarray | None = None
) -> np.ndarray:
    """All-pairs xor/popcount reduction: ``out[i, j] = Σ_k popc(a[i,k]^b[j,k])``.

    ``a`` has shape ``(rows, n_words)``, ``b`` has shape ``(cols, n_words)``.
    The computation is tiled over both rows and columns so the broadcast
    xor/popcount temporaries stay at ``ROW_TILE × COL_TILE × n_words`` words
    no matter how large the operands are.

    Examples
    --------
    A packed ±1 dot product is ``Len − 2 · disagreements`` (Eqn. 1):

    >>> import numpy as np
    >>> a = pack_bits(np.array([[1, 1, 0, 0]]), word_size=8)  # + + - -
    >>> b = pack_bits(np.array([[1, 0, 0, 1]]), word_size=8)  # + - - +
    >>> disagree = xor_popcount_gemm(a, b)
    >>> int(4 - 2 * disagree[0, 0])   # two agreements, two disagreements
    0
    """
    return _popcount_gemm(a, b, np.bitwise_xor, out)


def and_popcount_gemm(
    a: np.ndarray, b: np.ndarray, out: np.ndarray | None = None
) -> np.ndarray:
    """All-pairs and/popcount reduction: ``out[i, j] = Σ_k popc(a[i,k]&b[j,k])``.

    Same tiling as :func:`xor_popcount_gemm`; used by the unipolar
    (bit-plane) dot product of Eqn. (2).
    """
    return _popcount_gemm(a, b, np.bitwise_and, out)


def fused_xor_threshold_rows(
    a: np.ndarray,
    b: np.ndarray,
    acc_threshold: np.ndarray,
    flip: np.ndarray,
    out_words: np.ndarray,
    row_start: int,
    row_stop: int,
    word_size: int,
    col_tile: int | None = None,
) -> None:
    """Fused xor-popcount GEMM tile → accumulator threshold → packed bits.

    For rows ``[row_start, row_stop)`` of the packed operand ``a`` (shape
    ``(rows, n_words)``) against all of ``b`` (shape ``(cols, n_words)``)::

        bit[i, j] = (Σ_k popc(a[i, k] ^ b[j, k]) <= acc_threshold[j]) ^ flip[j]

    packed little-endian along ``j`` into ``out_words[row_start:row_stop]``.
    The threshold test runs directly on the xor/popcount *accumulator*
    (the disagreement count), so the ±1 pre-activation ``x1 = Len − 2·d``
    is never materialized — the execution plan folds the Eqn. (5–8) fused
    threshold ξ into the accumulator domain at compile time.

    The per-call working set is ``(rows_in_tile × col_tile × n_words)``
    words plus one boolean tile; disjoint row ranges touch disjoint output
    rows, which is what makes the plan executor's thread fan-out safe.
    ``col_tile`` (default :data:`_GEMM_COL_TILE`) bounds the filter block
    per inner iteration — a tuning knob that never changes results.
    """
    cols = b.shape[0]
    tile = _GEMM_COL_TILE if col_tile is None else max(1, int(col_tile))
    rows = a[row_start:row_stop]
    bits = np.empty((rows.shape[0], cols), dtype=np.bool_)
    for j0 in range(0, cols, tile):
        j1 = min(j0 + tile, cols)
        x = np.bitwise_xor(rows[:, None, :], b[None, j0:j1, :])
        # int32 accumulation: a disagreement count is at most the kernel
        # volume, so the narrow accumulator halves the reduction's memory
        # traffic relative to the generic int64 GEMM.
        d = _reduce_counts(popcount_words(x), np.int32)
        np.less_equal(d, acc_threshold[j0:j1], out=bits[:, j0:j1])
    np.logical_xor(bits, flip, out=bits)
    out_words[row_start:row_stop] = _pack01(bits, word_size, axis=1)


def threshold_pack_rows(
    x1: np.ndarray,
    threshold: np.ndarray,
    flip: np.ndarray,
    out_words: np.ndarray,
    row_start: int,
    row_stop: int,
    word_size: int,
) -> None:
    """Integer threshold + bit pack for rows of a pre-activation matrix.

    ``bit[i, j] = (x1[i, j] >= threshold[j]) ^ flip[j]``, packed along ``j``
    into ``out_words[row_start:row_stop]``.  Used by the plan executor for
    the bit-plane input convolution, whose multi-plane accumulation already
    materialized ``x1`` — the comparison stays in the integer domain instead
    of round-tripping through float64 as the layerwise path does.
    """
    rows = x1[row_start:row_stop]
    bits = rows >= threshold
    np.logical_xor(bits, flip, out=bits)
    out_words[row_start:row_stop] = _pack01(bits, word_size, axis=1)


def packed_xor_popcount(a: np.ndarray, b: np.ndarray, axis: int = -1) -> np.ndarray:
    """Sum of ``popcount(xor(a, b))`` along ``axis``."""
    a = np.asarray(a)
    b = np.asarray(b)
    if a.dtype != b.dtype:
        raise ValueError("operands must share the same packed dtype")
    return popcount_words(np.bitwise_xor(a, b)).sum(axis=axis, dtype=np.int64)


def packed_dot_bipolar(a: np.ndarray, b: np.ndarray, length: int, axis: int = -1) -> np.ndarray:
    """Binary (±1) dot product of two packed bit vectors — Eqn. (1).

    Parameters
    ----------
    a, b:
        Packed words with identical shapes and dtypes, where bit 1 encodes
        +1 and bit 0 encodes −1.
    length:
        True (unpadded) vector length ``Len``.
    axis:
        Axis along which the packed words of a single vector lie.
    """
    disagree = packed_xor_popcount(a, b, axis=axis)
    return length - 2 * disagree


def packed_dot_unipolar(x: np.ndarray, w: np.ndarray, axis: int = -1) -> np.ndarray:
    """Dot product of a unipolar ({0,1}) packed vector with a bipolar one.

    Used by the first-layer bit-plane convolution (Eqn. 2): ``x`` holds a
    bit-plane of the 8-bit input, ``w`` holds ±1 weights packed as bits.

        x · w = 2 · popcount(and(x, w)) − popcount(x)
    """
    x = np.asarray(x)
    w = np.asarray(w)
    if x.dtype != w.dtype:
        raise ValueError("operands must share the same packed dtype")
    overlap = popcount_words(np.bitwise_and(x, w)).sum(axis=axis, dtype=np.int64)
    ones = popcount_words(x).sum(axis=axis, dtype=np.int64)
    return 2 * overlap - ones


def select_word_size(channels: int, preferred: int = 64) -> int:
    """Pick the packing word width for a given channel count.

    PhoneBit "selects the optimal bit packing strategy and computing kernel
    according to channel dimensions" (Sec. V-A2): small channel counts use
    narrow words to avoid wasting padding bits, larger ones use the widest
    supported word.
    """
    if channels <= 0:
        raise ValueError("channel count must be positive")
    word_dtype(preferred)
    for size in SUPPORTED_WORD_SIZES:
        if size > preferred:
            break
        if channels <= size:
            return size
    return preferred


def packing_efficiency(channels: int, word_size: int) -> float:
    """Fraction of packed bits that carry real channel data (1.0 = no waste)."""
    n_words = words_per_channel(channels, word_size)
    return channels / float(n_words * word_size)
