"""Channel-dimension bit packing and packed binary arithmetic.

PhoneBit packs the bits of binarized activations and weights along the
channel dimension into machine words (``uchar`` .. ``ulong`` and the OpenCL
vector types built on top of them, Sec. V-A2).  A binary dot product between
two packed vectors then reduces to ``xor`` + ``popcount`` (Eqn. 1):

    a · b = Len − 2 · popcount(xor(a, b))

where bit ``1`` encodes the value ``+1`` and bit ``0`` encodes ``−1`` and
``Len`` is the *unpadded* vector length.  Channel counts that are not a
multiple of the word size are zero-padded; because both operands share the
padding, the padded bits xor to zero and never perturb the popcount.

The first network layer receives 8-bit integer inputs rather than ±1 values.
Its bit-planes are unipolar ({0, 1}); the dot product of a unipolar vector
``x`` with a bipolar vector ``w`` uses ``and`` instead of ``xor``:

    x · w = 2 · popcount(and(x, w)) − popcount(x)

Both primitives are provided here, together with a vectorized SWAR popcount
that works on any unsigned word width.
"""

from __future__ import annotations

import numpy as np

#: Word widths supported by the packing kernels, mirroring the OpenCL scalar
#: types used by PhoneBit (uchar, ushort, uint, ulong).
SUPPORTED_WORD_SIZES = (8, 16, 32, 64)

_WORD_DTYPES = {
    8: np.uint8,
    16: np.uint16,
    32: np.uint32,
    64: np.uint64,
}

#: Per-byte popcount lookup table (the OpenCL kernels use the native
#: ``popcount`` builtin; a 256-entry LUT is the NumPy equivalent).
_POPCOUNT_TABLE = np.array(
    [bin(i).count("1") for i in range(256)], dtype=np.uint8
)


def word_dtype(word_size: int) -> np.dtype:
    """Return the NumPy dtype backing a packing word of ``word_size`` bits."""
    try:
        return np.dtype(_WORD_DTYPES[word_size])
    except KeyError:
        raise ValueError(
            f"unsupported word size {word_size}; expected one of {SUPPORTED_WORD_SIZES}"
        ) from None


def words_per_channel(channels: int, word_size: int) -> int:
    """Number of packing words needed to hold ``channels`` bits."""
    if channels <= 0:
        raise ValueError("channel count must be positive")
    word_dtype(word_size)
    return (channels + word_size - 1) // word_size


def pack_bits(bits: np.ndarray, word_size: int = 64, axis: int = -1) -> np.ndarray:
    """Pack an array of {0, 1} bits along ``axis`` into unsigned words.

    Bits are packed little-endian within each word (bit ``i`` of the word
    holds element ``i`` of the group), and the axis is zero-padded up to a
    multiple of ``word_size``.

    Parameters
    ----------
    bits:
        Array whose values are 0 or 1 (any integer or boolean dtype).
    word_size:
        Packing word width in bits (8, 16, 32 or 64).
    axis:
        Axis along which to pack (the channel axis for NHWC tensors).

    Returns
    -------
    numpy.ndarray
        Array with the packed axis reduced by a factor of ``word_size``
        (rounded up), of dtype ``uint{word_size}``.
    """
    dtype = word_dtype(word_size)
    bits = np.asarray(bits)
    if bits.size and (bits.min() < 0 or bits.max() > 1):
        raise ValueError("pack_bits expects an array of 0/1 values")
    bits = np.moveaxis(bits, axis, -1)
    length = bits.shape[-1]
    n_words = words_per_channel(length, word_size)
    padded_len = n_words * word_size
    if padded_len != length:
        pad = np.zeros(bits.shape[:-1] + (padded_len - length,), dtype=bits.dtype)
        bits = np.concatenate([bits, pad], axis=-1)
    grouped = bits.reshape(bits.shape[:-1] + (n_words, word_size)).astype(np.uint64)
    shifts = np.arange(word_size, dtype=np.uint64)
    packed = (grouped << shifts).sum(axis=-1, dtype=np.uint64).astype(dtype)
    return np.ascontiguousarray(np.moveaxis(packed, -1, axis))


def unpack_bits(packed: np.ndarray, length: int, axis: int = -1) -> np.ndarray:
    """Inverse of :func:`pack_bits`.

    Parameters
    ----------
    packed:
        Packed word array produced by :func:`pack_bits`.
    length:
        True (unpadded) number of bits to recover along ``axis``.
    axis:
        Axis holding the packed words.
    """
    packed = np.asarray(packed)
    word_size = packed.dtype.itemsize * 8
    word_dtype(word_size)
    moved = np.moveaxis(packed, axis, -1).astype(np.uint64)
    shifts = np.arange(word_size, dtype=np.uint64)
    bits = (moved[..., None] >> shifts) & np.uint64(1)
    bits = bits.reshape(moved.shape[:-1] + (moved.shape[-1] * word_size,))
    bits = bits[..., :length].astype(np.uint8)
    return np.ascontiguousarray(np.moveaxis(bits, -1, axis))


def popcount(words: np.ndarray) -> np.ndarray:
    """Per-element population count of an unsigned integer array."""
    words = np.asarray(words)
    if words.dtype.kind != "u":
        raise ValueError("popcount expects an unsigned integer array")
    contiguous = np.ascontiguousarray(words)
    as_bytes = contiguous.view(np.uint8).reshape(words.shape + (words.dtype.itemsize,))
    return _POPCOUNT_TABLE[as_bytes].sum(axis=-1, dtype=np.int64)


def packed_xor_popcount(a: np.ndarray, b: np.ndarray, axis: int = -1) -> np.ndarray:
    """Sum of ``popcount(xor(a, b))`` along ``axis``."""
    a = np.asarray(a)
    b = np.asarray(b)
    if a.dtype != b.dtype:
        raise ValueError("operands must share the same packed dtype")
    return popcount(np.bitwise_xor(a, b)).sum(axis=axis, dtype=np.int64)


def packed_dot_bipolar(a: np.ndarray, b: np.ndarray, length: int, axis: int = -1) -> np.ndarray:
    """Binary (±1) dot product of two packed bit vectors — Eqn. (1).

    Parameters
    ----------
    a, b:
        Packed words with identical shapes and dtypes, where bit 1 encodes
        +1 and bit 0 encodes −1.
    length:
        True (unpadded) vector length ``Len``.
    axis:
        Axis along which the packed words of a single vector lie.
    """
    disagree = packed_xor_popcount(a, b, axis=axis)
    return length - 2 * disagree


def packed_dot_unipolar(x: np.ndarray, w: np.ndarray, axis: int = -1) -> np.ndarray:
    """Dot product of a unipolar ({0,1}) packed vector with a bipolar one.

    Used by the first-layer bit-plane convolution (Eqn. 2): ``x`` holds a
    bit-plane of the 8-bit input, ``w`` holds ±1 weights packed as bits.

        x · w = 2 · popcount(and(x, w)) − popcount(x)
    """
    x = np.asarray(x)
    w = np.asarray(w)
    if x.dtype != w.dtype:
        raise ValueError("operands must share the same packed dtype")
    overlap = popcount(np.bitwise_and(x, w)).sum(axis=axis, dtype=np.int64)
    ones = popcount(x).sum(axis=axis, dtype=np.int64)
    return 2 * overlap - ones


def select_word_size(channels: int, preferred: int = 64) -> int:
    """Pick the packing word width for a given channel count.

    PhoneBit "selects the optimal bit packing strategy and computing kernel
    according to channel dimensions" (Sec. V-A2): small channel counts use
    narrow words to avoid wasting padding bits, larger ones use the widest
    supported word.
    """
    if channels <= 0:
        raise ValueError("channel count must be positive")
    word_dtype(preferred)
    for size in SUPPORTED_WORD_SIZES:
        if size > preferred:
            break
        if channels <= size:
            return size
    return preferred


def packing_efficiency(channels: int, word_size: int) -> float:
    """Fraction of packed bits that carry real channel data (1.0 = no waste)."""
    n_words = words_per_channel(channels, word_size)
    return channels / float(n_words * word_size)
