"""Sign binarization and bit-plane decomposition.

Binarization follows Eqn. (7) of the paper: a value maps to bit 1 (meaning
+1) when it is greater than or equal to zero and to bit 0 (meaning −1)
otherwise.

The first convolution layer receives 8-bit integer images instead of ±1
activations.  Following Sec. III-B the input ``I`` is split into bit-planes
``I_n`` so that

    s = Σ_{n=1..8} 2^{n−1} · <I_n · W>            (Eqn. 2)

where ``<·>`` is a binary convolution between a unipolar bit-plane and the
±1 weights.
"""

from __future__ import annotations

import numpy as np


def binarize_sign(values: np.ndarray) -> np.ndarray:
    """Binarize values to bits: 1 where ``value >= 0``, else 0 (Eqn. 7)."""
    return (np.asarray(values) >= 0).astype(np.uint8)


def bits_to_values(bits: np.ndarray, dtype=np.float32) -> np.ndarray:
    """Map bits back to ±1 values (bit 1 → +1, bit 0 → −1)."""
    bits = np.asarray(bits)
    if bits.size and (bits.min() < 0 or bits.max() > 1):
        raise ValueError("expected an array of 0/1 bits")
    return (2 * bits.astype(np.int8) - 1).astype(dtype)


def values_to_bits(values: np.ndarray) -> np.ndarray:
    """Map ±1 values to bits, validating that only ±1 occurs."""
    values = np.asarray(values)
    if values.size and not np.all(np.isin(values, (-1, 1))):
        raise ValueError("expected an array of ±1 values")
    return (values > 0).astype(np.uint8)


def split_bitplanes(image: np.ndarray, bits: int = 8) -> np.ndarray:
    """Split an unsigned integer image into its bit-planes.

    Parameters
    ----------
    image:
        Array of non-negative integers representable in ``bits`` bits
        (typically a uint8 NHWC image).
    bits:
        Number of planes to extract.

    Returns
    -------
    numpy.ndarray
        Array of shape ``(bits,) + image.shape`` and dtype uint8 where plane
        ``n`` (0-based) holds bit ``n`` of every pixel, i.e. the plane with
        weight ``2**n`` in Eqn. (2).
    """
    image = np.asarray(image)
    if image.dtype.kind not in "ui":
        raise ValueError("bit-plane splitting requires an integer image")
    if image.size and image.min() < 0:
        raise ValueError("bit-plane splitting requires non-negative values")
    if image.size and image.max() >= (1 << bits):
        raise ValueError(f"image values do not fit in {bits} bits")
    planes = [((image >> n) & 1).astype(np.uint8) for n in range(bits)]
    return np.stack(planes, axis=0)


def combine_bitplanes(planes: np.ndarray) -> np.ndarray:
    """Inverse of :func:`split_bitplanes`; returns an int32 image."""
    planes = np.asarray(planes)
    weights = (1 << np.arange(planes.shape[0], dtype=np.int64))
    shaped = weights.reshape((-1,) + (1,) * (planes.ndim - 1))
    return (planes.astype(np.int64) * shaped).sum(axis=0).astype(np.int32)


def bitplane_weights(bits: int = 8) -> np.ndarray:
    """Per-plane weights ``2**n`` used when recombining bit-plane convolutions."""
    return (1 << np.arange(bits, dtype=np.int64)).astype(np.int64)
