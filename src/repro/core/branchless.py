"""Branch-divergence-free binarization (Sec. VI-C, Eqn. 9).

Wavefronts on mobile GPUs serialize divergent branches, so the four-way
comparison of Eqn. (8) is expensive.  The paper builds the truth table of
Eqn. (8) over the three boolean inputs

    A = (x1 < ξ),    B = (γ > 0),    C = (x1 == ξ)

and simplifies it (Karnaugh map) to the branch-free expression

    x4 = (A xor B) or C                            (Eqn. 9)

which the OpenCL kernel evaluates with ``isless`` / ``isgreater`` /
``isequal`` and bitwise ops.  This module provides the branchless operator,
the truth table used to derive it, and an exhaustive equivalence check
against Eqn. (8).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.core.fusion import fused_binarize


def branchless_binarize(
    x1: np.ndarray, threshold: np.ndarray, gamma: np.ndarray
) -> np.ndarray:
    """Evaluate Eqn. (9): ``x4 = (A xor B) or C`` without branches.

    Parameters
    ----------
    x1:
        Raw binary-convolution output, shape ``(..., Cout)``.
    threshold:
        Per-channel thresholds ``ξ``.
    gamma:
        Per-channel batch-norm scales (only the sign is used).
    """
    x1 = np.asarray(x1, dtype=np.float64)
    threshold = np.asarray(threshold, dtype=np.float64)
    gamma = np.asarray(gamma, dtype=np.float64)
    a = np.less(x1, threshold)
    b = np.greater(gamma, 0)
    c = np.equal(x1, threshold)
    return (np.logical_xor(a, b) | c).astype(np.uint8)


@dataclass(frozen=True)
class TruthTableRow:
    """One row of the Eqn. (8)/(9) truth table."""

    a: bool
    b: bool
    c: bool
    feasible: bool
    eqn8: int
    eqn9: int


def truth_table() -> List[TruthTableRow]:
    """Enumerate all combinations of (A, B, C) with both formulations.

    Rows with ``A and C`` are infeasible (``x1 < ξ`` and ``x1 == ξ`` cannot
    hold simultaneously); they are marked so and excluded from the
    Karnaugh-map simplification, exactly as "don't care" terms.
    """
    rows: List[TruthTableRow] = []
    for a in (False, True):
        for b in (False, True):
            for c in (False, True):
                feasible = not (a and c)
                if a:
                    x1, xi = -1.0, 0.0
                elif c:
                    x1, xi = 0.0, 0.0
                else:
                    x1, xi = 1.0, 0.0
                gamma = 1.0 if b else -1.0
                eqn8 = int(
                    fused_binarize(np.array([x1]), np.array([xi]), np.array([gamma]))[0]
                ) if feasible else 0
                eqn9 = int((a ^ b) or c)
                rows.append(TruthTableRow(a, b, c, feasible, eqn8, eqn9))
    return rows


def formulations_equivalent() -> bool:
    """Check Eqn. (9) reproduces Eqn. (8) on every feasible truth-table row."""
    return all(row.eqn9 == row.eqn8 for row in truth_table() if row.feasible)


def divergent_binarize(
    x1: np.ndarray, threshold: np.ndarray, gamma: np.ndarray
) -> np.ndarray:
    """Scalar, branch-per-element evaluation of Eqn. (8).

    This mirrors the naive divergent kernel a GPU would run without the
    optimization; it exists for the ablation benchmarks and for equivalence
    tests, not for speed.
    """
    x1 = np.asarray(x1, dtype=np.float64)
    threshold = np.broadcast_to(np.asarray(threshold, dtype=np.float64), x1.shape)
    gamma = np.broadcast_to(np.asarray(gamma, dtype=np.float64), x1.shape)
    flat_x = x1.reshape(-1)
    flat_t = threshold.reshape(-1)
    flat_g = gamma.reshape(-1)
    out = np.empty(flat_x.shape, dtype=np.uint8)
    for i in range(flat_x.shape[0]):
        if flat_g[i] > 0:
            out[i] = 1 if flat_x[i] >= flat_t[i] else 0
        else:
            out[i] = 1 if flat_x[i] <= flat_t[i] else 0
    return out.reshape(x1.shape)
