"""Per-host auto-tuner for the fused execution plan's performance knobs.

The plan exposes knobs that never change results, only speed: the thread
fan-out, the row-tile bound, the NumPy kernel's filter-column tile, and the
engine's chunk-byte budget.  Their best values depend on the host (core
count, cache sizes, whether the cffi kernels built) and on the model and
batch shape — exactly the kind of search the paper's frameworks run once
per device.  This module measures the candidates and persists the winner:

* **Keying** — winners are stored per ``(host fingerprint, model digest,
  batch bucket)``.  The model digest is the SHA-256 of the serialized
  ``.pbit`` artifact — the *same* content address the shared-memory model
  store and the cross-host ``HostModelCache`` use — so a tuning record
  follows the artifact wherever it is deployed, and two hosts never share
  a record (the fingerprint covers machine, core count and library
  versions).
* **Seeding** — the thread-count search order comes from
  :func:`repro.gpusim.cost_model.thread_candidates`: the simulated
  compute/memory split says whether wide fan-outs are worth trying first.
  The search is greedy coordinate descent (threads → row tile → column
  tile → chunk), a dozen-odd timed runs rather than a grid.
* **Persistence** — one JSON file per model digest under
  ``<backend cache>/tuning/`` (see
  :func:`repro.core.backends.cffi_backend.build_cache_dir`), written
  atomically so concurrent tuners on one host race harmlessly.

Lookups are wired into ``PhoneBitEngine.run_batch``: when a record exists
for the current host/digest/bucket it supplies the defaults, and explicit
``num_threads`` / ``chunk_bytes`` settings still win.  A missing or
corrupt record simply means built-in defaults — tuning can never change
results or availability, only speed.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import tempfile
import threading
import time
from dataclasses import asdict, dataclass
from typing import Dict, Optional

import numpy as np

from repro.core import plan as plan_mod
from repro.core.plan import positive_int

#: Bump when the record layout changes; readers ignore foreign versions.
_SCHEMA_VERSION = 1

#: Batch buckets are powers of two capped here — beyond this the per-image
#: cost curve is flat and one record serves every huge batch.
_MAX_BUCKET = 256

#: Row-tile candidates (bounds on rows per thread tile).
_ROW_TILE_CANDIDATES = (128, 256, 512, 1024)

#: Filter-column tile candidates for the NumPy fused kernel (the compiled
#: kernels keep one activation row hot across all filters and ignore this).
_COL_TILE_CANDIDATES = (32, 64, 128)


def host_fingerprint() -> str:
    """Short stable identifier of this host's performance-relevant shape.

    Covers the machine/OS architecture, core count and the library
    versions the kernels are built against — the things that invalidate a
    tuning record.  Deliberately excludes hostname: identical containers
    should share records when they share a cache volume.
    """
    payload = "|".join(
        (
            platform.machine(),
            platform.system(),
            str(os.cpu_count() or 1),
            platform.python_implementation(),
            ".".join(platform.python_version_tuple()[:2]),
            np.__version__,
        )
    )
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


def batch_bucket(batch_size: int) -> int:
    """Power-of-two bucket a batch size falls into (capped).

    Buckets keep the search space finite: one record covers every batch
    size rounding up to the same power of two, and everything beyond
    :data:`_MAX_BUCKET` shares the cap record.
    """
    size = positive_int(batch_size, "batch_size")
    bucket = 1
    while bucket < size and bucket < _MAX_BUCKET:
        bucket *= 2
    return bucket


def network_digest(network) -> str:
    """SHA-256 content address of the network's serialized artifact.

    Identical to the digest :mod:`repro.serving.shm_store` and the
    cross-host model cache key artifacts by, so tuning records line up
    with the deployment stores.  Cached on the network, invalidated with
    the plan (any weight reassignment recompiles the plan, which drops the
    memo along with it).
    """
    from repro.core.model_format import serialize_network
    from repro.serving.shm_store import artifact_digest

    plan = plan_mod.get_plan(network)
    memo = getattr(network, "_artifact_digest_memo", None)
    if memo is not None and memo[0] is plan:
        return memo[1]
    digest = artifact_digest(serialize_network(network))
    network._artifact_digest_memo = (plan, digest)
    return digest


@dataclass(frozen=True)
class TunedConfig:
    """One measured winner for a (host, model digest, batch bucket) key."""

    backend: str
    threads: int
    row_tile: int
    col_tile: Optional[int]
    chunk_bytes: Optional[int]
    mean_ms: float

    def validated(self) -> "TunedConfig":
        """Raise ``ValueError`` if any field is out of range."""
        positive_int(self.threads, "threads")
        positive_int(self.row_tile, "row_tile")
        if self.col_tile is not None:
            positive_int(self.col_tile, "col_tile")
        if self.chunk_bytes is not None:
            positive_int(self.chunk_bytes, "chunk_bytes")
        return self


class TuningCache:
    """Digest-keyed persistent store of tuning winners (one JSON per model).

    Records live next to the compiled-kernel cache, so one volume mount
    gives a fleet of identical workers both the built ``.so`` and the
    measured knobs.  Files are read once per process (then memoized) and
    written atomically via a staging file + ``os.replace``.
    """

    def __init__(self, cache_dir: Optional[str] = None) -> None:
        if cache_dir is None:
            from repro.core.backends.cffi_backend import build_cache_dir

            cache_dir = build_cache_dir()
        self.directory = os.path.join(cache_dir, "tuning")
        self._lock = threading.Lock()
        self._memo: Dict[str, Dict[str, dict]] = {}

    def _path(self, digest: str) -> str:
        return os.path.join(self.directory, f"{digest}.json")

    def _entries(self, digest: str) -> Dict[str, dict]:
        with self._lock:
            cached = self._memo.get(digest)
            if cached is not None:
                return cached
        entries: Dict[str, dict] = {}
        try:
            with open(self._path(digest)) as fh:
                payload = json.load(fh)
            if payload.get("version") == _SCHEMA_VERSION:
                entries = dict(payload.get("entries", {}))
        except (OSError, ValueError):
            entries = {}
        with self._lock:
            self._memo[digest] = entries
        return entries

    @staticmethod
    def _key(batch_size: int) -> str:
        return f"{host_fingerprint()}/b{batch_bucket(batch_size)}"

    def lookup(self, digest: str, batch_size: int) -> Optional[TunedConfig]:
        """Winner for this host and batch bucket, or ``None``.

        A malformed record is treated as absent — a hand-edited or
        truncated cache file degrades to defaults, never to an error.
        """
        raw = self._entries(digest).get(self._key(batch_size))
        if raw is None:
            return None
        try:
            return TunedConfig(
                backend=str(raw["backend"]),
                threads=int(raw["threads"]),
                row_tile=int(raw["row_tile"]),
                col_tile=None if raw.get("col_tile") is None else int(raw["col_tile"]),
                chunk_bytes=(
                    None if raw.get("chunk_bytes") is None
                    else int(raw["chunk_bytes"])
                ),
                mean_ms=float(raw.get("mean_ms", 0.0)),
            ).validated()
        except (KeyError, TypeError, ValueError):
            return None

    def store(self, digest: str, batch_size: int, config: TunedConfig) -> str:
        """Persist ``config`` under this host's key; returns the file path.

        Read-modify-write of the whole per-digest file under the instance
        lock, installed with an atomic rename so a concurrent tuner never
        sees a torn file (last writer wins; both measured the same host).
        """
        config.validated()
        path = self._path(digest)
        with self._lock:
            entries = self._memo.get(digest)
        entries = dict(entries) if entries else {}
        try:
            with open(path) as fh:
                payload = json.load(fh)
            if payload.get("version") == _SCHEMA_VERSION:
                merged = dict(payload.get("entries", {}))
                merged.update(entries)
                entries = merged
        except (OSError, ValueError):
            pass
        entries[self._key(batch_size)] = asdict(config)
        os.makedirs(self.directory, exist_ok=True)
        fd, staging = tempfile.mkstemp(dir=self.directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump({"version": _SCHEMA_VERSION, "entries": entries}, fh,
                          indent=2, sort_keys=True)
            os.replace(staging, path)
        except BaseException:
            try:
                os.unlink(staging)
            except OSError:
                pass
            raise
        with self._lock:
            self._memo[digest] = entries
        return path


_CACHE_LOCK = threading.Lock()
_CACHES: Dict[str, TuningCache] = {}


def get_cache() -> TuningCache:
    """Process-wide cache for the current ``REPRO_BACKEND_CACHE`` setting.

    Keyed by the resolved directory so tests that repoint the environment
    variable get a fresh instance instead of a stale memo.
    """
    from repro.core.backends.cffi_backend import build_cache_dir

    directory = build_cache_dir()
    with _CACHE_LOCK:
        cache = _CACHES.get(directory)
        if cache is None:
            cache = TuningCache(directory)
            _CACHES[directory] = cache
        return cache


def lookup_network(network, batch_size: int,
                   cache: Optional[TuningCache] = None) -> Optional[TunedConfig]:
    """Tuning winner for ``network`` on this host, or ``None``.

    The first call per network serializes it once to compute the digest;
    later calls hit the memo.  Used by ``PhoneBitEngine`` on every batch,
    so everything past the digest is dictionary lookups.
    """
    cache = cache or get_cache()
    return cache.lookup(network_digest(network), batch_size)


def _measure_ms(plan, batch, threads, row_tile, col_tile, chunk_rows,
                repeats: int) -> float:
    """Best-of-``repeats`` wall time (ms) of one knob combination."""
    n = batch.shape[0]
    step = n if not chunk_rows else max(1, min(int(chunk_rows), n))
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        for start in range(0, n, step):
            plan.execute(batch[start:start + step], threads=threads,
                         row_tile=row_tile, col_tile=col_tile)
        best = min(best, (time.perf_counter() - t0) * 1000.0)
    return best


def tune_network(
    network,
    batch_size: int,
    backend: Optional[str] = None,
    repeats: int = 3,
    cache: Optional[TuningCache] = None,
    store: bool = True,
    rng: Optional[np.random.Generator] = None,
) -> TunedConfig:
    """Measure the plan's knobs for one batch bucket and persist the winner.

    Greedy coordinate descent over (threads, row tile, column tile, chunk
    rows), each axis measured best-of-``repeats`` on a synthetic batch of
    the bucket size.  The thread axis is searched in the order
    :func:`repro.gpusim.cost_model.thread_candidates` suggests from the
    simulated compute/memory split.  Tuning only ever touches knobs that
    cannot change results, so no re-verification is needed beyond the
    bit-exactness gate ``select_backend`` already applied.
    """
    from repro.gpusim.cost_model import thread_candidates

    plan = plan_mod.get_plan(network)
    plan.select_backend(backend)
    bucket = batch_bucket(batch_size)
    rng = np.random.default_rng(7) if rng is None else rng
    shape = (bucket,) + tuple(network.input_shape)
    dtype = np.dtype(getattr(network, "input_dtype", np.uint8))
    if dtype.kind in "ui":
        bits = getattr(network.layers[0], "input_bits", 8) if network.layers else 8
        batch = rng.integers(0, 1 << min(bits, 8), size=shape).astype(dtype)
    else:
        batch = rng.standard_normal(shape).astype(dtype)

    try:
        from repro.core.engine import PhoneBitEngine

        run_cost = PhoneBitEngine().estimate(network).run_cost
    except Exception:  # noqa: BLE001 - seeding is best-effort
        run_cost = None

    uses_numpy_fused = any(
        getattr(step, "fused", False)
        and not getattr(step, "is_input_conv", False)
        and getattr(step, "compiled", None) is None
        for step in plan.steps
    )

    best = {"threads": 1, "row_tile": None, "col_tile": None, "chunk_rows": None}

    def measure(**overrides) -> float:
        knobs = dict(best)
        knobs.update(overrides)
        return _measure_ms(plan, batch, repeats=repeats, **knobs)

    plan.execute(batch, threads=1)  # warm arenas/pools out of the timings
    best_ms = measure()
    for threads in thread_candidates(run_cost):
        if threads == best["threads"]:
            continue
        ms = measure(threads=threads)
        if ms < best_ms:
            best_ms, best["threads"] = ms, threads
    for row_tile in _ROW_TILE_CANDIDATES:
        ms = measure(row_tile=row_tile)
        if ms < best_ms:
            best_ms, best["row_tile"] = ms, row_tile
    if uses_numpy_fused:  # compiled kernels ignore the column tile
        for col_tile in _COL_TILE_CANDIDATES:
            ms = measure(col_tile=col_tile)
            if ms < best_ms:
                best_ms, best["col_tile"] = ms, col_tile
    if bucket >= 8:
        for chunk_rows in (bucket // 2, bucket // 4):
            ms = measure(chunk_rows=chunk_rows)
            if ms < best_ms:
                best_ms, best["chunk_rows"] = ms, chunk_rows

    config = TunedConfig(
        backend=plan.backend_spec,
        threads=best["threads"],
        row_tile=best["row_tile"] or plan_mod._ROW_TILE,
        col_tile=best["col_tile"],
        chunk_bytes=(
            None if best["chunk_rows"] is None
            else max(1, best["chunk_rows"]) * max(1, plan.per_sample_bytes)
        ),
        mean_ms=best_ms,
    )
    if store:
        cache = cache or get_cache()
        cache.store(network_digest(network), batch_size, config)
    return config
