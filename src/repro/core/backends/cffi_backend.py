"""cffi-compiled C kernels (``_kernels.c``) with a per-host build cache.

The extension is compiled from the single C source shipped next to this
module, at first use, with whatever C compiler the host provides; the
built shared object is cached under a content-addressed name (hash of
source + compile flags + ABI tag) in ``REPRO_BACKEND_CACHE`` (default
``~/.cache/repro/backends``), so each host compiles once and every later
process — including forked/spawned cluster workers — just dlopens it.

Availability gates (any failure ⇒ :class:`BackendUnavailable`, and the
plan keeps the NumPy path):

* a C compiler on ``PATH`` (``cc``/``gcc``/``clang``), not masked by
  ``REPRO_NO_CC=1`` — the switch CI uses to prove the fallback;
* a little-endian host (the packed bit streams are little-endian);
* the cffi compile itself succeeding.  ``-O3 -march=native`` is tried
  first (hardware POPCNT), plain ``-O3`` is the portable fallback.
"""

from __future__ import annotations

import hashlib
import os
import shutil
import sys
import sysconfig
import tempfile
from typing import Optional

import numpy as np

_CDEF = """
void repro_fused_xor_threshold_pack(
    const uint8_t *a, ptrdiff_t a_stride,
    const uint8_t *b, ptrdiff_t b_stride,
    ptrdiff_t n_bytes,
    const int32_t *thresh, const uint8_t *flip, ptrdiff_t cols,
    uint8_t *out, ptrdiff_t out_stride,
    ptrdiff_t row_start, ptrdiff_t row_stop);
void repro_xor_popcount_gemm(
    const uint8_t *a, ptrdiff_t a_stride,
    const uint8_t *b, ptrdiff_t b_stride,
    ptrdiff_t n_bytes, ptrdiff_t cols,
    int64_t *out, ptrdiff_t out_cols,
    ptrdiff_t row_start, ptrdiff_t row_stop);
void repro_packed_patch_rows(
    const uint8_t *x, ptrdiff_t h, ptrdiff_t w, ptrdiff_t pix_bytes,
    ptrdiff_t k, ptrdiff_t stride, ptrdiff_t padding,
    ptrdiff_t oh, ptrdiff_t ow,
    uint8_t *out, ptrdiff_t out_stride,
    ptrdiff_t row_start, ptrdiff_t row_stop);
"""

_SOURCE_FILE = os.path.join(os.path.dirname(__file__), "_kernels.c")


def compiler_available() -> bool:
    """Whether a usable C compiler is on PATH (and not masked).

    ``REPRO_NO_CC=1`` masks detection — the hook CI (and the fallback
    tests) use to simulate a host without a toolchain.
    """
    if os.environ.get("REPRO_NO_CC", "").strip() not in ("", "0"):
        return False
    return any(shutil.which(cc) for cc in ("cc", "gcc", "clang"))


def build_cache_dir() -> str:
    """Per-host directory holding built extensions and tuning records.

    ``REPRO_BACKEND_CACHE`` overrides; the default is
    ``~/.cache/repro/backends``, degrading to a per-user temp directory
    when the home directory is not writable.
    """
    override = os.environ.get("REPRO_BACKEND_CACHE", "").strip()
    if override:
        path = override
    else:
        path = os.path.join(
            os.path.expanduser("~"), ".cache", "repro", "backends"
        )
    try:
        os.makedirs(path, exist_ok=True)
        return path
    except OSError:
        fallback = os.path.join(
            tempfile.gettempdir(), f"repro-backends-{os.getuid()}"
        )
        os.makedirs(fallback, exist_ok=True)
        return fallback


def _module_tag(source: str, flags: tuple) -> str:
    """Content hash naming one built variant of the extension."""
    payload = source + "\x00" + " ".join(flags) + "\x00" + (
        sysconfig.get_config_var("EXT_SUFFIX") or ""
    )
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


def _built_path(module_name: str, cache_dir: str) -> str:
    suffix = sysconfig.get_config_var("EXT_SUFFIX") or ".so"
    return os.path.join(cache_dir, module_name + suffix)


def _load_built(module_name: str, path: str):
    import importlib.util

    spec = importlib.util.spec_from_file_location(module_name, path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _compile(module_name: str, source: str, flags: tuple, cache_dir: str) -> str:
    """Compile one variant into the cache dir; returns the .so path.

    The build runs in a private temp dir and the finished object is
    moved into place with ``os.replace``, so concurrent builders race
    harmlessly (last atomic rename wins, both objects are identical).
    """
    import cffi

    ffibuilder = cffi.FFI()
    ffibuilder.cdef(_CDEF)
    ffibuilder.set_source(module_name, source, extra_compile_args=list(flags))
    staging = tempfile.mkdtemp(prefix="build-", dir=cache_dir)
    try:
        built = ffibuilder.compile(tmpdir=staging, verbose=False)
        final = _built_path(module_name, cache_dir)
        os.replace(built, final)
        return final
    finally:
        shutil.rmtree(staging, ignore_errors=True)


class CffiKernelBackend:
    """Thin array-validation shim over the compiled C entry points.

    The methods mirror the NumPy kernel signatures in
    :mod:`repro.core.bitpack` / :mod:`repro.core.binary_conv` so the plan
    steps can swap implementations without reshaping anything.  All
    operands must be C-contiguous in their trailing axis (plan buffers
    are); ``ffi.from_buffer`` enforces full contiguity for us.
    """

    name = "cffi"

    def __init__(self, module) -> None:
        self._ffi = module.ffi
        self._lib = module.lib

    # -- pointer helpers ---------------------------------------------------
    def _ro(self, array: np.ndarray, ctype: str = "const uint8_t *"):
        return self._ffi.cast(ctype, self._ffi.from_buffer(array))

    def _rw(self, array: np.ndarray, ctype: str = "uint8_t *"):
        return self._ffi.cast(
            ctype, self._ffi.from_buffer(array, require_writable=True)
        )

    # -- kernels -----------------------------------------------------------
    def fused_xor_threshold_rows(self, a, b, acc_threshold, flip, out_words,
                                 row_start, row_stop, word_size,
                                 col_tile=None) -> None:
        """Compiled twin of :func:`repro.core.bitpack.fused_xor_threshold_rows`.

        ``col_tile`` is accepted for signature parity and ignored — the C
        loop keeps one activation row register-resident across all
        filters, so column tiling buys nothing there.
        """
        flip8 = flip.view(np.uint8) if flip.dtype == np.bool_ else \
            np.ascontiguousarray(flip, dtype=np.uint8)
        thresh = np.ascontiguousarray(acc_threshold, dtype=np.int32)
        self._lib.repro_fused_xor_threshold_pack(
            self._ro(a), a.strides[0],
            self._ro(b), b.strides[0],
            a.shape[1] * a.dtype.itemsize,
            self._ro(thresh, "const int32_t *"), self._ro(flip8), b.shape[0],
            self._rw(out_words), out_words.strides[0],
            int(row_start), int(row_stop),
        )

    def xor_popcount_gemm_rows(self, a, b, out, row_start, row_stop) -> None:
        """Rows ``[row_start, row_stop)`` of the all-pairs xor-popcount GEMM."""
        self._lib.repro_xor_popcount_gemm(
            self._ro(a), a.strides[0],
            self._ro(b), b.strides[0],
            a.shape[1] * a.dtype.itemsize, b.shape[0],
            self._rw(out, "int64_t *"), out.shape[1],
            int(row_start), int(row_stop),
        )

    def packed_patch_rows(self, packed, kernel_size, stride, padding,
                          oh, ow, out, row_start, row_stop) -> None:
        """Gather rows of the packed im2col matrix (zero-padded taps)."""
        n, h, w, wc = packed.shape
        pix_bytes = wc * packed.dtype.itemsize
        self._lib.repro_packed_patch_rows(
            self._ro(packed), h, w, pix_bytes,
            int(kernel_size), int(stride), int(padding), int(oh), int(ow),
            self._rw(out), out.strides[0],
            int(row_start), int(row_stop),
        )


def load() -> CffiKernelBackend:
    """Build (or reuse) the compiled extension; raises BackendUnavailable."""
    from repro.core.backends import BackendUnavailable

    if sys.byteorder != "little":
        raise BackendUnavailable(
            "cffi backend requires a little-endian host (packed bit "
            "streams are little-endian)"
        )
    try:
        import cffi  # noqa: F401
    except ImportError as exc:
        raise BackendUnavailable(f"cffi is not installed: {exc}") from exc
    with open(_SOURCE_FILE) as fh:
        source = fh.read()
    cache_dir = build_cache_dir()
    flag_sets = (("-O3", "-march=native"), ("-O3",))
    errors = []
    for flags in flag_sets:
        module_name = f"_repro_kernels_{_module_tag(source, flags)}"
        path = _built_path(module_name, cache_dir)
        if os.path.exists(path):
            try:
                return CffiKernelBackend(_load_built(module_name, path))
            except Exception as exc:  # stale/foreign object: rebuild
                errors.append(f"cached {path}: {exc}")
                try:
                    os.unlink(path)
                except OSError:
                    pass
        if not compiler_available():
            errors.append("no C compiler on PATH (or masked by REPRO_NO_CC)")
            continue
        try:
            built = _compile(module_name, source, flags, cache_dir)
            return CffiKernelBackend(_load_built(module_name, built))
        except Exception as exc:  # noqa: BLE001 - try the next flag set
            errors.append(f"{' '.join(flags)}: {type(exc).__name__}: {exc}")
    raise BackendUnavailable(
        "cffi backend could not be built: " + "; ".join(errors)
    )
