/* Compiled inner loops for the fused execution plan.
 *
 * One translation unit, three kernels — the xor-popcount GEMM, the
 * fused-threshold-accumulate-and-pack kernel, and the packed
 * patch-extraction gather.  All three operate on *bytes*: a packed
 * activation/filter row is an opaque little-endian bit stream, so one
 * kernel serves every packing word width (uchar..ulong) without
 * per-dtype specializations.  Bit i of byte j holds channel 8*j + i,
 * exactly the layout numpy.packbits(bitorder="little") produces and the
 * little-endian word views in repro.core.bitpack reinterpret.
 *
 * Threading contract (mirrors bitpack.fused_xor_threshold_rows): every
 * kernel writes only rows [row_start, row_stop) of its output, so the
 * execution plan's tile pool may call it concurrently on disjoint row
 * ranges.  No kernel allocates, locks, or touches global state; cffi
 * releases the GIL for the duration of each call.
 *
 * OpenMP-free by design — parallelism belongs to the plan's shared
 * thread pool, not to a second competing runtime.
 */

#include <stddef.h>
#include <stdint.h>
#include <string.h>

/* Popcount of one 8-byte chunk loaded from a (possibly unaligned) byte
 * pointer.  memcpy compiles to a single unaligned load on every target
 * worth having; __builtin_popcountll compiles to POPCNT where the
 * compile flags allow it and a branch-free SWAR sequence elsewhere. */
static inline int popc8(const uint8_t *p) {
    uint64_t v;
    memcpy(&v, p, 8);
    return __builtin_popcountll(v);
}

/* Number of disagreeing bits between two n_bytes-long packed rows. */
static inline int32_t xor_popcount_row(const uint8_t *a, const uint8_t *b,
                                       ptrdiff_t n_bytes) {
    int32_t count = 0;
    ptrdiff_t i = 0;
    for (; i + 32 <= n_bytes; i += 32) {
        uint64_t v0, v1, v2, v3, w0, w1, w2, w3;
        memcpy(&v0, a + i, 8);      memcpy(&w0, b + i, 8);
        memcpy(&v1, a + i + 8, 8);  memcpy(&w1, b + i + 8, 8);
        memcpy(&v2, a + i + 16, 8); memcpy(&w2, b + i + 16, 8);
        memcpy(&v3, a + i + 24, 8); memcpy(&w3, b + i + 24, 8);
        count += __builtin_popcountll(v0 ^ w0)
               + __builtin_popcountll(v1 ^ w1)
               + __builtin_popcountll(v2 ^ w2)
               + __builtin_popcountll(v3 ^ w3);
    }
    for (; i + 8 <= n_bytes; i += 8) {
        uint64_t v, w;
        memcpy(&v, a + i, 8);
        memcpy(&w, b + i, 8);
        count += __builtin_popcountll(v ^ w);
    }
    for (; i < n_bytes; i++) {
        count += __builtin_popcountll((uint64_t)(a[i] ^ b[i]));
    }
    return count;
}

/* Fused xor-popcount GEMM tile -> accumulator threshold -> packed bits.
 *
 * For every row i in [row_start, row_stop) of `a` (row stride a_stride
 * bytes, payload n_bytes) against all `cols` rows of `b`:
 *
 *     bit[i, j] = (xor_popcount(a[i], b[j]) <= thresh[j]) ^ flip[j]
 *
 * packed little-endian along j into out (row stride out_stride bytes).
 * Trailing padding bits of each output row are written as zero, matching
 * the NumPy reference packer. */
void repro_fused_xor_threshold_pack(
    const uint8_t *a, ptrdiff_t a_stride,
    const uint8_t *b, ptrdiff_t b_stride,
    ptrdiff_t n_bytes,
    const int32_t *thresh, const uint8_t *flip, ptrdiff_t cols,
    uint8_t *out, ptrdiff_t out_stride,
    ptrdiff_t row_start, ptrdiff_t row_stop)
{
    for (ptrdiff_t i = row_start; i < row_stop; i++) {
        const uint8_t *arow = a + i * a_stride;
        uint8_t *orow = out + i * out_stride;
        memset(orow, 0, (size_t)out_stride);
        for (ptrdiff_t j = 0; j < cols; j++) {
            int32_t d = xor_popcount_row(arow, b + j * b_stride, n_bytes);
            uint8_t bit = (uint8_t)((d <= thresh[j]) ^ (flip[j] != 0));
            orow[j >> 3] |= (uint8_t)(bit << (j & 7));
        }
    }
}

/* Plain all-pairs xor-popcount GEMM: out[i, j] = xor_popcount(a[i], b[j])
 * for rows [row_start, row_stop), int64 output (the dtype the NumPy
 * GEMM produces).  out_cols is the full output row width so a tile call
 * indexes the shared output correctly. */
void repro_xor_popcount_gemm(
    const uint8_t *a, ptrdiff_t a_stride,
    const uint8_t *b, ptrdiff_t b_stride,
    ptrdiff_t n_bytes, ptrdiff_t cols,
    int64_t *out, ptrdiff_t out_cols,
    ptrdiff_t row_start, ptrdiff_t row_stop)
{
    for (ptrdiff_t i = row_start; i < row_stop; i++) {
        const uint8_t *arow = a + i * a_stride;
        int64_t *orow = out + i * out_cols;
        for (ptrdiff_t j = 0; j < cols; j++) {
            orow[j] = (int64_t)xor_popcount_row(arow, b + j * b_stride, n_bytes);
        }
    }
}

/* Packed patch extraction (im2col on packed words, as bytes).
 *
 * Input: packed NHWC activations of logical shape (n, h, w, pix_bytes)
 * where pix_bytes = words-per-channel * word-bytes, C-contiguous.
 * Output rows [row_start, row_stop) of the (n*oh*ow, k*k*pix_bytes)
 * patch matrix, row stride out_stride bytes.  Out-of-image taps are
 * zero-filled (packed zero == all-(-1) activations, the binary padding
 * convention).  Interior rows reduce to k memcpys of k*pix_bytes. */
void repro_packed_patch_rows(
    const uint8_t *x, ptrdiff_t h, ptrdiff_t w, ptrdiff_t pix_bytes,
    ptrdiff_t k, ptrdiff_t stride, ptrdiff_t padding,
    ptrdiff_t oh, ptrdiff_t ow,
    uint8_t *out, ptrdiff_t out_stride,
    ptrdiff_t row_start, ptrdiff_t row_stop)
{
    const ptrdiff_t img_bytes = h * w * pix_bytes;
    const ptrdiff_t span_bytes = k * pix_bytes;  /* one kh tap row */
    for (ptrdiff_t r = row_start; r < row_stop; r++) {
        ptrdiff_t ox = r % ow;
        ptrdiff_t oy = (r / ow) % oh;
        ptrdiff_t img = r / (ow * oh);
        const uint8_t *xi = x + img * img_bytes;
        uint8_t *orow = out + r * out_stride;
        ptrdiff_t ix0 = ox * stride - padding;
        /* Columns of the tap window that fall inside the image. */
        ptrdiff_t kw_lo = ix0 < 0 ? -ix0 : 0;
        ptrdiff_t kw_hi = w - ix0 < k ? w - ix0 : k;
        if (kw_hi < kw_lo) kw_hi = kw_lo;
        for (ptrdiff_t kh = 0; kh < k; kh++) {
            ptrdiff_t iy = oy * stride - padding + kh;
            uint8_t *dst = orow + kh * span_bytes;
            if (iy < 0 || iy >= h || kw_lo >= k) {
                memset(dst, 0, (size_t)span_bytes);
                continue;
            }
            if (kw_lo > 0)
                memset(dst, 0, (size_t)(kw_lo * pix_bytes));
            memcpy(dst + kw_lo * pix_bytes,
                   xi + (iy * w + ix0 + kw_lo) * pix_bytes,
                   (size_t)((kw_hi - kw_lo) * pix_bytes));
            if (kw_hi < k)
                memset(dst + kw_hi * pix_bytes, 0,
                       (size_t)((k - kw_hi) * pix_bytes));
        }
    }
}
