"""Pluggable compiled-kernel backends behind the fused execution plan.

The fused plan (:mod:`repro.core.plan`) is the seam the paper's native
frameworks exploit: every step is a named kernel with known shapes, so a
compiled inner loop can replace the NumPy one without touching the graph.
This package provides that layer:

* ``numpy`` — the vectorized kernels in :mod:`repro.core.bitpack` /
  :mod:`repro.core.binary_conv`.  Always available, always correct; the
  reference every other backend is gated against.
* ``cffi`` — a single C translation unit (``_kernels.c``: xor-popcount
  GEMM, fused-threshold-accumulate-and-pack, packed patch extraction)
  compiled at first use with the host toolchain and cached per host
  (:mod:`repro.core.backends.cffi_backend`).  OpenMP-free: parallelism
  stays in the plan's shared thread pool, and cffi releases the GIL for
  the duration of each call.
* ``numba`` — the same three kernels as ``@njit(nogil=True)`` functions
  when Numba is installed (:mod:`repro.core.backends.numba_backend`).

**Selection is gated by the bit-exactness spine.**  A backend is attached
per plan step at warm time (``Network.warm`` / ``ModelPool`` /
``PhoneBitEngine``): before a step adopts a compiled kernel, the kernel is
probed against the NumPy reference on that step's *actual* packed filters
and thresholds, and on synthetic packed inputs covering its geometry.  Any
mismatch — or any build/import failure — silently falls the step back to
the NumPy path, so a missing compiler can never change results, only
speed.  ``ExecutionPlan.backend_report()`` says what each step runs on.

``REPRO_BACKEND`` sets the process-default spec (``auto`` when unset);
``REPRO_NO_CC=1`` masks the host toolchain, which is how CI proves the
fallback path stays green.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core import binary_conv, bitpack

#: Backend spec names accepted everywhere a backend can be chosen
#: (engine, CLI ``--backend``, worker config).  ``auto`` resolves to the
#: fastest available compiled backend, falling back to ``numpy``.
BACKEND_CHOICES = ("auto", "numpy", "cffi", "numba")

#: Preference order ``auto`` resolves through.
_AUTO_ORDER = ("cffi", "numba")


class BackendUnavailable(RuntimeError):
    """A compiled backend cannot be used on this host (reason in args)."""


def default_backend_spec() -> str:
    """Process-default backend spec: ``REPRO_BACKEND`` or ``auto``."""
    spec = os.environ.get("REPRO_BACKEND", "").strip().lower()
    return spec if spec in BACKEND_CHOICES else "auto"


# --------------------------------------------------------------- registry
_CACHE: Dict[str, object] = {}
_FAILURES: Dict[str, str] = {}


def _load_backend(name: str):
    """Build/import one compiled backend (uncached); raises on failure."""
    if name == "cffi":
        from repro.core.backends import cffi_backend

        return cffi_backend.load()
    if name == "numba":
        from repro.core.backends import numba_backend

        return numba_backend.load()
    raise BackendUnavailable(f"unknown compiled backend {name!r}")


def get_backend(name: str):
    """Compiled backend object for ``name``, or ``None`` for ``"numpy"``.

    Results (including failures) are cached per process; a failure reason
    is kept so :func:`availability` can report *why* a backend is out.

    Raises
    ------
    BackendUnavailable
        If the backend cannot be built or imported on this host.
    """
    if name == "numpy":
        return None
    if name not in BACKEND_CHOICES:
        raise BackendUnavailable(
            f"unknown backend {name!r}; expected one of {BACKEND_CHOICES}"
        )
    if name in _CACHE:
        return _CACHE[name]
    if name in _FAILURES:
        raise BackendUnavailable(_FAILURES[name])
    try:
        impl = _load_backend(name)
        _self_test(impl)
    except BackendUnavailable as exc:
        _FAILURES[name] = str(exc)
        raise
    except Exception as exc:  # noqa: BLE001 - any build error means "absent"
        reason = f"{name} backend unavailable: {type(exc).__name__}: {exc}"
        _FAILURES[name] = reason
        raise BackendUnavailable(reason) from exc
    _CACHE[name] = impl
    return impl


def availability() -> Dict[str, Optional[str]]:
    """Mapping of backend name to ``None`` (usable) or a reason string."""
    report: Dict[str, Optional[str]] = {"numpy": None}
    for name in ("cffi", "numba"):
        try:
            get_backend(name)
            report[name] = None
        except BackendUnavailable as exc:
            report[name] = str(exc)
    return report


def resolve_backend(spec: Optional[str]) -> Tuple[str, Optional[object]]:
    """Resolve a spec to ``(name, impl)``; ``impl`` is None for numpy.

    ``auto`` (or ``None``) picks the first usable compiled backend in
    preference order and degrades to ``numpy`` when none builds — it
    never raises.  A concrete compiled name raises
    :class:`BackendUnavailable` if that backend cannot be used, so an
    explicit request is never silently substituted.
    """
    spec = (spec or default_backend_spec()).lower()
    if spec not in BACKEND_CHOICES:
        raise BackendUnavailable(
            f"unknown backend {spec!r}; expected one of {BACKEND_CHOICES}"
        )
    if spec == "auto":
        for name in _AUTO_ORDER:
            try:
                return name, get_backend(name)
            except BackendUnavailable:
                continue
        return "numpy", None
    return spec, get_backend(spec)


def _reset_for_tests() -> None:
    """Drop cached backends/failures (tests toggle REPRO_NO_CC)."""
    _CACHE.clear()
    _FAILURES.clear()


# ----------------------------------------------------------- verification
def _random_words(rng, shape, dtype) -> np.ndarray:
    """Random packed words of an unsigned dtype (full bit range)."""
    dtype = np.dtype(dtype)
    return rng.integers(
        0, 2 ** (8 * dtype.itemsize), size=shape, dtype=dtype
    )


def _self_test(impl) -> None:
    """Global smoke check of all three kernels before a backend is cached.

    Per-step probes (:func:`verify_fused_step`) re-check the fused kernel
    against each step's real filters; this catches a completely broken
    build immediately with clear attribution.
    """
    rng = np.random.default_rng(20)
    a = _random_words(rng, (13, 3), np.uint64)
    b = _random_words(rng, (10, 3), np.uint64)
    expected = bitpack.xor_popcount_gemm(a, b)
    got = np.empty_like(expected)
    impl.xor_popcount_gemm_rows(a, b, got, 0, a.shape[0])
    if not np.array_equal(expected, got):
        raise BackendUnavailable(
            f"{impl.name} xor-popcount GEMM disagrees with the NumPy reference"
        )
    thresh = rng.integers(60, 130, size=10).astype(np.int32)
    flip = rng.integers(0, 2, size=10).astype(bool)
    out_np = np.zeros((13, 2), dtype=np.uint8)
    out_c = np.zeros((13, 2), dtype=np.uint8)
    bitpack.fused_xor_threshold_rows(a, b, thresh, flip, out_np, 0, 13, 8)
    impl.fused_xor_threshold_rows(a, b, thresh, flip, out_c, 0, 13, 8)
    if not np.array_equal(out_np, out_c):
        raise BackendUnavailable(
            f"{impl.name} fused threshold kernel disagrees with the NumPy reference"
        )
    packed = _random_words(rng, (2, 6, 5, 2), np.uint32)
    expected_p, oh, ow = binary_conv.packed_patch_matrix(packed, 3, 2, 1)
    got_p = np.empty_like(np.ascontiguousarray(expected_p))
    impl.packed_patch_rows(packed, 3, 2, 1, oh, ow, got_p, 0, got_p.shape[0])
    if not np.array_equal(np.asarray(expected_p), got_p):
        raise BackendUnavailable(
            f"{impl.name} patch extraction disagrees with the NumPy reference"
        )


def verify_fused_step(impl, step, rng=None) -> bool:
    """Bit-exactness probe of one fused plan step against NumPy.

    Runs the compiled fused kernel on synthetic packed inputs against the
    step's *actual* packed filters, accumulator thresholds and flips —
    split across two row ranges so the tiling offsets are exercised — and,
    for convolution steps, the compiled patch gather against
    :func:`repro.core.binary_conv.packed_patch_matrix` on the step's
    geometry.  Returns True only on a bit-for-bit match.
    """
    rng = np.random.default_rng(33) if rng is None else rng
    filters = getattr(step, "flat_filters", None)
    if filters is None:
        filters = step.weights_packed
    filters = np.ascontiguousarray(filters.reshape(filters.shape[0], -1))
    cols, n_words = filters.shape
    rows = 9
    a = _random_words(rng, (rows, n_words), filters.dtype)
    wc_out = bitpack.words_per_channel(cols, step.out_word_size)
    out_dtype = bitpack.word_dtype(step.out_word_size)
    out_np = np.zeros((rows, wc_out), dtype=out_dtype)
    out_c = np.zeros((rows, wc_out), dtype=out_dtype)
    for r0, r1 in ((0, 4), (4, rows)):
        bitpack.fused_xor_threshold_rows(
            a, filters, step.acc_threshold, step.flip, out_np, r0, r1,
            step.out_word_size,
        )
        impl.fused_xor_threshold_rows(
            a, filters, step.acc_threshold, step.flip, out_c, r0, r1,
            step.out_word_size,
        )
    if not np.array_equal(out_np, out_c):
        return False
    layer = getattr(step, "layer", None)
    kernel_size = getattr(layer, "kernel_size", None)
    if kernel_size is not None and not getattr(step, "is_input_conv", False):
        k, stride, padding = kernel_size, layer.stride, layer.padding
        if not (k == 1 and padding == 0 and stride == 1):
            wc_in = bitpack.words_per_channel(layer.in_channels, layer.word_size)
            h = w = max(k + stride + padding, k + 1)
            packed = _random_words(
                rng, (2, h, w, wc_in), bitpack.word_dtype(layer.word_size)
            )
            expected, oh, ow = binary_conv.packed_patch_matrix(
                packed, k, stride, padding
            )
            expected = np.ascontiguousarray(expected)
            got = np.empty_like(expected)
            impl.packed_patch_rows(packed, k, stride, padding, oh, ow,
                                   got, 0, got.shape[0])
            if not np.array_equal(expected, got):
                return False
    return True


def select_for_plan(plan, spec: Optional[str] = None) -> Dict[str, str]:
    """Attach a backend to every fused step of ``plan`` (idempotent).

    Each eligible step is probed with :func:`verify_fused_step`; steps
    that fail the probe — and steps with no compiled lowering, like the
    exact-GEMM input convolution — keep the NumPy path.  Returns the
    per-step selection report (also stored as ``plan.backend_selection``).
    """
    name, impl = resolve_backend(spec)
    report: Dict[str, str] = {}
    for index, step in enumerate(plan.steps):
        key = f"[{index}] {step.describe}"
        if not getattr(step, "fused", False) or getattr(step, "is_input_conv", False):
            step_backend = "numpy"
        elif impl is None:
            step_backend = "numpy"
            step.compiled = None
        elif getattr(step, "compiled", None) is impl:
            step_backend = name  # already selected and verified
        elif verify_fused_step(impl, step):
            step.compiled = impl
            step_backend = name
        else:
            step.compiled = None
            step_backend = "numpy"
        report[key] = step_backend
    plan.backend_spec = name
    plan.backend_selection = report
    return report
