"""Numba-JIT twins of the C kernels, for hosts with Numba but no toolchain.

Same byte-stream semantics as ``_kernels.c`` (little-endian packed bit
rows, zero-padded taps), compiled with ``@njit(nogil=True)`` so the
plan's tile thread pool still parallelizes across row ranges.  The
backend is *gated*: it only loads when ``import numba`` succeeds, and —
like every compiled backend — each plan step verifies the kernels
bit-for-bit against the NumPy reference before adopting them, so a
miscompilation degrades to the NumPy path rather than to wrong answers.
"""

from __future__ import annotations

import sys

import numpy as np


def _build_kernels(numba):
    """Compile the three kernels; returns (fused, gemm, patch) njit funcs."""
    njit = numba.njit

    @njit(cache=True, nogil=True)
    def _row_xor_popcount(a, b, a_off, b_off, n_bytes, table):
        count = 0
        for i in range(n_bytes):
            count += table[a[a_off + i] ^ b[b_off + i]]
        return count

    @njit(cache=True, nogil=True)
    def fused(a, a_stride, b, b_stride, n_bytes, thresh, flip,
              cols, out, out_stride, row_start, row_stop, table):
        for i in range(row_start, row_stop):
            a_off = i * a_stride
            o_off = i * out_stride
            for t in range(out_stride):
                out[o_off + t] = 0
            for j in range(cols):
                d = _row_xor_popcount(a, b, a_off, j * b_stride, n_bytes, table)
                bit = np.uint8(1) if (d <= thresh[j]) != flip[j] else np.uint8(0)
                out[o_off + (j >> 3)] |= np.uint8(bit << (j & 7))

    @njit(cache=True, nogil=True)
    def gemm(a, a_stride, b, b_stride, n_bytes, cols, out,
             row_start, row_stop, table):
        for i in range(row_start, row_stop):
            a_off = i * a_stride
            for j in range(cols):
                out[i, j] = _row_xor_popcount(
                    a, b, a_off, j * b_stride, n_bytes, table
                )

    @njit(cache=True, nogil=True)
    def patch(x, h, w, pix_bytes, k, stride, padding, oh, ow,
              out, out_stride, row_start, row_stop):
        img_bytes = h * w * pix_bytes
        span = k * pix_bytes
        for r in range(row_start, row_stop):
            ox = r % ow
            oy = (r // ow) % oh
            img = r // (ow * oh)
            x_base = img * img_bytes
            o_base = r * out_stride
            ix0 = ox * stride - padding
            kw_lo = -ix0 if ix0 < 0 else 0
            kw_hi = w - ix0 if w - ix0 < k else k
            if kw_hi < kw_lo:
                kw_hi = kw_lo
            for kh in range(k):
                iy = oy * stride - padding + kh
                dst = o_base + kh * span
                if iy < 0 or iy >= h or kw_lo >= k:
                    for t in range(span):
                        out[dst + t] = 0
                    continue
                for t in range(kw_lo * pix_bytes):
                    out[dst + t] = 0
                src = x_base + (iy * w + ix0 + kw_lo) * pix_bytes
                n_copy = (kw_hi - kw_lo) * pix_bytes
                out[dst + kw_lo * pix_bytes:dst + kw_lo * pix_bytes + n_copy] = \
                    x[src:src + n_copy]
                for t in range(kw_hi * pix_bytes, span):
                    out[dst + t] = 0

    return fused, gemm, patch


def _flat_bytes(array: np.ndarray) -> np.ndarray:
    """1-D uint8 view of a C-contiguous array (copy only if needed)."""
    array = np.ascontiguousarray(array)
    return array.view(np.uint8).reshape(-1)


class NumbaKernelBackend:
    """Numba-backed implementation of the compiled-kernel protocol."""

    name = "numba"

    def __init__(self, numba) -> None:
        self._fused, self._gemm, self._patch = _build_kernels(numba)
        self._table = np.array(
            [bin(i).count("1") for i in range(256)], dtype=np.int32
        )

    def fused_xor_threshold_rows(self, a, b, acc_threshold, flip, out_words,
                                 row_start, row_stop, word_size,
                                 col_tile=None) -> None:
        self._fused(
            _flat_bytes(a), a.shape[1] * a.dtype.itemsize,
            _flat_bytes(b), b.shape[1] * b.dtype.itemsize,
            a.shape[1] * a.dtype.itemsize,
            np.ascontiguousarray(acc_threshold, dtype=np.int32),
            np.ascontiguousarray(flip, dtype=np.bool_),
            b.shape[0],
            out_words.view(np.uint8).reshape(-1),
            out_words.strides[0],
            int(row_start), int(row_stop), self._table,
        )

    def xor_popcount_gemm_rows(self, a, b, out, row_start, row_stop) -> None:
        self._gemm(
            _flat_bytes(a), a.shape[1] * a.dtype.itemsize,
            _flat_bytes(b), b.shape[1] * b.dtype.itemsize,
            a.shape[1] * a.dtype.itemsize, b.shape[0],
            out, int(row_start), int(row_stop), self._table,
        )

    def packed_patch_rows(self, packed, kernel_size, stride, padding,
                          oh, ow, out, row_start, row_stop) -> None:
        n, h, w, wc = packed.shape
        pix_bytes = wc * packed.dtype.itemsize
        self._patch(
            _flat_bytes(packed), h, w, pix_bytes,
            int(kernel_size), int(stride), int(padding), int(oh), int(ow),
            out.view(np.uint8).reshape(-1), out.strides[0],
            int(row_start), int(row_stop),
        )


def load() -> NumbaKernelBackend:
    """Import numba and JIT the kernels; raises BackendUnavailable."""
    from repro.core.backends import BackendUnavailable

    if sys.byteorder != "little":
        raise BackendUnavailable(
            "numba backend requires a little-endian host"
        )
    try:
        import numba
    except ImportError as exc:
        raise BackendUnavailable(f"numba is not installed: {exc}") from exc
    return NumbaKernelBackend(numba)
