"""Sequential network container.

A :class:`Network` is an ordered list of layers plus an input shape.  It
supports shape inference, functional forward execution, and the parameter /
memory accounting used for Table II of the paper.  The user-facing API
mirrors the paper's "construct network with C++ API" step (Fig. 3), just in
Python:

>>> net = Network("tiny", input_shape=(32, 32, 3), input_dtype="uint8")
>>> net.add(InputConv2d(3, 16, kernel_size=3, padding=1))      # doctest: +SKIP
>>> net.add(MaxPool2d(2))                                       # doctest: +SKIP
>>> output = net.forward(image)                                 # doctest: +SKIP
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

import numpy as np

from repro.core.layers.base import Layer, ParamCount
from repro.core.tensor import Layout, Tensor


class Network:
    """An ordered stack of PhoneBit layers."""

    def __init__(
        self,
        name: str,
        input_shape: Tuple[int, ...],
        input_dtype: str = "uint8",
        layers: Sequence[Layer] | None = None,
        metadata: dict | None = None,
    ) -> None:
        self.name = name
        self.input_shape = tuple(int(d) for d in input_shape)
        self.input_dtype = input_dtype
        self.layers: List[Layer] = []
        self.metadata = dict(metadata or {})
        for layer in layers or []:
            self.add(layer)

    # ------------------------------------------------------------- building
    def add(self, layer: Layer) -> "Network":
        """Append a layer (returns self so calls can be chained)."""
        if not isinstance(layer, Layer):
            raise TypeError(f"expected a Layer, got {type(layer).__name__}")
        # Validate immediately so shape errors point at the offending layer.
        self.layers.append(layer)
        try:
            self.output_shape()
        except ValueError:
            self.layers.pop()
            raise
        return self

    def extend(self, layers: Iterable[Layer]) -> "Network":
        """Append several layers."""
        for layer in layers:
            self.add(layer)
        return self

    def __len__(self) -> int:
        return len(self.layers)

    def __iter__(self):
        return iter(self.layers)

    # ------------------------------------------------------------- shapes
    def layer_shapes(self) -> List[Tuple[Layer, Tuple[int, ...], Tuple[int, ...]]]:
        """(layer, input_shape, output_shape) triples for every layer."""
        shapes = []
        current = self.input_shape
        for layer in self.layers:
            out = layer.output_shape(current)
            shapes.append((layer, current, out))
            current = out
        return shapes

    def output_shape(self, upto: int | None = None) -> Tuple[int, ...]:
        """Shape produced by the first ``upto`` layers (all by default)."""
        current = self.input_shape
        count = len(self.layers) if upto is None else upto
        for layer in self.layers[:count]:
            current = layer.output_shape(current)
        return current

    # ------------------------------------------------------------- forward
    def coerce_input(self, x) -> Tensor:
        """Wrap/validate a batch as a :class:`Tensor` with the right shape."""
        if not isinstance(x, Tensor):
            x = Tensor(np.asarray(x), Layout.NHWC)
        if x.data.shape[1:] != self.input_shape:
            raise ValueError(
                f"{self.name}: expected input shape (N,)+{self.input_shape}, "
                f"got {x.data.shape}"
            )
        return x

    def iter_forward(self, x):
        """Run the network layer by layer, yielding ``(layer, activation)``.

        The generator form lets callers (e.g. the engine's batched executor)
        observe per-layer outputs and wall-clock times without the network
        having to know about timing or buffering concerns.
        """
        current = self.coerce_input(x)
        for layer in self.layers:
            current = layer.forward(current)
            yield layer, current

    def forward(self, x, collect_activations: bool = False):
        """Run the network on a batch.

        Parameters
        ----------
        x:
            Input batch as an ndarray of shape ``(N,) + input_shape`` or a
            :class:`Tensor`.
        collect_activations:
            When True, also return the list of intermediate tensors.
        """
        current = self.coerce_input(x)
        activations = []
        for _, current in self.iter_forward(current):  # re-coercion is a no-op
            if collect_activations:
                activations.append(current)
        if collect_activations:
            return current, activations
        return current

    __call__ = forward

    # ------------------------------------------------------------- warm-up
    def warm(self, backend: "str | None" = None) -> "Network":
        """Pre-populate every lazy cache (returns self).

        Packs binary weights, compiles the fused execution plan (integer
        thresholds, arena layout — see :mod:`repro.core.plan`) *and*
        attaches compiled kernel backends to the plan's fused steps
        (``backend`` is a :data:`repro.core.backends.BACKEND_CHOICES` spec;
        ``None`` uses the process default), so a serving system pays build,
        compile and per-step verification costs at load time rather than on
        the first request.  Safe to call repeatedly — packed layers, a
        still-current plan and an unchanged backend spec are no-ops.
        """
        for layer in self.layers:
            getattr(layer, "weights_packed", None)
        from repro.core import plan as plan_mod  # local import: plan builds on layers

        plan_mod.get_plan(self).select_backend(backend)
        return self

    # ------------------------------------------------------------- accounting
    def param_count(self) -> ParamCount:
        """Aggregate parameter inventory across all layers."""
        total = ParamCount()
        for layer in self.layers:
            total = total + layer.param_count()
        return total

    def compressed_size_bytes(self) -> int:
        """Model size in PhoneBit's compressed storage format."""
        return self.param_count().compressed_bytes

    def full_precision_size_bytes(self) -> int:
        """Model size if every parameter were stored as float32."""
        return self.param_count().full_precision_bytes

    def compression_ratio(self) -> float:
        """Full-precision size divided by compressed size."""
        compressed = self.compressed_size_bytes()
        return self.full_precision_size_bytes() / compressed if compressed else float("inf")

    # ------------------------------------------------------------- reporting
    def summary(self) -> str:
        """Human-readable per-layer summary table."""
        lines = [f"Network {self.name!r} (input {self.input_shape}, {self.input_dtype})"]
        header = f"{'layer':<24}{'type':<16}{'output shape':<20}{'params':>12}"
        lines.append(header)
        lines.append("-" * len(header))
        for layer, _, out_shape in self.layer_shapes():
            params = layer.param_count().total
            lines.append(
                f"{layer.name:<24}{type(layer).__name__:<16}"
                f"{str(out_shape):<20}{params:>12,}"
            )
        count = self.param_count()
        lines.append("-" * len(header))
        lines.append(
            f"total params: {count.total:,} "
            f"(binary {count.binary:,}, float32 {count.float32:,}, int8 {count.int8:,})"
        )
        lines.append(
            f"compressed size: {self.compressed_size_bytes() / 2**20:.1f} MiB; "
            f"full precision: {self.full_precision_size_bytes() / 2**20:.1f} MiB"
        )
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return f"Network(name={self.name!r}, layers={len(self.layers)})"
