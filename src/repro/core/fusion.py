"""Layer integration: fusing binary convolution, batch-norm and binarization.

Section V-B of the paper shows that the three layers that normally follow
each other in a BNN block — binary convolution (with bias ``b``), batch
normalization (γ, β, µ, σ) and sign binarization — collapse into a single
per-channel threshold test.  With ``x1`` the raw binary-convolution result:

    x2 = x1 + b                                   (Eqn. 3)
    x3 = γ · (x2 − µ) / σ + β                      (Eqn. 4)
       = (γ / σ) · (x1 − ξ)                        (Eqn. 5)
    ξ  = µ − β · σ / γ − b                         (Eqn. 6)
    x4 = 1 if x3 ≥ 0 else 0                        (Eqn. 7)

so the output bit only depends on how ``x1`` compares to ``ξ`` and on the
sign of ``γ`` (Eqn. 8).  ``ξ`` is computed offline by the converter; at run
time the fused operator is a single comparison per output value, which also
removes the intermediate feature map writes between the three layers.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class BatchNormParams:
    """Learned batch-norm parameters and running statistics for one layer."""

    gamma: np.ndarray
    beta: np.ndarray
    mean: np.ndarray
    var: np.ndarray
    eps: float = 1e-5

    def __post_init__(self) -> None:
        arrays = [np.asarray(a, dtype=np.float64) for a in
                  (self.gamma, self.beta, self.mean, self.var)]
        shape = arrays[0].shape
        for arr in arrays[1:]:
            if arr.shape != shape:
                raise ValueError("batch-norm parameter shapes must match")
        if np.any(arrays[3] < 0):
            raise ValueError("variance must be non-negative")
        object.__setattr__(self, "gamma", arrays[0])
        object.__setattr__(self, "beta", arrays[1])
        object.__setattr__(self, "mean", arrays[2])
        object.__setattr__(self, "var", arrays[3])

    @property
    def sigma(self) -> np.ndarray:
        """Standard deviation used by the normalization (includes eps)."""
        return np.sqrt(self.var + self.eps)

    @property
    def channels(self) -> int:
        return int(self.gamma.shape[0])


def compute_threshold(bn: BatchNormParams, bias: np.ndarray | None = None) -> np.ndarray:
    """Compute the fused threshold ``ξ = µ − β·σ/γ − b`` (Eqn. 6).

    The paper's footnote notes that channels with ``γ = 0`` can be pruned
    (network slimming); such channels are rejected here because the fused
    comparison is undefined for them.
    """
    if np.any(bn.gamma == 0):
        raise ValueError(
            "fused threshold is undefined for channels with gamma == 0; "
            "prune those channels before conversion"
        )
    if bias is None:
        bias = np.zeros_like(bn.gamma)
    bias = np.asarray(bias, dtype=np.float64)
    if bias.shape != bn.gamma.shape:
        raise ValueError("bias shape must match batch-norm channel count")
    return bn.mean - bn.beta * bn.sigma / bn.gamma - bias


def batchnorm_forward(x: np.ndarray, bn: BatchNormParams) -> np.ndarray:
    """Unfused batch normalization over the channel (last) axis."""
    x = np.asarray(x, dtype=np.float64)
    return bn.gamma * (x - bn.mean) / bn.sigma + bn.beta


def fused_binarize(
    x1: np.ndarray, threshold: np.ndarray, gamma: np.ndarray
) -> np.ndarray:
    """Fused conv+BN+binarize output bits via the four-way test of Eqn. (8).

    This is the *reference* (branchy) formulation; the production kernel
    uses the branchless equivalent in :mod:`repro.core.branchless`.

    Parameters
    ----------
    x1:
        Raw binary-convolution output, shape ``(..., Cout)``.
    threshold:
        Per-channel thresholds ``ξ`` of shape ``(Cout,)``.
    gamma:
        Per-channel batch-norm scales (only their signs matter).
    """
    x1 = np.asarray(x1, dtype=np.float64)
    threshold = np.asarray(threshold, dtype=np.float64)
    gamma = np.asarray(gamma, dtype=np.float64)
    positive = gamma > 0
    bits = np.where(
        positive,
        (x1 >= threshold),
        (x1 <= threshold),
    )
    return bits.astype(np.uint8)


def unfused_block_reference(
    x1: np.ndarray,
    bn: BatchNormParams,
    bias: np.ndarray | None = None,
) -> np.ndarray:
    """Reference pipeline: bias add → batch-norm → sign binarize (Eqns. 3–7).

    Used by the tests to show the fused operator is exactly equivalent to
    running the three layers separately.
    """
    x1 = np.asarray(x1, dtype=np.float64)
    if bias is not None:
        x1 = x1 + np.asarray(bias, dtype=np.float64)
    x3 = batchnorm_forward(x1, bn)
    return (x3 >= 0).astype(np.uint8)


def exact_integer_threshold(predicate, channels: int, lo: int, hi: int):
    """Exact integer decision threshold of a per-channel monotone predicate.

    The fused binary operators compare an *integer* pre-activation ``x1``
    against a per-channel decision boundary.  Rather than re-deriving the
    boundary analytically for every execution-path variant (fused float64
    compare, float32 affine + batch-norm + sign on the unfused path, …),
    this helper extracts it from the path's own reference computation: given
    ``predicate`` — a vectorized function mapping a candidate ``x1`` value
    per channel (int64 array of shape ``(channels,)``) to the output bits it
    would produce — it binary-searches the exact crossover point channel by
    channel.

    Returns ``(threshold, flip)`` (int64 / bool arrays) such that for every
    integer ``x`` in ``[lo, hi]``::

        predicate(x)[c] == (x >= threshold[c]) ^ flip[c]

    ``predicate`` must be monotone per channel over ``[lo, hi]`` in either
    direction — true for every conv/BN/sign pipeline in this codebase, since
    each stage is a monotone (or anti-monotone, for negative γ) map and IEEE
    rounding preserves ordering.  The result is therefore *bit-exact* with
    the reference path by construction, including float32 rounding at the
    boundary.  Cost is one ``(channels,)``-sized predicate evaluation per
    bisection step: ``O(log2(hi - lo))`` evaluations at compile time.
    """
    if hi <= lo:
        raise ValueError("exact_integer_threshold needs a non-empty range")
    bot = np.asarray(predicate(np.full(channels, lo, dtype=np.int64))).astype(bool)
    top = np.asarray(predicate(np.full(channels, hi, dtype=np.int64))).astype(bool)
    if bot.shape != (channels,) or top.shape != (channels,):
        raise ValueError("predicate must return one bit per channel")
    decreasing = bot & ~top
    const = bot == top
    # Invariant for non-constant channels: g(lo) == 0, g(hi) == 1 where
    # g(x) = predicate(x) ^ decreasing is monotone increasing; bisect to the
    # smallest x with g(x) == 1.
    lo_v = np.full(channels, lo, dtype=np.int64)
    hi_v = np.full(channels, hi, dtype=np.int64)
    while True:
        gap = hi_v - lo_v
        if not np.any(gap > 1):
            break
        mid = lo_v + gap // 2
        g = np.asarray(predicate(mid)).astype(bool) ^ decreasing
        hi_v = np.where(g, mid, hi_v)
        lo_v = np.where(g, lo_v, mid)
    # Constant channels: bit is always ``bot``; encode as an always-true
    # comparison (threshold = lo) flipped when the constant bit is 0.
    threshold = np.where(const, lo, hi_v).astype(np.int64)
    flip = np.where(const, ~bot, decreasing).astype(bool)
    return threshold, flip


def fold_batchnorm_affine(bn: BatchNormParams, bias: np.ndarray | None = None):
    """Fold batch-norm into an affine ``scale·x + offset`` for float layers.

    The last layer of the benchmark networks stays in full precision; when
    it is followed by batch-norm the converter folds the normalization into
    a per-channel scale/offset pair instead of a binary threshold.
    """
    scale = bn.gamma / bn.sigma
    if bias is None:
        bias = np.zeros_like(bn.gamma)
    offset = bn.beta - scale * (bn.mean - np.asarray(bias, dtype=np.float64))
    return scale, offset


def affine_head_values(
    bn: BatchNormParams, bias: np.ndarray | None, x1: np.ndarray
) -> np.ndarray:
    """Float head values for integer pre-activations: the folded BN affine.

    Single definition of the exact cast chain (float64 multiply-add, float32
    result) shared by the conv and dense float heads — the execution-plan
    compiler bisects this computation to fold ``conv → BatchNorm2d →
    Binarize`` blocks, so the two layer types must stay bit-identical.
    """
    scale, offset = fold_batchnorm_affine(bn, bias)
    values = scale * np.asarray(x1, dtype=np.float64) + offset
    return values.astype(np.float32)
