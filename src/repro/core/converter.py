"""Conversion of trained float models into PhoneBit networks.

The deployment flow of Fig. 2 starts from a model trained with an existing
BNN training framework (float "latent" weights, batch-norm statistics) and
converts it into the compressed PhoneBit format.  The converter here does
the same:

* latent float weights are binarized with the sign function;
* batch-norm parameters and biases are folded into the fused thresholds
  ``ξ`` (Eqn. 6) by the layer constructors;
* full-precision layers (the first/last layers that BNNs keep in float, or
  any layer explicitly marked non-binary) are carried over unchanged;
* the result is a :class:`~repro.core.network.Network` that can be saved to
  a ``.pbit`` file with :func:`repro.core.model_format.save_network`.

The input is a list of :class:`LayerSpec` records, a framework-neutral
description of a sequential model (the training module and the model zoo
both produce it).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.core.binarize import binarize_sign
from repro.core.fusion import BatchNormParams
from repro.core.layers import (
    AvgPool2d,
    BinaryConv2d,
    BinaryDense,
    Dense,
    Flatten,
    FloatConv2d,
    InputConv2d,
    MaxPool2d,
)
from repro.core.network import Network


@dataclass
class LayerSpec:
    """Framework-neutral description of one layer of a trained model.

    Attributes
    ----------
    kind:
        One of ``"conv"``, ``"dense"``, ``"maxpool"``, ``"avgpool"``,
        ``"flatten"``.
    weights:
        Float weights — ``(KH, KW, Cin, Cout)`` for conv, ``(In, Out)`` for
        dense.  Ignored for pooling/flatten.
    batchnorm:
        Batch-norm parameters to fold (optional).
    bias:
        Per-output bias (optional).
    binary:
        Whether the layer should be binarized (weights → sign bits, output →
        fused threshold).  Non-binary conv/dense layers stay float.
    input_layer:
        Marks the first layer, which receives 8-bit images and therefore
        uses the bit-plane convolution.
    output_binary:
        Whether the layer's output feeds another binary layer (False for the
        layer right before a float head).
    stride, padding, pool_size, activation:
        Usual geometry / activation attributes.
    """

    kind: str
    weights: Optional[np.ndarray] = None
    batchnorm: Optional[BatchNormParams] = None
    bias: Optional[np.ndarray] = None
    binary: bool = True
    input_layer: bool = False
    output_binary: bool = True
    stride: int = 1
    padding: int = 0
    pool_size: int = 2
    pool_stride: Optional[int] = None
    pool_padding: int = 0
    activation: Optional[str] = None
    name: Optional[str] = None
    extras: dict = field(default_factory=dict)


def binarize_weights(weights: np.ndarray) -> np.ndarray:
    """Binarize latent float weights to sign bits (≥ 0 → 1, < 0 → 0)."""
    return binarize_sign(np.asarray(weights))


def _convert_conv(spec: LayerSpec, word_size: int, name: str):
    weights = np.asarray(spec.weights)
    if weights.ndim != 4:
        raise ValueError(f"conv layer {name!r} needs (KH, KW, Cin, Cout) weights")
    kh, kw, cin, cout = weights.shape
    if not spec.binary:
        return FloatConv2d(
            cin, cout, kh, stride=spec.stride, padding=spec.padding,
            use_bias=spec.bias is not None, activation=spec.activation,
            weights=weights, bias=spec.bias, name=name,
        )
    weight_bits = binarize_weights(weights)
    cls = InputConv2d if spec.input_layer else BinaryConv2d
    return cls(
        cin, cout, kh, stride=spec.stride, padding=spec.padding,
        word_size=word_size, output_binary=spec.output_binary,
        weight_bits=weight_bits, batchnorm=spec.batchnorm, bias=spec.bias,
        name=name,
    )


def _convert_dense(spec: LayerSpec, word_size: int, name: str):
    weights = np.asarray(spec.weights)
    if weights.ndim != 2:
        raise ValueError(f"dense layer {name!r} needs (In, Out) weights")
    n_in, n_out = weights.shape
    if not spec.binary:
        return Dense(
            n_in, n_out, use_bias=spec.bias is not None,
            activation=spec.activation, weights=weights, bias=spec.bias, name=name,
        )
    weight_bits = binarize_weights(weights)
    return BinaryDense(
        n_in, n_out, word_size=word_size, output_binary=spec.output_binary,
        weight_bits=weight_bits, batchnorm=spec.batchnorm, bias=spec.bias, name=name,
    )


def convert_model(
    name: str,
    input_shape: tuple,
    specs: Sequence[LayerSpec],
    word_size: int = 64,
    input_dtype: str = "uint8",
    metadata: dict | None = None,
) -> Network:
    """Convert a trained sequential float model into a PhoneBit network."""
    network = Network(name, input_shape=input_shape, input_dtype=input_dtype,
                      metadata=metadata)
    counters: dict = {}
    for spec in specs:
        counters[spec.kind] = counters.get(spec.kind, 0) + 1
        layer_name = spec.name or f"{spec.kind}{counters[spec.kind]}"
        if spec.kind == "conv":
            network.add(_convert_conv(spec, word_size, layer_name))
        elif spec.kind == "dense":
            network.add(_convert_dense(spec, word_size, layer_name))
        elif spec.kind == "maxpool":
            network.add(
                MaxPool2d(spec.pool_size, spec.pool_stride, padding=spec.pool_padding,
                          name=layer_name)
            )
        elif spec.kind == "avgpool":
            network.add(AvgPool2d(spec.pool_size, spec.pool_stride, name=layer_name))
        elif spec.kind == "flatten":
            network.add(Flatten(word_size=word_size, name=layer_name))
        else:
            raise ValueError(f"unknown layer kind {spec.kind!r}")
    return network


@dataclass
class ConversionReport:
    """Summary of a model conversion (for logging / examples)."""

    network: Network
    binary_layers: int
    float_layers: int
    compressed_mb: float
    full_precision_mb: float

    @property
    def compression_ratio(self) -> float:
        return self.full_precision_mb / self.compressed_mb if self.compressed_mb else float("inf")


def convert_with_report(
    name: str,
    input_shape: tuple,
    specs: Sequence[LayerSpec],
    word_size: int = 64,
    input_dtype: str = "uint8",
) -> ConversionReport:
    """Convert a model and compute the size statistics reported in Table II."""
    network = convert_model(name, input_shape, specs, word_size=word_size,
                            input_dtype=input_dtype)
    binary_layers = sum(
        1 for layer in network.layers
        if isinstance(layer, (InputConv2d, BinaryConv2d, BinaryDense))
    )
    float_layers = sum(
        1 for layer in network.layers if isinstance(layer, (FloatConv2d, Dense))
    )
    return ConversionReport(
        network=network,
        binary_layers=binary_layers,
        float_layers=float_layers,
        compressed_mb=network.compressed_size_bytes() / 2**20,
        full_precision_mb=network.full_precision_size_bytes() / 2**20,
    )
