"""The compressed PhoneBit model format (``.pbit``).

The deployment flow in Fig. 2 of the paper converts a trained BNN model into
a compressed PhoneBit file that is uploaded to the phone and loaded by the
C++ API.  The format implemented here keeps the same spirit:

* binary filter weights are stored *packed* (one bit per weight);
* the fused per-channel thresholds ``ξ`` and the batch-norm scale signs are
  stored as float32 vectors;
* full-precision layers store float32 weights;
* the file is self-describing — a JSON header lists every layer with its
  hyper-parameters and the offset/shape/dtype of each attached array.

Layout of a ``.pbit`` file::

    bytes 0..3    magic  b"PBIT"
    bytes 4..5    format version (uint16, little endian)
    bytes 6..13   header length H (uint64, little endian)
    bytes 14..    JSON header (H bytes, UTF-8)
    ...           concatenated raw array payloads, 8-byte aligned
"""

from __future__ import annotations

import io
import json
from typing import BinaryIO, Dict, List, Tuple

import numpy as np

from repro.core import bitpack
from repro.core.fusion import BatchNormParams
from repro.core.layers import (
    AvgPool2d,
    BatchNorm2d,
    Binarize,
    BinaryConv2d,
    BinaryDense,
    Dense,
    Flatten,
    FloatConv2d,
    InputConv2d,
    MaxPool2d,
    Relu,
    Softmax,
)
from repro.core.network import Network

MAGIC = b"PBIT"
FORMAT_VERSION = 1
_ALIGNMENT = 8


class ModelFormatError(RuntimeError):
    """Raised when a ``.pbit`` payload cannot be parsed."""


# --------------------------------------------------------------------------
# per-layer (de)serialization
# --------------------------------------------------------------------------

def _bn_from_threshold(threshold: np.ndarray, gamma: np.ndarray) -> BatchNormParams:
    """Reconstruct batch-norm parameters that reproduce a fused threshold.

    Only the threshold and the sign of γ affect a fused binary layer, so the
    reconstruction picks β = 0, µ = ξ and σ = 1; the resulting layer is
    functionally identical to the one that was saved.
    """
    channels = threshold.shape[0]
    return BatchNormParams(
        gamma=gamma.astype(np.float64),
        beta=np.zeros(channels),
        mean=threshold.astype(np.float64),
        var=np.full(channels, 1.0 - 1e-5),
    )


def _bn_from_affine(scale: np.ndarray, offset: np.ndarray) -> BatchNormParams:
    """Reconstruct batch-norm parameters that reproduce a folded affine."""
    channels = scale.shape[0]
    return BatchNormParams(
        gamma=scale.astype(np.float64),
        beta=offset.astype(np.float64),
        mean=np.zeros(channels),
        var=np.full(channels, 1.0 - 1e-5),
    )


def _unpack_conv_weights(weights_packed: np.ndarray, in_channels: int) -> np.ndarray:
    """Invert :func:`repro.core.binary_conv.pack_weights`."""
    transposed = np.transpose(weights_packed, (1, 2, 3, 0))  # (KH, KW, Wc, Cout)
    return bitpack.unpack_bits(transposed, in_channels, axis=2)


def _unpack_dense_weights(weights_packed: np.ndarray, in_features: int) -> np.ndarray:
    """Invert the packing used by :class:`BinaryDense`."""
    return bitpack.unpack_bits(np.ascontiguousarray(weights_packed.T), in_features, axis=0)


def _serialize_binary_conv(layer) -> Tuple[dict, Dict[str, np.ndarray]]:
    config = {
        "in_channels": layer.in_channels,
        "out_channels": layer.out_channels,
        "kernel_size": layer.kernel_size,
        "stride": layer.stride,
        "padding": layer.padding,
        "word_size": layer.word_size,
        "output_binary": layer.output_binary,
    }
    if isinstance(layer, InputConv2d):
        config["input_bits"] = layer.input_bits
    arrays = {
        "weights_packed": layer.weights_packed,
        "threshold": layer.threshold.astype(np.float32),
        "gamma": layer.gamma.astype(np.float32),
        "bias": layer.bias.astype(np.float32),
    }
    if not layer.output_binary:
        from repro.core.fusion import fold_batchnorm_affine

        scale, offset = fold_batchnorm_affine(layer.batchnorm, layer.bias)
        arrays["scale"] = scale.astype(np.float32)
        arrays["offset"] = offset.astype(np.float32)
    return config, arrays


def _deserialize_binary_conv(cls, name, config, arrays, zero_copy=False):
    weights_packed = arrays["weights_packed"]
    if zero_copy:
        weight_kwargs = {"weights_packed": weights_packed}
    else:
        weight_kwargs = {
            "weight_bits": _unpack_conv_weights(weights_packed, config["in_channels"])
        }
    if config["output_binary"]:
        bn = _bn_from_threshold(arrays["threshold"], arrays["gamma"])
        bias = None
    else:
        bn = _bn_from_affine(arrays["scale"], arrays["offset"])
        bias = None
    kwargs = {}
    if cls is InputConv2d:
        kwargs["input_bits"] = config.get("input_bits", 8)
    return cls(
        config["in_channels"],
        config["out_channels"],
        config["kernel_size"],
        stride=config["stride"],
        padding=config["padding"],
        word_size=config["word_size"],
        output_binary=config["output_binary"],
        batchnorm=bn,
        bias=bias,
        name=name,
        **weight_kwargs,
        **kwargs,
    )


def _serialize_binary_dense(layer: BinaryDense) -> Tuple[dict, Dict[str, np.ndarray]]:
    config = {
        "in_features": layer.in_features,
        "out_features": layer.out_features,
        "word_size": layer.word_size,
        "output_binary": layer.output_binary,
    }
    arrays = {
        "weights_packed": layer.weights_packed,
        "threshold": layer.threshold.astype(np.float32),
        "gamma": layer.gamma.astype(np.float32),
    }
    if not layer.output_binary:
        from repro.core.fusion import fold_batchnorm_affine

        scale, offset = fold_batchnorm_affine(layer.batchnorm, layer.bias)
        arrays["scale"] = scale.astype(np.float32)
        arrays["offset"] = offset.astype(np.float32)
    return config, arrays


def _deserialize_binary_dense(name, config, arrays, zero_copy=False) -> BinaryDense:
    if zero_copy:
        weight_kwargs = {"weights_packed": arrays["weights_packed"]}
    else:
        weight_kwargs = {
            "weight_bits": _unpack_dense_weights(
                arrays["weights_packed"], config["in_features"]
            )
        }
    if config["output_binary"]:
        bn = _bn_from_threshold(arrays["threshold"], arrays["gamma"])
    else:
        bn = _bn_from_affine(arrays["scale"], arrays["offset"])
    return BinaryDense(
        config["in_features"],
        config["out_features"],
        word_size=config["word_size"],
        output_binary=config["output_binary"],
        batchnorm=bn,
        name=name,
        **weight_kwargs,
    )


def _layer_record(layer) -> Tuple[str, dict, Dict[str, np.ndarray]]:
    """(type name, config, arrays) for one layer."""
    if isinstance(layer, InputConv2d):
        config, arrays = _serialize_binary_conv(layer)
        return "input_conv2d", config, arrays
    if isinstance(layer, BinaryConv2d):
        config, arrays = _serialize_binary_conv(layer)
        return "binary_conv2d", config, arrays
    if isinstance(layer, FloatConv2d):
        config = {
            "in_channels": layer.in_channels,
            "out_channels": layer.out_channels,
            "kernel_size": layer.kernel_size,
            "stride": layer.stride,
            "padding": layer.padding,
            "use_bias": layer.use_bias,
            "activation": layer.activation,
        }
        return "float_conv2d", config, {"weights": layer.weights, "bias": layer.bias}
    if isinstance(layer, BinaryDense):
        config, arrays = _serialize_binary_dense(layer)
        return "binary_dense", config, arrays
    if isinstance(layer, Dense):
        config = {
            "in_features": layer.in_features,
            "out_features": layer.out_features,
            "use_bias": layer.use_bias,
            "activation": layer.activation,
        }
        return "dense", config, {"weights": layer.weights, "bias": layer.bias}
    if isinstance(layer, MaxPool2d):
        return "max_pool2d", {
            "pool_size": layer.pool_size,
            "stride": layer.stride,
            "padding": layer.padding,
        }, {}
    if isinstance(layer, AvgPool2d):
        return "avg_pool2d", {"pool_size": layer.pool_size, "stride": layer.stride}, {}
    if isinstance(layer, BatchNorm2d):
        params = layer.params
        return "batch_norm2d", {"eps": params.eps}, {
            "gamma": params.gamma.astype(np.float32),
            "beta": params.beta.astype(np.float32),
            "mean": params.mean.astype(np.float32),
            "var": params.var.astype(np.float32),
        }
    if isinstance(layer, Binarize):
        return "binarize", {"word_size": layer.word_size}, {}
    if isinstance(layer, Flatten):
        return "flatten", {"word_size": layer.word_size}, {}
    if isinstance(layer, Relu):
        return "relu", {}, {}
    if isinstance(layer, Softmax):
        return "softmax", {}, {}
    raise ModelFormatError(f"layer type {type(layer).__name__} cannot be serialized")


def _build_layer(type_name: str, name: str, config: dict,
                 arrays: Dict[str, np.ndarray], zero_copy: bool = False):
    if type_name == "input_conv2d":
        return _deserialize_binary_conv(InputConv2d, name, config, arrays, zero_copy)
    if type_name == "binary_conv2d":
        return _deserialize_binary_conv(BinaryConv2d, name, config, arrays, zero_copy)
    if type_name == "float_conv2d":
        return FloatConv2d(
            config["in_channels"], config["out_channels"], config["kernel_size"],
            stride=config["stride"], padding=config["padding"],
            use_bias=config["use_bias"], activation=config["activation"],
            weights=arrays["weights"], bias=arrays["bias"], name=name,
        )
    if type_name == "binary_dense":
        return _deserialize_binary_dense(name, config, arrays, zero_copy)
    if type_name == "dense":
        return Dense(
            config["in_features"], config["out_features"],
            use_bias=config["use_bias"], activation=config["activation"],
            weights=arrays["weights"], bias=arrays["bias"], name=name,
        )
    if type_name == "max_pool2d":
        return MaxPool2d(config["pool_size"], config["stride"],
                         padding=config.get("padding", 0), name=name)
    if type_name == "avg_pool2d":
        return AvgPool2d(config["pool_size"], config["stride"], name=name)
    if type_name == "batch_norm2d":
        params = BatchNormParams(
            gamma=arrays["gamma"], beta=arrays["beta"],
            mean=arrays["mean"], var=arrays["var"], eps=config.get("eps", 1e-5),
        )
        return BatchNorm2d(params, name=name)
    if type_name == "binarize":
        return Binarize(word_size=config.get("word_size", 64), name=name)
    if type_name == "flatten":
        return Flatten(word_size=config.get("word_size", 64), name=name)
    if type_name == "relu":
        return Relu(name=name)
    if type_name == "softmax":
        return Softmax(name=name)
    raise ModelFormatError(f"unknown layer type {type_name!r} in model file")


# --------------------------------------------------------------------------
# container
# --------------------------------------------------------------------------

def _aligned(offset: int) -> int:
    remainder = offset % _ALIGNMENT
    return offset if remainder == 0 else offset + (_ALIGNMENT - remainder)


def save_network(network: Network, target) -> int:
    """Serialize a network to ``target`` (path or binary file object).

    Returns the number of payload bytes written.
    """
    layer_entries: List[dict] = []
    payload = io.BytesIO()
    for layer in network.layers:
        type_name, config, arrays = _layer_record(layer)
        array_entries = {}
        for array_name, array in arrays.items():
            array = np.ascontiguousarray(array)
            offset = _aligned(payload.tell())
            payload.write(b"\x00" * (offset - payload.tell()))
            payload.write(array.tobytes())
            array_entries[array_name] = {
                "offset": offset,
                "shape": list(array.shape),
                "dtype": array.dtype.str,
            }
        layer_entries.append(
            {
                "type": type_name,
                "name": layer.name,
                "config": config,
                "arrays": array_entries,
            }
        )
    header = {
        "name": network.name,
        "input_shape": list(network.input_shape),
        "input_dtype": network.input_dtype,
        "metadata": network.metadata,
        "layers": layer_entries,
    }
    header_bytes = json.dumps(header).encode("utf-8")
    payload_bytes = payload.getvalue()

    def _write(stream: BinaryIO) -> int:
        stream.write(MAGIC)
        stream.write(FORMAT_VERSION.to_bytes(2, "little"))
        stream.write(len(header_bytes).to_bytes(8, "little"))
        stream.write(header_bytes)
        stream.write(payload_bytes)
        return len(payload_bytes)

    if hasattr(target, "write"):
        return _write(target)
    with open(target, "wb") as handle:
        return _write(handle)


def serialize_network(network: Network) -> bytes:
    """Serialize ``network`` to an in-memory ``.pbit`` payload.

    Convenience wrapper over :func:`save_network` used by the shared-memory
    model store, which needs the byte length before allocating the segment.

    Examples
    --------
    >>> from repro.models.zoo import build_phonebit_network, micro_cnn_config
    >>> raw = serialize_network(build_phonebit_network(micro_cnn_config()))
    >>> raw[:4]
    b'PBIT'
    """
    buffer = io.BytesIO()
    save_network(network, buffer)
    return buffer.getvalue()


def load_network(source) -> Network:
    """Deserialize a network from ``source`` (path or binary file object).

    Every array is copied out of the file image, so the returned network
    owns its memory.  To attach to an existing buffer without copying the
    bulk weights (e.g. a ``multiprocessing.shared_memory`` segment), use
    :func:`load_network_from_buffer` with ``zero_copy=True``.
    """
    if hasattr(source, "read"):
        raw = source.read()
    else:
        with open(source, "rb") as handle:
            raw = handle.read()
    return load_network_from_buffer(raw)


def load_network_from_buffer(buffer, zero_copy: bool = False) -> Network:
    """Deserialize a network from a bytes-like ``.pbit`` image.

    Parameters
    ----------
    buffer:
        Bytes-like object (``bytes``, ``memoryview``, ``shm.buf``) holding a
        complete ``.pbit`` image.
    zero_copy:
        When True, the packed binary weights of conv/dense layers are
        *views* into ``buffer`` — nothing is unpacked or copied, which is
        how cluster workers attach to the shared-memory model store.  The
        caller must keep the underlying buffer alive (and should keep it
        unmodified) for the lifetime of the returned network; weight arrays
        are frozen read-only.  Small per-channel vectors (thresholds, γ,
        batch-norm statistics) are always copied into float64 working form
        by layer construction.

    Returns
    -------
    Network
        Functionally identical to the network that was saved; outputs are
        bit-identical between ``zero_copy=True`` and ``False``.
    """
    view = memoryview(buffer)
    if bytes(view[:4]) != MAGIC:
        raise ModelFormatError("not a PhoneBit model file (bad magic)")
    version = int.from_bytes(view[4:6], "little")
    if version != FORMAT_VERSION:
        raise ModelFormatError(f"unsupported format version {version}")
    header_len = int.from_bytes(view[6:14], "little")
    header = json.loads(bytes(view[14:14 + header_len]).decode("utf-8"))
    payload = view[14 + header_len:]

    layers = []
    for entry in header["layers"]:
        arrays = {}
        for array_name, info in entry["arrays"].items():
            dtype = np.dtype(info["dtype"])
            shape = tuple(info["shape"])
            count = int(np.prod(shape)) if shape else 1
            start = info["offset"]
            stop = start + count * dtype.itemsize
            array = np.frombuffer(payload[start:stop], dtype=dtype).reshape(shape)
            if zero_copy:
                if array.flags.writeable:
                    array.setflags(write=False)
            else:
                array = array.copy()
            arrays[array_name] = array
        layers.append(
            _build_layer(entry["type"], entry["name"], entry["config"], arrays,
                         zero_copy=zero_copy)
        )
    return Network(
        header["name"],
        input_shape=tuple(header["input_shape"]),
        input_dtype=header["input_dtype"],
        layers=layers,
        metadata=header.get("metadata", {}),
    )
