"""Binary convolution kernels (Eqn. 1) and the bit-plane input convolution (Eqn. 2).

All kernels operate on NHWC activations (the PhoneBit data layout) and store
binary weights packed along the channel dimension, exactly as the OpenCL
kernels in the paper do.  The functional results are bit-exact with a float
reference convolution over ±1 values, which the test-suite verifies.

Spatial zero padding pads packed words with 0, i.e. padded pixels behave as
all-(−1) activations.  The float reference used for verification therefore
pads with −1 as well (``pad_value=-1``); this mirrors how a real BNN kernel
treats padding when ``Len`` in Eqn. (1) is the full kernel volume.
"""

from __future__ import annotations

import numpy as np

from repro.core import bitpack
from repro.core.binarize import bitplane_weights, split_bitplanes
from repro.core.tensor import conv_output_size, pad_spatial_nhwc

#: Output-channel block size used when evaluating packed dot products; keeps
#: the intermediate xor/popcount buffers small.
_COUT_BLOCK = 64


def im2col_nhwc(
    x: np.ndarray,
    kernel_size: int,
    stride: int = 1,
    padding: int = 0,
    pad_value: float = 0.0,
) -> np.ndarray:
    """Extract convolution patches from an NHWC tensor.

    Returns an array of shape ``(N, OH, OW, KH*KW*C)`` whose last axis is
    ordered ``(kh, kw, c)`` — channels innermost, matching the NHWC layout
    and therefore the packed-word ordering.
    """
    x = np.asarray(x)
    if x.ndim != 4:
        raise ValueError(f"expected NHWC input, got shape {x.shape}")
    n, h, w, c = x.shape
    oh = conv_output_size(h, kernel_size, stride, padding)
    ow = conv_output_size(w, kernel_size, stride, padding)
    padded = pad_spatial_nhwc(x, padding, value=pad_value)
    patches = np.empty((n, oh, ow, kernel_size, kernel_size, c), dtype=x.dtype)
    for kh in range(kernel_size):
        for kw in range(kernel_size):
            h_end = kh + stride * oh
            w_end = kw + stride * ow
            patches[:, :, :, kh, kw, :] = padded[:, kh:h_end:stride, kw:w_end:stride, :]
    return patches.reshape(n, oh, ow, kernel_size * kernel_size * c)


def conv2d_float_nhwc(
    x: np.ndarray,
    weights: np.ndarray,
    stride: int = 1,
    padding: int = 0,
    pad_value: float = 0.0,
    bias: np.ndarray | None = None,
) -> np.ndarray:
    """Reference float convolution on NHWC activations.

    Parameters
    ----------
    x:
        Input of shape ``(N, H, W, Cin)``.
    weights:
        Filter bank of shape ``(KH, KW, Cin, Cout)`` with ``KH == KW``.
    stride, padding:
        Convolution stride and symmetric spatial padding.
    pad_value:
        Value used for spatial padding (−1 when emulating binary padding).
    bias:
        Optional per-output-channel bias of shape ``(Cout,)``.
    """
    weights = np.asarray(weights, dtype=np.float64)
    kh, kw, cin, cout = weights.shape
    if kh != kw:
        raise ValueError("only square kernels are supported")
    patches = im2col_nhwc(
        np.asarray(x, dtype=np.float64), kh, stride, padding, pad_value
    )
    flat_w = weights.reshape(kh * kw * cin, cout)
    out = patches @ flat_w
    if bias is not None:
        out = out + np.asarray(bias, dtype=np.float64)
    return out


def pack_weights(weight_bits: np.ndarray, word_size: int = 64) -> np.ndarray:
    """Pack binary filter weights along the input-channel dimension.

    Parameters
    ----------
    weight_bits:
        Bits of shape ``(KH, KW, Cin, Cout)`` (1 ↦ +1, 0 ↦ −1).
    word_size:
        Packing word width.

    Returns
    -------
    numpy.ndarray
        Packed filters of shape ``(Cout, KH, KW, ceil(Cin/word_size))``.
    """
    weight_bits = np.asarray(weight_bits)
    if weight_bits.ndim != 4:
        raise ValueError(f"expected (KH, KW, Cin, Cout) bits, got {weight_bits.shape}")
    packed = bitpack.pack_bits(weight_bits, word_size=word_size, axis=2)
    return np.ascontiguousarray(np.transpose(packed, (3, 0, 1, 2)))


def pack_activations(activation_bits: np.ndarray, word_size: int = 64) -> np.ndarray:
    """Pack binarized NHWC activations along the channel dimension."""
    activation_bits = np.asarray(activation_bits)
    if activation_bits.ndim != 4:
        raise ValueError(f"expected NHWC bits, got shape {activation_bits.shape}")
    return bitpack.pack_bits(activation_bits, word_size=word_size, axis=3)


def _blocked_dot(
    patches: np.ndarray,
    filters: np.ndarray,
    combine,
) -> np.ndarray:
    """Apply a packed-word reduction between every patch and every filter.

    ``patches`` has shape ``(P, K)``, ``filters`` has shape ``(Cout, K)``;
    ``combine(p_block, f_block)`` receives broadcastable packed-word blocks
    and must reduce the trailing word axis, returning ``(p, cout)`` int64.
    """
    n_patches = patches.shape[0]
    n_filters = filters.shape[0]
    out = np.empty((n_patches, n_filters), dtype=np.int64)
    for start in range(0, n_filters, _COUT_BLOCK):
        stop = min(start + _COUT_BLOCK, n_filters)
        block = filters[start:stop]
        out[:, start:stop] = combine(patches[:, None, :], block[None, :, :])
    return out


def binary_conv2d_packed(
    x_packed: np.ndarray,
    weights_packed: np.ndarray,
    true_channels: int,
    kernel_size: int,
    stride: int = 1,
    padding: int = 0,
) -> np.ndarray:
    """Binary convolution on packed activations and filters — Eqn. (1).

    Parameters
    ----------
    x_packed:
        Packed NHWC activations of shape ``(N, H, W, Wc)``.
    weights_packed:
        Packed filters of shape ``(Cout, KH, KW, Wc)`` from :func:`pack_weights`.
    true_channels:
        Unpadded input channel count ``Cin``.
    kernel_size, stride, padding:
        Convolution geometry.

    Returns
    -------
    numpy.ndarray
        Integer pre-activations ``x1`` of shape ``(N, OH, OW, Cout)``; each
        value equals the ±1 dot product over the kernel volume.
    """
    x_packed = np.asarray(x_packed)
    weights_packed = np.asarray(weights_packed)
    cout = weights_packed.shape[0]
    n = x_packed.shape[0]
    patches = im2col_nhwc(x_packed, kernel_size, stride, padding, pad_value=0)
    _, oh, ow, k = patches.shape
    flat_patches = patches.reshape(-1, k)
    flat_filters = weights_packed.reshape(cout, -1)
    if flat_filters.shape[1] != k:
        raise ValueError("activation and filter packing widths do not match")
    length = kernel_size * kernel_size * true_channels

    def combine(p_block, f_block):
        disagree = bitpack.popcount(np.bitwise_xor(p_block, f_block)).sum(
            axis=-1, dtype=np.int64
        )
        return length - 2 * disagree

    out = _blocked_dot(flat_patches, flat_filters, combine)
    return out.reshape(n, oh, ow, cout)


def binary_conv2d_reference(
    x_bits: np.ndarray,
    weight_bits: np.ndarray,
    kernel_size: int,
    stride: int = 1,
    padding: int = 0,
) -> np.ndarray:
    """Float reference for :func:`binary_conv2d_packed` (±1 arithmetic)."""
    x_values = 2.0 * np.asarray(x_bits, dtype=np.float64) - 1.0
    w_values = 2.0 * np.asarray(weight_bits, dtype=np.float64) - 1.0
    out = conv2d_float_nhwc(
        x_values, w_values, stride=stride, padding=padding, pad_value=-1.0
    )
    return np.rint(out).astype(np.int64)


def input_conv2d_bitplanes(
    image: np.ndarray,
    weights_packed: np.ndarray,
    true_channels: int,
    kernel_size: int,
    stride: int = 1,
    padding: int = 0,
    input_bits: int = 8,
    word_size: int | None = None,
) -> np.ndarray:
    """First-layer convolution of an integer image with binary weights (Eqn. 2).

    The 8-bit image is split into bit-planes; each unipolar plane is packed
    and convolved with the ±1 weights using the and/popcount dot product,
    then the plane results are recombined with their power-of-two weights.

    Parameters
    ----------
    image:
        Unsigned integer NHWC image of shape ``(N, H, W, Cin)``.
    weights_packed:
        Packed ±1 filters of shape ``(Cout, KH, KW, Wc)``.
    true_channels:
        Unpadded input channel count (3 for RGB images).
    input_bits:
        Bit width of the integer input (8 for uint8 images).
    word_size:
        Packing word width used for the activations; inferred from the
        packed weights when omitted.

    Returns
    -------
    numpy.ndarray
        Integer pre-activations of shape ``(N, OH, OW, Cout)`` equal to the
        exact integer convolution ``I · W``.
    """
    image = np.asarray(image)
    weights_packed = np.asarray(weights_packed)
    if word_size is None:
        word_size = weights_packed.dtype.itemsize * 8
    planes = split_bitplanes(image, bits=input_bits)
    weights = bitplane_weights(input_bits)
    cout = weights_packed.shape[0]
    flat_filters = weights_packed.reshape(cout, -1)
    out = None
    for plane_index in range(input_bits):
        plane_packed = pack_activations(planes[plane_index], word_size=word_size)
        patches = im2col_nhwc(plane_packed, kernel_size, stride, padding, pad_value=0)
        n, oh, ow, k = patches.shape
        flat_patches = patches.reshape(-1, k)
        if flat_filters.shape[1] != k:
            raise ValueError("activation and filter packing widths do not match")

        def combine(p_block, f_block):
            overlap = bitpack.popcount(np.bitwise_and(p_block, f_block)).sum(
                axis=-1, dtype=np.int64
            )
            ones = bitpack.popcount(p_block).sum(axis=-1, dtype=np.int64)
            return 2 * overlap - ones

        plane_dot = _blocked_dot(flat_patches, flat_filters, combine)
        contribution = plane_dot.reshape(n, oh, ow, cout) * int(weights[plane_index])
        out = contribution if out is None else out + contribution
    return out


def input_conv2d_reference(
    image: np.ndarray,
    weight_bits: np.ndarray,
    kernel_size: int,
    stride: int = 1,
    padding: int = 0,
) -> np.ndarray:
    """Exact integer reference for :func:`input_conv2d_bitplanes`."""
    w_values = 2.0 * np.asarray(weight_bits, dtype=np.float64) - 1.0
    out = conv2d_float_nhwc(
        np.asarray(image, dtype=np.float64),
        w_values,
        stride=stride,
        padding=padding,
        pad_value=0.0,
    )
    return np.rint(out).astype(np.int64)
