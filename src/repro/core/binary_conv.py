"""Binary convolution kernels (Eqn. 1) and the bit-plane input convolution (Eqn. 2).

All kernels operate on NHWC activations (the PhoneBit data layout) and store
binary weights packed along the channel dimension, exactly as the OpenCL
kernels in the paper do.  The functional results are bit-exact with a float
reference convolution over ±1 values, which the test-suite verifies.

Spatial zero padding pads packed words with 0, i.e. padded pixels behave as
all-(−1) activations.  The float reference used for verification therefore
pads with −1 as well (``pad_value=-1``); this mirrors how a real BNN kernel
treats padding when ``Len`` in Eqn. (1) is the full kernel volume.

Kernel structure (Sec. V/VI of the paper, mapped to NumPy):

* Patch extraction uses a zero-copy ``sliding_window_view`` over the padded
  activation tensor.  1×1 convolutions never materialize a patch matrix at
  all (pure reshape/stride slicing); K×K convolutions gather the window view
  into the patch matrix with a single vectorized copy instead of a Python
  loop over (kh, kw).
* The all-pairs dot products run through the 2-D tiled popcount GEMMs in
  :mod:`repro.core.bitpack`, which block over both patches and filters so
  broadcast temporaries have a bounded working set.
"""

from __future__ import annotations

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from repro.core import bitpack
from repro.core.binarize import bitplane_weights, split_bitplanes
from repro.core.tensor import conv_output_size, pad_spatial_nhwc


def im2col_nhwc(
    x: np.ndarray,
    kernel_size: int,
    stride: int = 1,
    padding: int = 0,
    pad_value: float = 0.0,
) -> np.ndarray:
    """Extract convolution patches from an NHWC tensor.

    Returns an array of shape ``(N, OH, OW, KH*KW*C)`` whose last axis is
    ordered ``(kh, kw, c)`` — channels innermost, matching the NHWC layout
    and therefore the packed-word ordering.
    """
    x = np.asarray(x)
    if x.ndim != 4:
        raise ValueError(f"expected NHWC input, got shape {x.shape}")
    n, h, w, c = x.shape
    oh = conv_output_size(h, kernel_size, stride, padding)
    ow = conv_output_size(w, kernel_size, stride, padding)
    windows = _conv_windows(x, kernel_size, stride, padding, pad_value)
    return np.ascontiguousarray(windows).reshape(n, oh, ow, kernel_size * kernel_size * c)


def _conv_windows(
    x: np.ndarray,
    kernel_size: int,
    stride: int,
    padding: int,
    pad_value: float,
) -> np.ndarray:
    """Strided ``(N, OH, OW, KH, KW, C)`` view of all convolution windows.

    The result is a zero-copy view into the (possibly padded) input with the
    trailing axes ordered ``(kh, kw, c)`` to match the packed NHWC layout.
    """
    padded = pad_spatial_nhwc(x, padding, value=pad_value) if padding else x
    windows = sliding_window_view(padded, (kernel_size, kernel_size), axis=(1, 2))
    # sliding_window_view appends the window axes: (N, OH', OW', C, KH, KW).
    windows = windows[:, ::stride, ::stride]
    return windows.transpose(0, 1, 2, 4, 5, 3)


def gather_patches_nhwc(
    x: np.ndarray,
    kernel_size: int,
    stride: int = 1,
    padding: int = 0,
    pad_value: float = 0.0,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Gather convolution windows into a flat ``(N*OH*OW, KH*KW*C)`` matrix.

    Like :func:`im2col_nhwc` but with an optional preallocated destination;
    ``out`` may have a different dtype than ``x`` (the copy casts), which
    lets the plan executor gather integer image patches directly into a
    reusable float64 arena buffer for the exact-GEMM input convolution.
    """
    x = np.asarray(x)
    if x.ndim != 4:
        raise ValueError(f"expected NHWC input, got shape {x.shape}")
    n, h, w, c = x.shape
    oh = conv_output_size(h, kernel_size, stride, padding)
    ow = conv_output_size(w, kernel_size, stride, padding)
    if out is None:
        patches = im2col_nhwc(x, kernel_size, stride, padding, pad_value)
        return patches.reshape(n * oh * ow, kernel_size * kernel_size * c)
    windows = _conv_windows(x, kernel_size, stride, padding, pad_value)
    np.copyto(out.reshape(n, oh, ow, kernel_size, kernel_size, c), windows)
    return out


def packed_patch_matrix(
    x_packed: np.ndarray,
    kernel_size: int,
    stride: int = 1,
    padding: int = 0,
    out: np.ndarray | None = None,
) -> tuple[np.ndarray, int, int]:
    """Flattened ``(N*OH*OW, KH*KW*Wc)`` patch matrix for packed activations.

    Returns ``(patches, oh, ow)``.  For 1×1 kernels the matrix is a reshape
    of a strided slice — zero-copy when stride is 1 — so pointwise binary
    convolutions skip im2col entirely.

    ``out`` optionally supplies a preallocated ``(N*OH*OW, KH*KW*Wc)``
    destination for the gathered windows; the execution plan's buffer arena
    passes one so repeated inferences reuse a single patch buffer instead of
    allocating (and page-faulting) a fresh one per convolution.  The
    zero-copy 1×1/stride-1 path ignores ``out``.
    """
    x_packed = np.asarray(x_packed)
    if x_packed.ndim != 4:
        raise ValueError(f"expected packed NHWC input, got shape {x_packed.shape}")
    n, h, w, wc = x_packed.shape
    oh = conv_output_size(h, kernel_size, stride, padding)
    ow = conv_output_size(w, kernel_size, stride, padding)
    if kernel_size == 1 and padding == 0:
        sliced = x_packed[:, ::stride, ::stride, :]
        if out is None or stride == 1:
            return sliced.reshape(n * oh * ow, wc), oh, ow
        np.copyto(out.reshape(n, oh, ow, wc), sliced)
        return out, oh, ow
    flat = gather_patches_nhwc(
        x_packed, kernel_size, stride, padding, pad_value=0, out=out
    )
    return flat, oh, ow


def conv2d_float_nhwc(
    x: np.ndarray,
    weights: np.ndarray,
    stride: int = 1,
    padding: int = 0,
    pad_value: float = 0.0,
    bias: np.ndarray | None = None,
) -> np.ndarray:
    """Reference float convolution on NHWC activations.

    Parameters
    ----------
    x:
        Input of shape ``(N, H, W, Cin)``.
    weights:
        Filter bank of shape ``(KH, KW, Cin, Cout)`` with ``KH == KW``.
    stride, padding:
        Convolution stride and symmetric spatial padding.
    pad_value:
        Value used for spatial padding (−1 when emulating binary padding).
    bias:
        Optional per-output-channel bias of shape ``(Cout,)``.
    """
    weights = np.asarray(weights, dtype=np.float64)
    kh, kw, cin, cout = weights.shape
    if kh != kw:
        raise ValueError("only square kernels are supported")
    patches = im2col_nhwc(
        np.asarray(x, dtype=np.float64), kh, stride, padding, pad_value
    )
    flat_w = weights.reshape(kh * kw * cin, cout)
    out = patches @ flat_w
    if bias is not None:
        out = out + np.asarray(bias, dtype=np.float64)
    return out


def pack_weights(weight_bits: np.ndarray, word_size: int = 64) -> np.ndarray:
    """Pack binary filter weights along the input-channel dimension.

    Parameters
    ----------
    weight_bits:
        Bits of shape ``(KH, KW, Cin, Cout)`` (1 ↦ +1, 0 ↦ −1).
    word_size:
        Packing word width.

    Returns
    -------
    numpy.ndarray
        Packed filters of shape ``(Cout, KH, KW, ceil(Cin/word_size))``.
    """
    weight_bits = np.asarray(weight_bits)
    if weight_bits.ndim != 4:
        raise ValueError(f"expected (KH, KW, Cin, Cout) bits, got {weight_bits.shape}")
    packed = bitpack.pack_bits(weight_bits, word_size=word_size, axis=2)
    return np.ascontiguousarray(np.transpose(packed, (3, 0, 1, 2)))


def pack_activations(activation_bits: np.ndarray, word_size: int = 64) -> np.ndarray:
    """Pack binarized NHWC activations along the channel dimension."""
    activation_bits = np.asarray(activation_bits)
    if activation_bits.ndim != 4:
        raise ValueError(f"expected NHWC bits, got shape {activation_bits.shape}")
    return bitpack.pack_bits(activation_bits, word_size=word_size, axis=3)


def binary_conv2d_packed(
    x_packed: np.ndarray,
    weights_packed: np.ndarray,
    true_channels: int,
    kernel_size: int,
    stride: int = 1,
    padding: int = 0,
) -> np.ndarray:
    """Binary convolution on packed activations and filters — Eqn. (1).

    Parameters
    ----------
    x_packed:
        Packed NHWC activations of shape ``(N, H, W, Wc)``.
    weights_packed:
        Packed filters of shape ``(Cout, KH, KW, Wc)`` from :func:`pack_weights`.
    true_channels:
        Unpadded input channel count ``Cin``.
    kernel_size, stride, padding:
        Convolution geometry.

    Returns
    -------
    numpy.ndarray
        Integer pre-activations ``x1`` of shape ``(N, OH, OW, Cout)``; each
        value equals the ±1 dot product over the kernel volume.
    """
    x_packed = np.asarray(x_packed)
    weights_packed = np.asarray(weights_packed)
    cout = weights_packed.shape[0]
    n = x_packed.shape[0]
    patches, oh, ow = packed_patch_matrix(x_packed, kernel_size, stride, padding)
    flat_filters = weights_packed.reshape(cout, -1)
    if flat_filters.shape[1] != patches.shape[1]:
        raise ValueError("activation and filter packing widths do not match")
    length = kernel_size * kernel_size * true_channels
    disagree = bitpack.xor_popcount_gemm(patches, flat_filters)
    # x1 = length - 2 * disagree, computed in place on the GEMM output.
    np.multiply(disagree, -2, out=disagree)
    disagree += length
    return disagree.reshape(n, oh, ow, cout)


def binary_conv2d_reference(
    x_bits: np.ndarray,
    weight_bits: np.ndarray,
    kernel_size: int,
    stride: int = 1,
    padding: int = 0,
) -> np.ndarray:
    """Float reference for :func:`binary_conv2d_packed` (±1 arithmetic)."""
    x_values = 2.0 * np.asarray(x_bits, dtype=np.float64) - 1.0
    w_values = 2.0 * np.asarray(weight_bits, dtype=np.float64) - 1.0
    out = conv2d_float_nhwc(
        x_values, w_values, stride=stride, padding=padding, pad_value=-1.0
    )
    return np.rint(out).astype(np.int64)


def input_conv2d_bitplanes(
    image: np.ndarray,
    weights_packed: np.ndarray,
    true_channels: int,
    kernel_size: int,
    stride: int = 1,
    padding: int = 0,
    input_bits: int = 8,
    word_size: int | None = None,
) -> np.ndarray:
    """First-layer convolution of an integer image with binary weights (Eqn. 2).

    The 8-bit image is split into bit-planes; each unipolar plane is packed
    and convolved with the ±1 weights using the and/popcount dot product,
    then the plane results are recombined with their power-of-two weights.

    Parameters
    ----------
    image:
        Unsigned integer NHWC image of shape ``(N, H, W, Cin)``.
    weights_packed:
        Packed ±1 filters of shape ``(Cout, KH, KW, Wc)``.
    true_channels:
        Unpadded input channel count (3 for RGB images).
    input_bits:
        Bit width of the integer input (8 for uint8 images).
    word_size:
        Packing word width used for the activations; inferred from the
        packed weights when omitted.

    Returns
    -------
    numpy.ndarray
        Integer pre-activations of shape ``(N, OH, OW, Cout)`` equal to the
        exact integer convolution ``I · W``.
    """
    image = np.asarray(image)
    weights_packed = np.asarray(weights_packed)
    if word_size is None:
        word_size = weights_packed.dtype.itemsize * 8
    planes = split_bitplanes(image, bits=input_bits)
    weights = bitplane_weights(input_bits)
    cout = weights_packed.shape[0]
    flat_filters = weights_packed.reshape(cout, -1)
    out = None
    for plane_index in range(input_bits):
        plane_packed = pack_activations(planes[plane_index], word_size=word_size)
        patches, oh, ow = packed_patch_matrix(
            plane_packed, kernel_size, stride, padding
        )
        n = plane_packed.shape[0]
        if flat_filters.shape[1] != patches.shape[1]:
            raise ValueError("activation and filter packing widths do not match")
        overlap = bitpack.and_popcount_gemm(patches, flat_filters)
        # x · w = 2·popc(x & w) − popc(x); popc(x) is shared by all filters,
        # so compute it once per patch row instead of once per filter block.
        ones = bitpack.popcount_words(patches).sum(axis=-1, dtype=np.int64)
        np.multiply(overlap, 2, out=overlap)
        overlap -= ones[:, None]
        contribution = overlap.reshape(n, oh, ow, cout)
        if out is None:
            out = contribution * int(weights[plane_index])
        else:
            out += contribution * int(weights[plane_index])
    return out


def input_conv2d_reference(
    image: np.ndarray,
    weight_bits: np.ndarray,
    kernel_size: int,
    stride: int = 1,
    padding: int = 0,
) -> np.ndarray:
    """Exact integer reference for :func:`input_conv2d_bitplanes`."""
    w_values = 2.0 * np.asarray(weight_bits, dtype=np.float64) - 1.0
    out = conv2d_float_nhwc(
        np.asarray(image, dtype=np.float64),
        w_values,
        stride=stride,
        padding=padding,
        pad_value=0.0,
    )
    return np.rint(out).astype(np.int64)
