"""Kernel workload builders.

Each builder converts the geometry of one network layer into the
:class:`~repro.gpusim.kernel.KernelLaunch` descriptors the cost model needs.
Two families exist:

* **PhoneBit kernels** — packed binary convolutions with fused
  BN/binarization, bit-plane input convolution, packed max pooling, packed
  dense layers and the float last layer.  They reflect every optimization of
  Secs. V–VI: channel packing divides the inner-loop op count by the word
  width, fusion folds three layers into one kernel (and removes the
  intermediate feature-map traffic), the branchless epilogue avoids the
  divergence penalty, and the workload rule decides whether binarize+pack
  stays in the conv thread.

* **Float / quantized kernels** — the same layers as a conventional
  framework would run them (fp32/fp16/int8 direct convolution, separate
  batch-norm and activation passes when the framework does not fuse).
  The baseline frameworks in :mod:`repro.frameworks` build their workloads
  from these.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.bitpack import words_per_channel
from repro.core.tensor import conv_output_size
from repro.gpusim.kernel import ExecutionUnit, KernelLaunch, LayerWorkload, OpKind

#: Filters whose results a single PhoneBit thread binarizes and packs
#: (Sec. VI-B, Fig. 4).
FILTERS_PER_THREAD = 8

#: Channel-count limit of the integrated binarize+pack workload rule.
INTEGRATED_PACKING_LIMIT = 256

#: Effective reuse factor of filter weights in the GPU cache hierarchy: each
#: weight byte is fetched from DRAM roughly once per this many work items.
WEIGHT_REUSE = 8

#: Ops charged per packed word in the binary inner loop.  A 64-bit
#: xor / popcount / accumulate triple executes as two 32-bit ALU operations
#: each on Adreno-class GPUs, hence 6 ALU ops per packed word.
OPS_PER_WORD = 6

#: Ops charged per multiply-accumulate in float/quant inner loops.
OPS_PER_MAC = 2


@dataclass(frozen=True)
class ConvGeometry:
    """Geometry of a convolution layer instance."""

    in_height: int
    in_width: int
    in_channels: int
    out_channels: int
    kernel_size: int
    stride: int = 1
    padding: int = 0

    @property
    def out_height(self) -> int:
        return conv_output_size(self.in_height, self.kernel_size, self.stride, self.padding)

    @property
    def out_width(self) -> int:
        return conv_output_size(self.in_width, self.kernel_size, self.stride, self.padding)

    @property
    def output_pixels(self) -> int:
        return self.out_height * self.out_width

    @property
    def macs(self) -> int:
        """Multiply-accumulates of the equivalent float convolution."""
        return (
            self.output_pixels
            * self.out_channels
            * self.kernel_size
            * self.kernel_size
            * self.in_channels
        )

    @property
    def weight_count(self) -> int:
        return self.kernel_size * self.kernel_size * self.in_channels * self.out_channels

    def output_shape(self) -> tuple:
        return (self.out_height, self.out_width, self.out_channels)


# --------------------------------------------------------------------------
# PhoneBit (binary) kernels
# --------------------------------------------------------------------------

def phonebit_binary_conv_workload(
    name: str,
    geometry: ConvGeometry,
    word_size: int = 64,
    fused: bool = True,
    branchless: bool = True,
    input_bitplanes: int = 0,
    output_binary: bool = True,
) -> LayerWorkload:
    """Workload of a PhoneBit binary convolution layer.

    Parameters
    ----------
    name:
        Layer name (also used for Fig. 5 per-layer reporting).
    geometry:
        Convolution geometry.
    word_size:
        Packing word width in bits.
    fused:
        Whether conv+BN+binarize run as one kernel (the PhoneBit default).
        When False, separate batch-norm and binarize kernels are emitted and
        the intermediate integer feature map is written to / read from
        global memory (the ablation case).
    branchless:
        Whether the binarization epilogue uses the branch-free Eqn. (9).
    input_bitplanes:
        0 for a packed binary input; 8 for the first layer, which convolves
        each bit-plane of the 8-bit input separately (Eqn. 2).
    output_binary:
        Whether the output is binarized+packed (False for a layer feeding a
        float head, which writes float values instead).
    """
    g = geometry
    if input_bitplanes:
        # The first layer im2col-packs the whole K×K×Cin window of each
        # bit-plane, so tiny channel counts (RGB inputs) do not waste most
        # of every packing word.
        window_bits = g.kernel_size * g.kernel_size * g.in_channels
        words = words_per_channel(window_bits, word_size)
    else:
        words = words_per_channel(g.in_channels, word_size) * g.kernel_size * g.kernel_size
    word_bytes = word_size // 8
    planes = max(1, input_bitplanes)

    filters_per_thread = FILTERS_PER_THREAD if output_binary else 1
    integrated = g.out_channels <= INTEGRATED_PACKING_LIMIT and output_binary
    work_items = g.output_pixels * math.ceil(g.out_channels / filters_per_thread)

    inner_ops = planes * words * OPS_PER_WORD * filters_per_thread
    epilogue_ops = filters_per_thread * (4 if branchless else 4)
    pack_ops = filters_per_thread if integrated else 0
    ops_per_item = inner_ops + epilogue_ops + pack_ops

    patch_bytes = planes * words * word_bytes
    weight_bytes = filters_per_thread * words * word_bytes / WEIGHT_REUSE
    bytes_read = patch_bytes + weight_bytes
    if output_binary:
        bytes_written = filters_per_thread / 8.0 if integrated else 4.0 * filters_per_thread
    else:
        bytes_written = 4.0

    conv_kernel = KernelLaunch(
        name=f"{name}/fused-bconv" if fused else f"{name}/bconv",
        work_items=work_items,
        ops_per_item=ops_per_item if fused else inner_ops,
        bytes_read_per_item=bytes_read,
        bytes_written_per_item=bytes_written if fused else 4.0 * filters_per_thread,
        op_kind=OpKind.BITWISE,
        vector_width=4,
        coalesced=True,
        divergent=not branchless,
        fused_layers=3 if fused else 1,
        uses_private_packing=integrated,
        metadata={"private_bytes": 8 * filters_per_thread + planes * words * word_bytes},
    )

    kernels = [conv_kernel]
    output_values = g.output_pixels * g.out_channels
    if not fused:
        # Separate batch-norm and binarize passes over the int32 feature map.
        kernels.append(
            KernelLaunch(
                name=f"{name}/batchnorm",
                work_items=output_values,
                ops_per_item=4,
                bytes_read_per_item=4.0,
                bytes_written_per_item=4.0,
                op_kind=OpKind.FP32,
                vector_width=4,
            )
        )
        kernels.append(
            KernelLaunch(
                name=f"{name}/binarize",
                work_items=output_values,
                ops_per_item=2,
                bytes_read_per_item=4.0,
                bytes_written_per_item=1.0 / 8.0,
                op_kind=OpKind.BITWISE,
                vector_width=4,
                divergent=not branchless,
            )
        )
    elif not integrated and output_binary:
        # Workload rule: channels above the limit pack in a separate kernel.
        kernels.append(
            KernelLaunch(
                name=f"{name}/pack",
                work_items=output_values // 8 or 1,
                ops_per_item=8,
                bytes_read_per_item=8.0,
                bytes_written_per_item=1.0,
                op_kind=OpKind.BITWISE,
                vector_width=4,
            )
        )
    if input_bitplanes:
        # Bit-plane split of the integer input image (one pass over the input).
        input_values = g.in_height * g.in_width * g.in_channels
        kernels.insert(
            0,
            KernelLaunch(
                name=f"{name}/bitplane-split",
                work_items=input_values,
                ops_per_item=2 * input_bitplanes,
                bytes_read_per_item=1.0,
                bytes_written_per_item=input_bitplanes / 8.0,
                op_kind=OpKind.BITWISE,
                vector_width=4,
            ),
        )

    out_words = words_per_channel(g.out_channels, word_size)
    activation_bytes = g.output_pixels * (
        out_words * word_bytes if output_binary else 4 * g.out_channels
    )
    return LayerWorkload(
        layer_name=name,
        layer_type="binary_conv" if not input_bitplanes else "input_conv",
        kernels=kernels,
        activation_bytes=activation_bytes,
        weight_bytes=g.weight_count / 8.0,
    )


def phonebit_float_conv_workload(name: str, geometry: ConvGeometry) -> LayerWorkload:
    """Workload of the full-precision last layer under PhoneBit.

    PhoneBit keeps the final prediction layer in float but vectorizes it
    with the OpenCL ``dot`` builtin (the ~3× of Fig. 5 conv9).
    """
    g = geometry
    work_items = g.output_pixels * g.out_channels
    ops_per_item = OPS_PER_MAC * g.kernel_size * g.kernel_size * g.in_channels
    bytes_read = 4.0 * g.kernel_size * g.kernel_size * g.in_channels * (1 + 1.0 / WEIGHT_REUSE)
    kernel = KernelLaunch(
        name=f"{name}/float-conv",
        work_items=work_items,
        ops_per_item=ops_per_item,
        bytes_read_per_item=bytes_read,
        bytes_written_per_item=4.0,
        op_kind=OpKind.FP32,
        vector_width=4,
        coalesced=True,
    )
    return LayerWorkload(
        layer_name=name,
        layer_type="float_conv",
        kernels=[kernel],
        activation_bytes=4.0 * g.output_pixels * g.out_channels,
        weight_bytes=4.0 * g.weight_count,
    )


def phonebit_pool_workload(
    name: str,
    in_height: int,
    in_width: int,
    channels: int,
    pool_size: int,
    stride: int,
    padding: int = 0,
    packed: bool = True,
    word_size: int = 64,
) -> LayerWorkload:
    """Workload of a pooling layer over packed (or float) activations."""
    oh = conv_output_size(in_height, pool_size, stride, padding)
    ow = conv_output_size(in_width, pool_size, stride, padding)
    if packed:
        lanes = words_per_channel(channels, word_size)
        element_bytes = word_size // 8
        op_kind = OpKind.BITWISE
    else:
        lanes = channels
        element_bytes = 4
        op_kind = OpKind.FP32
    work_items = oh * ow * lanes
    window = pool_size * pool_size
    kernel = KernelLaunch(
        name=f"{name}/maxpool",
        work_items=work_items,
        ops_per_item=window,
        bytes_read_per_item=float(window * element_bytes),
        bytes_written_per_item=float(element_bytes),
        op_kind=op_kind,
        vector_width=4,
    )
    return LayerWorkload(
        layer_name=name,
        layer_type="pool",
        kernels=[kernel],
        activation_bytes=float(oh * ow * lanes * element_bytes),
    )


def phonebit_binary_dense_workload(
    name: str,
    in_features: int,
    out_features: int,
    word_size: int = 64,
    output_binary: bool = True,
) -> LayerWorkload:
    """Workload of a fused binary fully connected layer."""
    words = words_per_channel(in_features, word_size)
    word_bytes = word_size // 8
    filters_per_thread = FILTERS_PER_THREAD if output_binary else 1
    work_items = math.ceil(out_features / filters_per_thread)
    ops_per_item = words * OPS_PER_WORD * filters_per_thread + 4 * filters_per_thread
    bytes_read = words * word_bytes * (1 + filters_per_thread)
    bytes_written = filters_per_thread / 8.0 if output_binary else 4.0
    kernel = KernelLaunch(
        name=f"{name}/fused-bdense",
        work_items=work_items,
        ops_per_item=ops_per_item,
        bytes_read_per_item=bytes_read,
        bytes_written_per_item=bytes_written,
        op_kind=OpKind.BITWISE,
        vector_width=4,
        fused_layers=3,
    )
    return LayerWorkload(
        layer_name=name,
        layer_type="binary_dense",
        kernels=[kernel],
        activation_bytes=float(out_features) / 8.0,
        weight_bytes=in_features * out_features / 8.0,
    )


def phonebit_float_dense_workload(
    name: str, in_features: int, out_features: int
) -> LayerWorkload:
    """Workload of the full-precision classifier head."""
    kernel = KernelLaunch(
        name=f"{name}/float-dense",
        work_items=out_features,
        ops_per_item=OPS_PER_MAC * in_features,
        bytes_read_per_item=4.0 * in_features * (1 + 1.0 / WEIGHT_REUSE),
        bytes_written_per_item=4.0,
        op_kind=OpKind.FP32,
        vector_width=4,
    )
    return LayerWorkload(
        layer_name=name,
        layer_type="float_dense",
        kernels=[kernel],
        activation_bytes=4.0 * out_features,
        weight_bytes=4.0 * in_features * out_features,
    )


# --------------------------------------------------------------------------
# Conventional (float / fp16 / int8) kernels for the baseline frameworks
# --------------------------------------------------------------------------

_PRECISION_BYTES = {
    OpKind.FP32: 4.0,
    OpKind.FP16: 2.0,
    OpKind.INT8: 1.0,
    OpKind.BITWISE: 0.125,
}


def float_conv_workload(
    name: str,
    geometry: ConvGeometry,
    op_kind: OpKind = OpKind.FP32,
    unit: ExecutionUnit = ExecutionUnit.GPU,
    threads: int = 1,
    fused_batchnorm: bool = True,
    separate_activation: bool = False,
    coalesced: bool = True,
    weight_reuse: float = WEIGHT_REUSE,
    input_reuse: float = 8.0,
) -> LayerWorkload:
    """Workload of a conventional convolution layer in a baseline framework.

    ``input_reuse`` models how often the framework's tiling re-reads each
    input value from DRAM: a well-tiled GEMM-based convolution touches each
    input roughly once per tile (high reuse), a naive per-output-pixel
    kernel re-reads the whole receptive field every time (reuse ≈ 1).
    """
    g = geometry
    element_bytes = _PRECISION_BYTES[op_kind]
    work_items = g.output_pixels * g.out_channels
    ops_per_item = OPS_PER_MAC * g.kernel_size * g.kernel_size * g.in_channels
    bytes_read = element_bytes * g.kernel_size * g.kernel_size * g.in_channels * (
        1.0 / max(input_reuse, 1.0) + 1.0 / max(weight_reuse, 1.0)
    )
    kernels = [
        KernelLaunch(
            name=f"{name}/conv",
            work_items=work_items,
            ops_per_item=ops_per_item,
            bytes_read_per_item=bytes_read,
            bytes_written_per_item=element_bytes,
            op_kind=op_kind,
            vector_width=4 if unit is ExecutionUnit.CPU else 2,
            coalesced=coalesced,
            unit=unit,
            threads=threads,
        )
    ]
    if not fused_batchnorm:
        kernels.append(
            KernelLaunch(
                name=f"{name}/batchnorm",
                work_items=work_items,
                ops_per_item=4,
                bytes_read_per_item=element_bytes,
                bytes_written_per_item=element_bytes,
                op_kind=op_kind,
                unit=unit,
                threads=threads,
                coalesced=coalesced,
            )
        )
    if separate_activation:
        kernels.append(
            KernelLaunch(
                name=f"{name}/activation",
                work_items=work_items,
                ops_per_item=1,
                bytes_read_per_item=element_bytes,
                bytes_written_per_item=element_bytes,
                op_kind=op_kind,
                unit=unit,
                threads=threads,
                coalesced=coalesced,
            )
        )
    return LayerWorkload(
        layer_name=name,
        layer_type="conv",
        kernels=kernels,
        activation_bytes=element_bytes * g.output_pixels * g.out_channels,
        weight_bytes=element_bytes * g.weight_count,
    )


def float_pool_workload(
    name: str,
    in_height: int,
    in_width: int,
    channels: int,
    pool_size: int,
    stride: int,
    padding: int = 0,
    op_kind: OpKind = OpKind.FP32,
    unit: ExecutionUnit = ExecutionUnit.GPU,
    threads: int = 1,
    coalesced: bool = True,
) -> LayerWorkload:
    """Workload of a pooling layer in a baseline framework."""
    element_bytes = _PRECISION_BYTES[op_kind]
    oh = conv_output_size(in_height, pool_size, stride, padding)
    ow = conv_output_size(in_width, pool_size, stride, padding)
    work_items = oh * ow * channels
    window = pool_size * pool_size
    kernel = KernelLaunch(
        name=f"{name}/pool",
        work_items=work_items,
        ops_per_item=window,
        bytes_read_per_item=element_bytes * window,
        bytes_written_per_item=element_bytes,
        op_kind=op_kind,
        unit=unit,
        threads=threads,
        coalesced=coalesced,
    )
    return LayerWorkload(
        layer_name=name,
        layer_type="pool",
        kernels=[kernel],
        activation_bytes=element_bytes * oh * ow * channels,
    )


def float_dense_workload(
    name: str,
    in_features: int,
    out_features: int,
    op_kind: OpKind = OpKind.FP32,
    unit: ExecutionUnit = ExecutionUnit.GPU,
    threads: int = 1,
    coalesced: bool = True,
    weight_reuse: float = 2.0,
) -> LayerWorkload:
    """Workload of a fully connected layer in a baseline framework."""
    element_bytes = _PRECISION_BYTES[op_kind]
    kernel = KernelLaunch(
        name=f"{name}/dense",
        work_items=out_features,
        ops_per_item=OPS_PER_MAC * in_features,
        bytes_read_per_item=element_bytes * in_features * (1 + 1.0 / max(weight_reuse, 1.0)),
        bytes_written_per_item=element_bytes,
        op_kind=op_kind,
        unit=unit,
        threads=threads,
        coalesced=coalesced,
    )
    return LayerWorkload(
        layer_name=name,
        layer_type="dense",
        kernels=[kernel],
        activation_bytes=element_bytes * out_features,
        weight_bytes=element_bytes * in_features * out_features,
    )
