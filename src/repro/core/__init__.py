"""Core PhoneBit engine: binary operators, layers, networks and the engine.

The modules in this package implement the paper's operator-level
optimizations as bit-exact NumPy kernels:

* :mod:`repro.core.bitpack` — channel-dimension bit packing and packed
  xor/popcount dot products (Sec. V-A).
* :mod:`repro.core.binarize` — sign binarization and bit-plane splitting of
  8-bit inputs (Sec. III-B).
* :mod:`repro.core.binary_conv` — binary convolution via Eqn. (1) and the
  first-layer bit-plane convolution via Eqn. (2).
* :mod:`repro.core.fusion` — conv + batch-norm + binarize fusion into a
  per-channel threshold (Eqns. 3–8).
* :mod:`repro.core.branchless` — the branch-divergence-free binarization
  ``(A xor B) or C`` of Eqn. (9).
* :mod:`repro.core.layers` — the layer zoo used by the benchmark networks.
* :mod:`repro.core.network`, :mod:`repro.core.engine` — network container
  and the inference engine (functional execution + cost estimation).
* :mod:`repro.core.model_format`, :mod:`repro.core.converter` — the
  compressed ``.pbit`` model format and the float-model converter.
"""

from repro.core.tensor import Layout, Tensor
from repro.core.network import Network
from repro.core.engine import PhoneBitEngine

__all__ = ["Layout", "Tensor", "Network", "PhoneBitEngine"]
