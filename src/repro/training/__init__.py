"""Straight-through-estimator BNN training.

Training full-size binarized AlexNet/VGG16/YOLOv2 is far outside the compute
budget of this reproduction, so the accuracy column of Table II is
reproduced in *shape* with a small binarized network trained on the
synthetic classification data: the float model reaches a higher accuracy,
its binarized counterpart loses a few points, and both comfortably beat
chance.  The trainer also produces real weights + batch-norm statistics that
the converter turns into a PhoneBit network, closing the loop of Fig. 2
(train → convert → deploy → infer).
"""

from repro.training.ste import sign_ste_backward, sign_ste_forward
from repro.training.trainer import BinaryMlpClassifier, TrainingResult, train_classifier

__all__ = [
    "sign_ste_forward",
    "sign_ste_backward",
    "BinaryMlpClassifier",
    "TrainingResult",
    "train_classifier",
]
