"""Small binarized classifier trainer (accuracy-gap proxy for Table II).

The trainer implements the standard BNN recipe [Courbariaux et al., 2016]
for a multi-layer perceptron:

* latent float weights, binarized with ``sign`` in the forward pass;
* batch normalization after every binary matrix product;
* sign activations with straight-through gradients;
* a full-precision classifier head;
* SGD with momentum, latent weights clipped to [−1, 1] after every step.

Setting ``binary=False`` trains the float counterpart (same widths, ReLU
activations, no binarization), which provides the "full-precision CNN"
column of the Table II accuracy comparison on the synthetic data.

The trained binary model exports :class:`~repro.core.converter.LayerSpec`
records, so the converter → ``.pbit`` → PhoneBit-engine path can be driven
end-to-end with *real* trained weights (the Fig. 2 deployment flow).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

import numpy as np

from repro.core.converter import LayerSpec
from repro.core.fusion import BatchNormParams
from repro.training.ste import clip_latent_weights, sign_ste_backward, sign_ste_forward

_EPS = 1e-5


@dataclass
class _HiddenLayer:
    """Latent parameters and optimizer state of one hidden layer."""

    weights: np.ndarray
    gamma: np.ndarray
    beta: np.ndarray
    running_mean: np.ndarray
    running_var: np.ndarray
    weight_momentum: np.ndarray = field(init=False)
    gamma_momentum: np.ndarray = field(init=False)
    beta_momentum: np.ndarray = field(init=False)

    def __post_init__(self) -> None:
        self.weight_momentum = np.zeros_like(self.weights)
        self.gamma_momentum = np.zeros_like(self.gamma)
        self.beta_momentum = np.zeros_like(self.beta)


@dataclass
class TrainingResult:
    """Summary of one training run."""

    train_accuracy: float
    test_accuracy: float
    losses: List[float]
    epochs: int
    binary: bool


class BinaryMlpClassifier:
    """A small (binarized) MLP classifier trained with SGD + STE."""

    def __init__(
        self,
        input_dim: int,
        hidden_dims: Sequence[int],
        num_classes: int,
        binary: bool = True,
        seed: int = 0,
    ) -> None:
        if not hidden_dims:
            raise ValueError("at least one hidden layer is required")
        self.input_dim = input_dim
        self.hidden_dims = tuple(hidden_dims)
        self.num_classes = num_classes
        self.binary = binary
        rng = np.random.default_rng(seed)

        self.hidden: List[_HiddenLayer] = []
        previous = input_dim
        for width in hidden_dims:
            scale = 1.0 / np.sqrt(previous)
            self.hidden.append(
                _HiddenLayer(
                    weights=rng.uniform(-scale, scale, size=(previous, width)),
                    gamma=np.ones(width),
                    beta=np.zeros(width),
                    running_mean=np.zeros(width),
                    running_var=np.ones(width),
                )
            )
            previous = width
        scale = 1.0 / np.sqrt(previous)
        self.out_weights = rng.uniform(-scale, scale, size=(previous, num_classes))
        self.out_bias = np.zeros(num_classes)
        self.out_weight_momentum = np.zeros_like(self.out_weights)
        self.out_bias_momentum = np.zeros_like(self.out_bias)

    # ------------------------------------------------------------- forward
    def _prepare_input(self, images: np.ndarray) -> np.ndarray:
        flat = np.asarray(images, dtype=np.float64).reshape(len(images), -1)
        centered = flat / 255.0 - 0.5
        if self.binary:
            return sign_ste_forward(centered)
        return centered

    def _forward(self, x: np.ndarray, training: bool):
        """Forward pass returning logits plus a cache for backprop."""
        cache = {"inputs": [], "pre_bn": [], "bn_hat": [], "bn_std": [],
                 "bn_mean": [], "post_bn": [], "activations": x}
        current = x
        for layer in self.hidden:
            effective = sign_ste_forward(layer.weights) if self.binary else layer.weights
            pre_bn = current @ effective
            if training:
                mean = pre_bn.mean(axis=0)
                var = pre_bn.var(axis=0)
                layer.running_mean = 0.9 * layer.running_mean + 0.1 * mean
                layer.running_var = 0.9 * layer.running_var + 0.1 * var
            else:
                mean = layer.running_mean
                var = layer.running_var
            std = np.sqrt(var + _EPS)
            hat = (pre_bn - mean) / std
            post_bn = layer.gamma * hat + layer.beta
            activated = sign_ste_forward(post_bn) if self.binary else np.maximum(post_bn, 0.0)
            cache["inputs"].append(current)
            cache["pre_bn"].append(pre_bn)
            cache["bn_hat"].append(hat)
            cache["bn_std"].append(std)
            cache["bn_mean"].append(mean)
            cache["post_bn"].append(post_bn)
            current = activated
        logits = current @ self.out_weights + self.out_bias
        cache["head_input"] = current
        return logits, cache

    @staticmethod
    def _softmax(logits: np.ndarray) -> np.ndarray:
        shifted = logits - logits.max(axis=1, keepdims=True)
        exp = np.exp(shifted)
        return exp / exp.sum(axis=1, keepdims=True)

    # ------------------------------------------------------------ training
    def train_epoch(self, images: np.ndarray, labels: np.ndarray,
                    batch_size: int, learning_rate: float, momentum: float,
                    rng: np.random.Generator) -> float:
        """One epoch of SGD; returns the mean minibatch loss."""
        order = rng.permutation(len(images))
        losses = []
        for start in range(0, len(order), batch_size):
            index = order[start:start + batch_size]
            loss = self._train_step(images[index], labels[index],
                                    learning_rate, momentum)
            losses.append(loss)
        return float(np.mean(losses))

    def _train_step(self, images: np.ndarray, labels: np.ndarray,
                    learning_rate: float, momentum: float) -> float:
        x = self._prepare_input(images)
        logits, cache = self._forward(x, training=True)
        probabilities = self._softmax(logits)
        batch = len(images)
        one_hot = np.zeros_like(probabilities)
        one_hot[np.arange(batch), labels] = 1.0
        loss = float(-np.log(probabilities[np.arange(batch), labels] + 1e-12).mean())

        # ---- classifier head
        dlogits = (probabilities - one_hot) / batch
        head_input = cache["head_input"]
        d_out_weights = head_input.T @ dlogits
        d_out_bias = dlogits.sum(axis=0)
        dcurrent = dlogits @ self.out_weights.T

        self.out_weight_momentum = momentum * self.out_weight_momentum - learning_rate * d_out_weights
        self.out_bias_momentum = momentum * self.out_bias_momentum - learning_rate * d_out_bias
        self.out_weights += self.out_weight_momentum
        self.out_bias += self.out_bias_momentum

        # ---- hidden layers, last to first
        for index in range(len(self.hidden) - 1, -1, -1):
            layer = self.hidden[index]
            post_bn = cache["post_bn"][index]
            if self.binary:
                dpost = sign_ste_backward(post_bn, dcurrent)
            else:
                dpost = dcurrent * (post_bn > 0)

            hat = cache["bn_hat"][index]
            std = cache["bn_std"][index]
            pre_bn = cache["pre_bn"][index]
            mean = cache["bn_mean"][index]
            n = len(pre_bn)

            dgamma = (dpost * hat).sum(axis=0)
            dbeta = dpost.sum(axis=0)
            dhat = dpost * layer.gamma
            dvar = (dhat * (pre_bn - mean) * -0.5 * std**-3).sum(axis=0)
            dmean = (dhat * -1.0 / std).sum(axis=0) + dvar * (-2.0 * (pre_bn - mean)).mean(axis=0)
            dpre = dhat / std + dvar * 2.0 * (pre_bn - mean) / n + dmean / n

            inputs = cache["inputs"][index]
            effective = sign_ste_forward(layer.weights) if self.binary else layer.weights
            dweights = inputs.T @ dpre
            if self.binary:
                dweights = sign_ste_backward(layer.weights, dweights)
            dcurrent = dpre @ effective.T

            layer.weight_momentum = momentum * layer.weight_momentum - learning_rate * dweights
            layer.gamma_momentum = momentum * layer.gamma_momentum - learning_rate * dgamma
            layer.beta_momentum = momentum * layer.beta_momentum - learning_rate * dbeta
            layer.weights += layer.weight_momentum
            layer.gamma += layer.gamma_momentum
            layer.beta += layer.beta_momentum
            if self.binary:
                layer.weights = clip_latent_weights(layer.weights)
        return loss

    # ----------------------------------------------------------- inference
    def predict(self, images: np.ndarray) -> np.ndarray:
        """Class predictions using the running batch-norm statistics."""
        x = self._prepare_input(images)
        logits, _ = self._forward(x, training=False)
        return np.argmax(logits, axis=1)

    def accuracy(self, images: np.ndarray, labels: np.ndarray) -> float:
        return float((self.predict(images) == np.asarray(labels)).mean())

    # ------------------------------------------------------------- export
    def export_layer_specs(self) -> List[LayerSpec]:
        """Export the trained model as converter layer specs (binary only)."""
        if not self.binary:
            raise ValueError("only binarized models are exported to PhoneBit format")
        specs: List[LayerSpec] = []
        for index, layer in enumerate(self.hidden, start=1):
            specs.append(
                LayerSpec(
                    kind="dense",
                    name=f"bfc{index}",
                    weights=layer.weights.copy(),
                    batchnorm=BatchNormParams(
                        gamma=layer.gamma.copy(),
                        beta=layer.beta.copy(),
                        mean=layer.running_mean.copy(),
                        var=layer.running_var.copy(),
                        eps=_EPS,
                    ),
                    binary=True,
                    output_binary=True,
                )
            )
        specs.append(
            LayerSpec(
                kind="dense",
                name="classifier",
                weights=self.out_weights.copy(),
                bias=self.out_bias.copy(),
                binary=False,
            )
        )
        return specs

    def prepared_input(self, images: np.ndarray) -> np.ndarray:
        """Input exactly as the exported PhoneBit network expects it (±1)."""
        return self._prepare_input(images).astype(np.float32)


def train_classifier(
    dataset,
    hidden_dims: Sequence[int] = (128, 128),
    binary: bool = True,
    epochs: int = 10,
    batch_size: int = 64,
    learning_rate: float = 0.05,
    momentum: float = 0.9,
    seed: int = 0,
):
    """Train a (binary) MLP on a :class:`SyntheticClassification` dataset."""
    rng = np.random.default_rng(seed)
    input_dim = int(np.prod(dataset.image_shape))
    model = BinaryMlpClassifier(
        input_dim, hidden_dims, dataset.num_classes, binary=binary, seed=seed
    )
    losses = []
    for _ in range(epochs):
        losses.append(
            model.train_epoch(dataset.train_images, dataset.train_labels,
                              batch_size, learning_rate, momentum, rng)
        )
    result = TrainingResult(
        train_accuracy=model.accuracy(dataset.train_images, dataset.train_labels),
        test_accuracy=model.accuracy(dataset.test_images, dataset.test_labels),
        losses=losses,
        epochs=epochs,
        binary=binary,
    )
    return model, result
