"""Straight-through estimator (STE) primitives.

Binarized networks [Courbariaux et al., 2016] keep latent float weights and
activations during training, binarize them with ``sign`` in the forward
pass, and propagate gradients through the non-differentiable ``sign`` with
the straight-through estimator: the gradient passes unchanged where the
input magnitude is below 1 and is clipped to zero elsewhere (the "hard tanh"
window).
"""

from __future__ import annotations

import numpy as np


def sign_ste_forward(x: np.ndarray) -> np.ndarray:
    """Forward binarization to ±1 (zero maps to +1, matching Eqn. 7)."""
    return np.where(np.asarray(x) >= 0, 1.0, -1.0)


def sign_ste_backward(x: np.ndarray, grad_output: np.ndarray, clip: float = 1.0) -> np.ndarray:
    """STE gradient of ``sign``: pass-through inside ``|x| <= clip``."""
    x = np.asarray(x)
    mask = (np.abs(x) <= clip).astype(grad_output.dtype)
    return grad_output * mask


def binarize_weights_ste(weights: np.ndarray) -> np.ndarray:
    """Binarize latent weights for the forward pass."""
    return sign_ste_forward(weights)


def clip_latent_weights(weights: np.ndarray, clip: float = 1.0) -> np.ndarray:
    """Clip latent weights into [-clip, clip] after each update."""
    return np.clip(weights, -clip, clip)
