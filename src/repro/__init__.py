"""PhoneBit reproduction package.

This package reproduces *PhoneBit: Efficient GPU-Accelerated Binary Neural
Network Inference Engine for Mobile Phones* (DATE 2020).  It contains:

``repro.core``
    The PhoneBit inference engine itself: channel bit packing, binary
    convolution via xor/popcount, bit-plane decomposition of the input
    layer, conv+BN+binarize layer fusion and the branchless binarization
    operator, together with the layer/network/engine/model-format APIs.

``repro.gpusim``
    A mobile-GPU simulator substrate (Adreno-class device presets, roofline
    cost model, occupancy/latency-hiding, coalescing and divergence models,
    and an energy model) standing in for the phones used in the paper.

``repro.frameworks``
    Cost-modeled baseline frameworks (CNNdroid CPU/GPU, TensorFlow Lite
    CPU/GPU/quant) and the PhoneBit runner used in the paper's comparison.

``repro.models`` / ``repro.datasets`` / ``repro.training``
    The three benchmark networks (AlexNet, YOLOv2-Tiny, VGG16), synthetic
    dataset generators and a straight-through-estimator BNN trainer.

``repro.analysis``
    Experiment drivers that regenerate every table and figure of the
    paper's evaluation section.
"""

from repro.core.network import Network
from repro.core.engine import BatchInferenceReport, PhoneBitEngine, InferenceReport
from repro.gpusim.device import DeviceSpec, snapdragon_820, snapdragon_855

__all__ = [
    "Network",
    "PhoneBitEngine",
    "InferenceReport",
    "BatchInferenceReport",
    "DeviceSpec",
    "snapdragon_820",
    "snapdragon_855",
]

__version__ = "0.1.0"
