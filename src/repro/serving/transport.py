"""Pluggable cluster transports: multiprocessing pipes, UDS and TCP.

The cluster front end (:mod:`repro.serving.cluster`) and its workers speak
a small message protocol — ``reqs`` / ``res`` / ``hb`` / ``reports`` — that
was deliberately message-shaped from day one.  This module makes the wire
underneath it pluggable:

* :class:`PipeTransport` — today's single-host behaviour: workers are
  forked/spawned child processes talking over ``multiprocessing`` queues.
* :class:`SocketTransport` — workers connect over a Unix-domain socket
  (same host, no TCP stack) or TCP (cross-host), self-register with a
  ``hello`` → ``welcome`` → ``ready`` handshake, and fetch model bytes
  they do not hold through the digest-keyed per-host cache
  (:class:`repro.serving.shm_store.HostModelCache`).

Messages cross sockets as **length-prefixed frames**.  The hot path —
request images out, result rows back — is serialized without pickle: the
message skeleton goes as JSON and every :class:`numpy.ndarray` payload is
framed as raw bytes via ``memoryview`` (zero-copy vectored send, and a
zero-copy ``np.frombuffer`` view on receive).  Cold-path messages whose
skeletons JSON cannot express (``reports`` carrying dataclasses, the
``welcome`` config) transparently fall back to pickling the *skeleton
only* — bulk arrays are always extracted first.

Crash detection is connection loss plus heartbeat staleness; recovery is
re-admission: a worker that lost its link reconnects (``hello`` again),
re-attaches its cached artifacts in milliseconds and rejoins the router,
while the front end requeues the in-flight work the dead link stranded.

See ``docs/deployment.md`` for the operator's view (topologies, transport
selection, failure semantics) and ``docs/architecture.md`` for where this
layer sits.

Examples
--------
The frame codec round-trips arbitrary message tuples; arrays keep their
dtype, shape and exact bytes:

>>> import numpy as np
>>> from repro.serving.transport import decode_message, encode_message
>>> image = np.arange(12, dtype=np.uint8).reshape(3, 4)
>>> frame = b"".join(encode_message(("reqs", [(7, "MicroCNN", image)])))
>>> kind, items = decode_message(memoryview(frame)[4:])
>>> rid, model, back = items[0]
>>> (kind, rid, model, back.dtype.str, back.shape, bool((back == image).all()))
('reqs', 7, 'MicroCNN', '|u1', (3, 4), True)

Addresses use URL-ish schemes; ``parse_address`` validates and splits:

>>> from repro.serving.transport import format_address, parse_address
>>> parse_address("tcp://127.0.0.1:7070")
('tcp', ('127.0.0.1', 7070))
>>> parse_address("uds:///tmp/cluster.sock")
('uds', '/tmp/cluster.sock')
>>> format_address("uds", "/tmp/cluster.sock")
'uds:///tmp/cluster.sock'
"""

from __future__ import annotations

import json
import os
import pickle
import socket
import struct
import subprocess
import sys
import threading
import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "Channel",
    "PipeTransport",
    "SocketTransport",
    "TransportClosed",
    "WorkerEndpoint",
    "WorkerInitError",
    "decode_message",
    "encode_message",
    "format_address",
    "parse_address",
    "run_cluster_worker",
]


class TransportClosed(ConnectionError):
    """The peer hung up (or the channel was closed locally)."""


class WorkerInitError(RuntimeError):
    """A socket worker failed deterministically while initializing.

    Raised after the failure has been reported to the router as an
    ``init_error`` message; :func:`run_cluster_worker` exits instead of
    reconnecting — retrying a deterministic init failure would only turn
    one clear error into a respawn storm.
    """


# ---------------------------------------------------------------------------
# frame codec
# ---------------------------------------------------------------------------
#
# frame   := u32 length | body              (length covers the body only)
# body    := u8 codec | u16 n_arrays | array_meta* | u32 skel_len | skeleton
#            | array_payload*               (payloads in meta order)
# meta    := u8 dtype_len | dtype_str | u8 ndim | u64 dim*
# codec   := 0 (JSON skeleton) | 1 (pickle skeleton)
#
# Array payloads are appended raw — never pickled, never copied on encode
# (memoryview framing) and exposed as np.frombuffer views on decode.

_LEN = struct.Struct("<I")
_BODY_HEAD = struct.Struct("<BH")
_SKEL_LEN = struct.Struct("<I")
_U64 = struct.Struct("<Q")

_CODEC_JSON = 0
_CODEC_PICKLE = 1

#: Upper bound on one frame body; a router/worker pair never legitimately
#: exceeds this (the largest frame is one model artifact), and a corrupted
#: length prefix must not make the receiver allocate gigabytes.
MAX_FRAME_BYTES = 1 << 31


class _NDRef:
    """Pickle-skeleton placeholder for an extracted array (by index)."""

    __slots__ = ("index",)

    def __init__(self, index: int) -> None:
        self.index = index


#: Classes a pickle skeleton may reconstruct.  Cold-path skeletons only
#: ever carry the serving-layer dataclasses (WorkerConfig, ServiceReport
#: and friends), plain containers/scalars and NumPy scalar machinery —
#: anything else in a frame is either a bug or an attack, so the unpickler
#: refuses it rather than executing an arbitrary ``__reduce__`` payload.
#: Builtins are allowlisted *by name*: the module as a whole contains
#: classic gadgets (``eval``, ``exec``, ``getattr``, ``print``...).
#: (The transport still assumes a trusted network — see
#: ``docs/deployment.md`` — this merely removes the easiest escalation.)
_SKELETON_MODULES = (
    "repro.serving.cache",
    "repro.serving.cluster",
    "repro.serving.metrics",
    "repro.serving.scheduler",
    "repro.serving.service",
    "repro.serving.transport",
    # NumPy scalar/dtype reconstruction (e.g. a np.float64 inside a report).
    "numpy",
    "numpy.core.multiarray",
    "numpy._core.multiarray",
)
_SKELETON_BUILTINS = frozenset({
    "bool", "bytearray", "bytes", "complex", "dict", "float", "frozenset",
    "int", "list", "set", "slice", "str", "tuple",
})


class _SkeletonUnpickler(pickle.Unpickler):
    """Unpickler restricted to the message-skeleton class allowlist."""

    def find_class(self, module: str, name: str):
        if module in _SKELETON_MODULES or (
                module == "builtins" and name in _SKELETON_BUILTINS):
            return super().find_class(module, name)
        raise pickle.UnpicklingError(
            f"skeleton references disallowed class {module}.{name}"
        )


def _loads_skeleton(data: bytes):
    import io

    return _SkeletonUnpickler(io.BytesIO(data)).load()


def _extract_arrays(obj, arrays: List[np.ndarray],
                    placeholder: Callable[[int], object] = lambda i: {"__nd__": i}):
    """Replace every ndarray in ``obj`` with a placeholder, collecting them.

    ``placeholder`` makes the one traversal serve both codecs: the JSON
    skeleton marks arrays as ``{"__nd__": i}``, the pickle skeleton as
    :class:`_NDRef` (a dict marker could collide with payload dicts there).
    """
    if isinstance(obj, np.ndarray):
        index = len(arrays)
        arrays.append(obj)
        return placeholder(index)
    if isinstance(obj, (list, tuple)):
        return [_extract_arrays(item, arrays, placeholder) for item in obj]
    if isinstance(obj, dict):
        return {key: _extract_arrays(value, arrays, placeholder)
                for key, value in obj.items()}
    return obj


def _restore_arrays(obj, arrays: Sequence[np.ndarray]):
    if isinstance(obj, dict):
        if set(obj) == {"__nd__"}:
            return arrays[obj["__nd__"]]
        return {key: _restore_arrays(value, arrays)
                for key, value in obj.items()}
    if isinstance(obj, _NDRef):
        return arrays[obj.index]
    if isinstance(obj, (list, tuple)):
        return tuple(_restore_arrays(item, arrays) for item in obj)
    return obj


def encode_message(message) -> List[memoryview]:
    """Encode one message tuple into a list of frame buffers.

    The returned buffers are ready for a vectored send (first buffer is the
    ``u32`` length prefix).  Array payloads are *views* of the caller's
    arrays — zero-copy, so the caller must not mutate them until the send
    completes (the cluster never does: request images and result rows are
    effectively immutable).

    Parameters
    ----------
    message : tuple
        Message of JSON-able scalars/containers plus ``np.ndarray`` leaves.
        Non-JSON-able skeletons (dataclasses, bytes) fall back to pickle —
        arrays are extracted either way.

    Returns
    -------
    list of memoryview
        Buffers whose concatenation is the complete frame.

    Examples
    --------
    >>> import numpy as np
    >>> buffers = encode_message(("hb", "w0", 1.5))
    >>> payload = b"".join(buffers)
    >>> decode_message(memoryview(payload)[4:])
    ('hb', 'w0', 1.5)
    """
    arrays: List[np.ndarray] = []
    skeleton = _extract_arrays(message, arrays)
    try:
        skel_bytes = json.dumps(skeleton, separators=(",", ":")).encode()
        codec = _CODEC_JSON
    except (TypeError, ValueError):
        arrays = []
        skeleton = _extract_arrays(message, arrays, placeholder=_NDRef)
        skel_bytes = pickle.dumps(skeleton, protocol=pickle.HIGHEST_PROTOCOL)
        codec = _CODEC_PICKLE

    meta = bytearray()
    payloads: List[memoryview] = []
    for arr in arrays:
        if not arr.flags.c_contiguous:
            arr = np.ascontiguousarray(arr)
        dtype_str = arr.dtype.str.encode()
        meta.append(len(dtype_str))
        meta.extend(dtype_str)
        meta.append(arr.ndim)
        for dim in arr.shape:
            meta.extend(_U64.pack(dim))
        payloads.append(memoryview(arr).cast("B"))

    body_head = _BODY_HEAD.pack(codec, len(arrays))
    skel_head = _SKEL_LEN.pack(len(skel_bytes))
    body_len = (len(body_head) + len(meta) + len(skel_head) + len(skel_bytes)
                + sum(len(p) for p in payloads))
    if body_len > MAX_FRAME_BYTES:
        raise ValueError(f"message frame too large: {body_len} bytes")
    buffers = [memoryview(_LEN.pack(body_len)), memoryview(body_head),
               memoryview(bytes(meta)), memoryview(skel_head),
               memoryview(skel_bytes)]
    buffers.extend(payloads)
    return buffers


def decode_message(body: memoryview):
    """Decode one frame body (everything after the length prefix).

    Array leaves come back as ``np.frombuffer`` views into ``body`` —
    zero-copy, so the backing buffer must outlive the arrays (the channel
    hands each frame its own buffer, so this is automatic).

    Examples
    --------
    >>> import numpy as np
    >>> frame = b"".join(encode_message(("res", "w1", 3, np.float64([1.5]))))
    >>> kind, worker, rid, row = decode_message(memoryview(frame)[4:])
    >>> (kind, worker, rid, float(row[0]))
    ('res', 'w1', 3, 1.5)
    """
    codec, n_arrays = _BODY_HEAD.unpack_from(body, 0)
    offset = _BODY_HEAD.size
    metas: List[Tuple[str, Tuple[int, ...]]] = []
    for _ in range(n_arrays):
        dtype_len = body[offset]
        offset += 1
        dtype_str = bytes(body[offset:offset + dtype_len]).decode()
        offset += dtype_len
        ndim = body[offset]
        offset += 1
        shape = tuple(_U64.unpack_from(body, offset + 8 * i)[0]
                      for i in range(ndim))
        offset += 8 * ndim
        metas.append((dtype_str, shape))
    (skel_len,) = _SKEL_LEN.unpack_from(body, offset)
    offset += _SKEL_LEN.size
    skel_bytes = body[offset:offset + skel_len]
    offset += skel_len

    arrays: List[np.ndarray] = []
    for dtype_str, shape in metas:
        dtype = np.dtype(dtype_str)
        nbytes = dtype.itemsize * int(np.prod(shape, dtype=np.int64)) \
            if shape else dtype.itemsize
        arr = np.frombuffer(body[offset:offset + nbytes], dtype=dtype)
        arrays.append(arr.reshape(shape))
        offset += nbytes

    if codec == _CODEC_JSON:
        skeleton = json.loads(bytes(skel_bytes))
    else:
        skeleton = _loads_skeleton(bytes(skel_bytes))
    return _restore_arrays(skeleton, arrays)


#: Buffers per sendmsg call, kept under Linux's UIO_MAXIOV (1024) — a large
#: coalesced request batch can legitimately carry more arrays than that.
_SENDMSG_MAX_BUFFERS = 512


def _send_buffers(sock: socket.socket, buffers: List[memoryview]) -> None:
    """Vectored sendall: writes every buffer without concatenating them."""
    pending = [buf for buf in buffers if len(buf)]
    while pending:
        sent = sock.sendmsg(pending[:_SENDMSG_MAX_BUFFERS])
        while sent > 0 and pending:
            head = pending[0]
            if sent >= len(head):
                sent -= len(head)
                pending.pop(0)
            else:
                pending[0] = head[sent:]
                sent = 0


def _recv_exact(sock: socket.socket, nbytes: int) -> memoryview:
    buf = bytearray(nbytes)
    view = memoryview(buf)
    got = 0
    while got < nbytes:
        n = sock.recv_into(view[got:], nbytes - got)
        if n == 0:
            raise TransportClosed("peer closed the connection")
        got += n
    return memoryview(buf)


# ---------------------------------------------------------------------------
# duplex channel
# ---------------------------------------------------------------------------

class Channel:
    """One framed duplex connection (thread-safe send, single-reader recv).

    Parameters
    ----------
    sock : socket.socket
        A connected stream socket (TCP or Unix-domain).  ``TCP_NODELAY``
        is set when applicable — heartbeat and single-request frames must
        not sit in Nagle buffers.

    Examples
    --------
    >>> import socket
    >>> import numpy as np
    >>> left, right = socket.socketpair()
    >>> a, b = Channel(left), Channel(right)
    >>> a.send(("reqs", [(0, "MicroCNN", np.zeros((2, 2), dtype=np.uint8))]))
    >>> kind, items = b.recv()
    >>> (kind, items[0][0], items[0][2].shape)
    ('reqs', 0, (2, 2))
    >>> a.close(); b.close()
    """

    def __init__(self, sock: socket.socket) -> None:
        self._sock = sock
        self._send_lock = threading.Lock()
        self._closed = False
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:
            pass  # Unix-domain sockets have no Nagle to disable

    @property
    def closed(self) -> bool:
        return self._closed

    def send(self, message) -> None:
        """Frame and send one message (raises :class:`TransportClosed`)."""
        buffers = encode_message(message)
        with self._send_lock:
            if self._closed:
                raise TransportClosed("channel is closed")
            try:
                _send_buffers(self._sock, buffers)
            except OSError as exc:
                self._closed = True
                raise TransportClosed(str(exc)) from exc

    def recv(self):
        """Receive one message (blocking); raises on EOF/teardown."""
        try:
            head = _recv_exact(self._sock, _LEN.size)
            (body_len,) = _LEN.unpack(head)
            if body_len > MAX_FRAME_BYTES:
                raise TransportClosed(f"oversized frame: {body_len} bytes")
            return decode_message(_recv_exact(self._sock, body_len))
        except OSError as exc:
            self._closed = True
            raise TransportClosed(str(exc)) from exc

    def close(self) -> None:
        self._closed = True
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:  # pragma: no cover - double close
            pass


# ---------------------------------------------------------------------------
# addresses
# ---------------------------------------------------------------------------

def parse_address(address: str) -> Tuple[str, object]:
    """Split ``tcp://host:port`` / ``uds:///path`` into (scheme, target).

    Returns
    -------
    tuple
        ``("tcp", (host, port))`` or ``("uds", path)``.

    Examples
    --------
    >>> parse_address("tcp://0.0.0.0:0")
    ('tcp', ('0.0.0.0', 0))
    """
    if address.startswith("tcp://"):
        rest = address[len("tcp://"):]
        host, _, port = rest.rpartition(":")
        if not host or not port.isdigit():
            raise ValueError(f"invalid tcp address {address!r}; "
                             f"expected tcp://host:port")
        return "tcp", (host, int(port))
    if address.startswith("uds://"):
        path = address[len("uds://"):]
        if not path:
            raise ValueError(f"invalid uds address {address!r}; "
                             f"expected uds:///path/to.sock")
        return "uds", path
    raise ValueError(f"unsupported address {address!r}; "
                     f"use tcp://host:port or uds:///path")


def format_address(scheme: str, target) -> str:
    """Inverse of :func:`parse_address`.

    Examples
    --------
    >>> format_address("tcp", ("127.0.0.1", 7070))
    'tcp://127.0.0.1:7070'
    """
    if scheme == "tcp":
        host, port = target
        return f"tcp://{host}:{port}"
    if scheme == "uds":
        return f"uds://{target}"
    raise ValueError(f"unsupported scheme {scheme!r}")


def _connect(address: str, timeout_s: float = 10.0) -> socket.socket:
    scheme, target = parse_address(address)
    if scheme == "tcp":
        return socket.create_connection(target, timeout=timeout_s)
    sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    sock.settimeout(timeout_s)
    sock.connect(target)
    return sock


def _connect_with_retry(address: str, retry_s: float,
                        poll_s: float = 0.1) -> Optional[socket.socket]:
    """Dial until the router answers or ``retry_s`` elapses.

    This is what lets an operator start workers *before* the router: the
    worker polls until the listener exists (connection refused / missing
    socket file are retried; other errors propagate).
    """
    deadline = time.monotonic() + retry_s
    while True:
        try:
            sock = _connect(address)
            sock.settimeout(None)
            return sock
        except (ConnectionRefusedError, FileNotFoundError, ConnectionResetError,
                socket.timeout, TimeoutError):
            if time.monotonic() >= deadline:
                return None
            time.sleep(poll_s)


# ---------------------------------------------------------------------------
# router-side endpoints
# ---------------------------------------------------------------------------

class WorkerEndpoint:
    """Router-side handle for one worker, however it is connected.

    The cluster front end only ever talks to workers through this surface:
    ``send`` for outbound messages, ``alive`` for supervision, ``kill`` for
    tests/hard teardown, ``shutdown`` for cleanup.  ``respawnable`` tells
    the supervisor whether the router owns the worker's lifecycle (it
    spawned the process) or merely its link (an externally launched worker
    re-admits itself by reconnecting).
    """

    worker_id: str
    respawnable: bool = False
    #: Whether a lost link may come back on its own (socket workers redial;
    #: a pipe worker's link *is* its process).
    reconnects: bool = False

    def send(self, message) -> None:
        raise NotImplementedError

    def alive(self) -> bool:
        raise NotImplementedError

    def request_stop(self) -> None:
        """Best-effort graceful stop message."""
        try:
            self.send(("stop",))
        except (TransportClosed, ValueError, OSError):
            pass

    def kill(self) -> None:
        raise NotImplementedError

    def reap(self) -> None:
        """Release a dead worker's transport resources without blocking."""
        raise NotImplementedError

    def surviving_process(self):
        """The worker's still-running OS process after a link death.

        Non-``None`` only when the *connection* died while the process
        lives — the reconnect-expected case.  Pipe workers' link *is*
        their process, so they always return ``None``.
        """
        return None

    def shutdown(self, timeout_s: float = 5.0) -> None:
        raise NotImplementedError


class _PipeEndpoint(WorkerEndpoint):
    """A forked/spawned child process over multiprocessing queues."""

    respawnable = True

    def __init__(self, worker_id: str, process, request_q) -> None:
        self.worker_id = worker_id
        self.process = process
        self.request_q = request_q

    def send(self, message) -> None:
        try:
            self.request_q.put(message)
        except (ValueError, OSError) as exc:
            raise TransportClosed(str(exc)) from exc

    def alive(self) -> bool:
        return self.process.is_alive()

    def kill(self) -> None:
        self.process.kill()

    def reap(self) -> None:
        if self.process.is_alive():  # pragma: no cover - hb-stale only
            self.process.terminate()
        self.request_q.close()
        self.request_q.cancel_join_thread()

    def shutdown(self, timeout_s: float = 5.0) -> None:
        self.process.join(timeout=timeout_s)
        if self.process.is_alive():  # pragma: no cover - stragglers
            self.process.terminate()
            self.process.join(timeout=timeout_s)
        self.request_q.close()
        self.request_q.cancel_join_thread()


class _SocketEndpoint(WorkerEndpoint):
    """A self-registered worker over one framed socket connection."""

    reconnects = True

    def __init__(self, worker_id: str, channel: Channel,
                 process: Optional[subprocess.Popen] = None) -> None:
        self.worker_id = worker_id
        self.channel = channel
        self.process = process  #: set when the router spawned the worker
        self.respawnable = process is not None
        self._reader: Optional[threading.Thread] = None

    def send(self, message) -> None:
        self.channel.send(message)

    def alive(self) -> bool:
        if self.channel.closed:
            return False
        if self.process is not None and self.process.poll() is not None:
            return False
        return True

    def kill(self) -> None:
        if self.process is not None:
            self.process.kill()
        self.channel.close()

    def reap(self) -> None:
        # Close only the link; a live process may be mid-reconnect.
        self.channel.close()

    def surviving_process(self):
        if self.process is not None and self.process.poll() is None:
            return self.process
        return None

    def start_reader(self, deliver: Callable[[tuple], None]) -> None:
        """Pump inbound frames into ``deliver``; EOF becomes ``conn_lost``."""

        def _read_loop() -> None:
            while True:
                try:
                    message = self.channel.recv()
                except TransportClosed:
                    break
                except Exception:  # pragma: no cover - corrupt frame
                    # A framing error is unrecoverable mid-stream; treat it
                    # as a dead link so the supervisor requeues.
                    break
                try:
                    deliver(message)
                except Exception:  # pragma: no cover - defensive
                    # One malformed message must not kill the reader (that
                    # would strand every in-flight future on this worker).
                    pass
            deliver(("conn_lost", self.worker_id))

        self._reader = threading.Thread(
            target=_read_loop, name=f"cluster-read-{self.worker_id}",
            daemon=True,
        )
        self._reader.start()

    def shutdown(self, timeout_s: float = 5.0) -> None:
        if self.process is not None:
            try:
                self.process.wait(timeout=timeout_s)
            except subprocess.TimeoutExpired:  # pragma: no cover - stragglers
                self.process.kill()
                self.process.wait(timeout=timeout_s)
        self.channel.close()
        if self._reader is not None and self._reader is not threading.current_thread():
            self._reader.join(timeout=timeout_s)


# ---------------------------------------------------------------------------
# transports
# ---------------------------------------------------------------------------

class PipeTransport:
    """Single-host transport over ``multiprocessing`` queues (the default).

    Workers are child processes of the router; each has a private request
    queue and all share one response queue, which this transport pumps into
    the cluster's message handler.  This is PR 4's exact behaviour behind
    the new endpoint surface.
    """

    kind = "pipe"
    #: Pipe workers are endpoints the moment they are spawned; socket
    #: workers only become endpoints when their hello arrives.
    spawns_via_registration = False

    def __init__(self, mp_context=None) -> None:
        import multiprocessing

        if isinstance(mp_context, str):
            mp_context = multiprocessing.get_context(mp_context)
        if mp_context is None:
            methods = multiprocessing.get_all_start_methods()
            mp_context = multiprocessing.get_context(
                "fork" if "fork" in methods else "spawn"
            )
        self._ctx = mp_context
        self._deliver: Optional[Callable[[tuple], None]] = None
        self._response_q = None
        self._pump_thread: Optional[threading.Thread] = None
        self._closing = threading.Event()

    def start(self, deliver: Callable[[tuple], None], register=None) -> None:
        self._deliver = deliver
        self._response_q = self._ctx.Queue()
        self._pump_thread = threading.Thread(
            target=self._pump, name="cluster-pump", daemon=True
        )
        self._pump_thread.start()

    def _pump(self) -> None:
        import queue as queue_mod

        while True:
            try:
                message = self._response_q.get(timeout=0.05)
            except queue_mod.Empty:
                if self._closing.is_set():
                    return
                continue
            except (EOFError, OSError):  # pragma: no cover - queue torn down
                return
            try:
                self._deliver(message)
            except Exception:  # pragma: no cover - defensive
                pass

    def spawn(self, worker_id: str, handles: Dict, config) -> _PipeEndpoint:
        """Fork/spawn one worker process wired to the shared response queue."""
        from repro.serving.cluster import _worker_main

        request_q = self._ctx.Queue()
        process = self._ctx.Process(
            target=_worker_main,
            args=(worker_id, handles, config, request_q, self._response_q),
            name=f"cluster-{worker_id}",
            daemon=True,
        )
        process.start()
        return _PipeEndpoint(worker_id, process, request_q)

    def close(self) -> None:
        self._closing.set()
        if self._pump_thread is not None:
            self._pump_thread.join(timeout=5.0)
        if self._response_q is not None:
            self._response_q.close()
            self._response_q.cancel_join_thread()


class SocketTransport:
    """Socket transport: a listener the workers dial into.

    Parameters
    ----------
    address : str
        ``tcp://host:port`` (port 0 picks an ephemeral port) or
        ``uds:///path/to.sock`` (a stale socket file left by a dead router
        is reclaimed).  The resolved address — with the real port — is
        available as :attr:`address` after construction and is what spawned
        workers connect back to.
    """

    spawns_via_registration = True

    def __init__(self, address: str = "tcp://127.0.0.1:0") -> None:
        scheme, target = parse_address(address)
        self.kind = scheme
        self._uds_path: Optional[str] = None
        if scheme == "tcp":
            self._listener = socket.create_server(
                target, family=socket.AF_INET, backlog=64, reuse_port=False
            )
            host, port = self._listener.getsockname()[:2]
            self.address = format_address("tcp", (target[0], port))
        else:
            if os.path.exists(target):
                # A router owns its socket path; a stale file here means a
                # previous router died without cleanup.
                os.unlink(target)
            self._listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            self._listener.bind(target)
            self._listener.listen(64)
            self._uds_path = target
            self.address = format_address("uds", target)
        self._deliver: Optional[Callable[[tuple], None]] = None
        self._register = None
        self._accept_thread: Optional[threading.Thread] = None
        self._closing = threading.Event()

    def start(self, deliver: Callable[[tuple], None],
              register: Callable[[Channel, dict], Optional[_SocketEndpoint]]
              ) -> None:
        """Begin accepting workers.

        ``register`` is called with ``(channel, hello_meta)`` for every
        completed handshake and must return the endpoint to start reading
        from (or ``None`` to reject, e.g. after close).
        """
        self._deliver = deliver
        self._register = register
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="cluster-accept", daemon=True
        )
        self._accept_thread.start()

    def _accept_loop(self) -> None:
        self._listener.settimeout(0.2)
        while not self._closing.is_set():
            try:
                conn, _addr = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:  # pragma: no cover - listener torn down
                return
            threading.Thread(
                target=self._handshake, args=(conn,),
                name="cluster-handshake", daemon=True,
            ).start()

    def _handshake(self, conn: socket.socket) -> None:
        conn.settimeout(30.0)
        channel = Channel(conn)
        try:
            message = channel.recv()
        except TransportClosed:
            channel.close()
            return
        if not (isinstance(message, tuple) and len(message) == 2
                and message[0] == "hello"):
            channel.close()
            return
        conn.settimeout(None)
        endpoint = self._register(channel, dict(message[1]))
        if endpoint is None:
            channel.close()
            return
        endpoint.start_reader(self._deliver)

    @staticmethod
    def make_endpoint(worker_id: str, channel: Channel,
                      process: Optional[subprocess.Popen]) -> "_SocketEndpoint":
        """Endpoint for a registered connection (keeps the class private)."""
        return _SocketEndpoint(worker_id, channel, process)

    def spawn_command(self, extra_args: Sequence[str] = ()) -> List[str]:
        """Command line for a local worker subprocess dialing this router."""
        return [sys.executable, "-m", "repro.cli", "cluster-worker",
                "--connect", self.address, *extra_args]

    def launch_worker(self, extra_args: Sequence[str] = ()) -> subprocess.Popen:
        """Spawn a loopback worker subprocess (self-registers over sockets).

        The subprocess runs the same ``repro.cli cluster-worker`` entry
        point an operator uses on a remote host, so loopback workers
        exercise the cross-host path end to end.
        """
        env = dict(os.environ)
        src_root = os.path.dirname(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__))))
        env["PYTHONPATH"] = src_root + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        return subprocess.Popen(self.spawn_command(extra_args), env=env)

    def close(self) -> None:
        self._closing.set()
        try:
            self._listener.close()
        except OSError:  # pragma: no cover - double close
            pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5.0)
        if self._uds_path is not None:
            try:
                os.unlink(self._uds_path)
            except FileNotFoundError:
                pass


# ---------------------------------------------------------------------------
# worker side (socket transports)
# ---------------------------------------------------------------------------

def fetch_artifact(channel: Channel, worker_id: str, digest: str,
                   defer: Optional[List] = None) -> bytes:
    """Fetch one published artifact's bytes over ``channel`` by digest.

    Sent as ``("fetch", worker_id, digest)``; the router answers
    ``("blob", digest, payload)`` with the payload framed as a raw uint8
    array (zero-copy out of the owner's shared-memory segment).  Runs
    during worker initialization (before the serve loop owns the
    connection) and during dynamic re-pin attaches (mid-stream) — in the
    latter case ``defer`` collects the unrelated messages that arrive
    while waiting for the blob, so the serve loop can replay them instead
    of losing them.
    """
    channel.send(("fetch", worker_id, digest))
    while True:
        message = channel.recv()
        kind = message[0]
        if kind == "blob" and message[1] == digest:
            return bytes(message[2])
        if kind == "blob_error" and message[1] == digest:
            raise RuntimeError(f"router could not serve artifact: {message[2]}")
        if kind == "stop":
            raise TransportClosed("router stopped during artifact fetch")
        if defer is not None:
            defer.append(message)
        # With no defer list (initialization), anything else is ignored
        # until our blob arrives; the router sends requests only after
        # "ready".


def build_worker_service(attachments: Sequence, config):
    """Warm an ``InferenceService`` over attached models.

    Shared by the pipe worker (:func:`repro.serving.cluster._worker_main`)
    and the socket worker (:func:`run_cluster_worker`) so both hosts serve
    through an identically configured service.

    Returns
    -------
    (service, attach_ms) : tuple
        The warmed service and per-model attach wall-clock milliseconds.
    """
    from repro.core.engine import PhoneBitEngine
    from repro.serving.pool import ModelPool
    from repro.serving.service import InferenceService

    # Backend selection is per *host*: each worker compiles (or falls back)
    # for its own toolchain, and the bit-exactness gate keeps every
    # worker's answers identical regardless of what it selected.
    # The pool is *strict*: a cluster worker serves exactly the published
    # artifacts it attached.  Without strictness, a request for a model
    # outside the worker's (possibly pinned) attach set would silently
    # build a fresh local copy from the zoo — different weights, outputs
    # no longer bit-identical to the published artifact.
    backend = getattr(config, "backend", None)
    pool = ModelPool(backend=backend, strict=True)
    attach_ms: Dict[str, float] = {}
    for attached in attachments:
        # Register under the artifact's real digest (not the legacy ""),
        # so digest-tagged requests — every cluster dispatch carries the
        # front end's serving digest — resolve to exactly these bytes,
        # and a rollout can stage a second version beside this one.
        pool.register(attached.network, name=attached.handle.model,
                      warm=True, digest=attached.handle.digest)
        attach_ms[attached.handle.model] = attached.attach_ms
    service = InferenceService(
        pool=pool,
        engine=PhoneBitEngine(num_threads=config.threads, backend=backend),
        max_batch_size=config.max_batch_size,
        max_wait_ms=config.max_wait_ms,
        cache_capacity=config.cache_capacity,
        chunk_bytes=config.chunk_bytes,
    )
    return service, attach_ms


def _serve_session(channel: Channel, welcome, attachments_by_digest: Dict,
                   cli_threads: Optional[int], log,
                   cli_backend: Optional[str] = None) -> str:
    """Run one connected session; returns ``"stop"`` or ``"lost"``."""
    from dataclasses import replace

    from repro.serving.shm_store import HostModelCache, ShmModelHandle

    _, worker_id, manifest, config = welcome
    if cli_threads is not None:
        config = replace(config, threads=cli_threads)
    if cli_backend is not None:
        config = replace(config, backend=cli_backend)

    # REPRO_CLUSTER_FORCE_FETCH=1 disables the co-hosted owner-segment fast
    # path, so a loopback worker behaves exactly like a remote host (model
    # bytes travel the wire into the digest cache) — how CI simulates
    # cross-host deployments on one runner.
    force_fetch = os.environ.get("REPRO_CLUSTER_FORCE_FETCH", "") not in (
        "", "0", "false", "False")
    cache: HostModelCache = attachments_by_digest["__cache__"]
    try:
        attachments = []
        for model, digest, nbytes, shm_name in manifest:
            attached = attachments_by_digest.get(digest)
            if attached is None:
                handle = ShmModelHandle(
                    model=model, shm_name="" if force_fetch else shm_name,
                    nbytes=nbytes, digest=digest,
                )
                attached = cache.attach(
                    handle,
                    fetch=lambda w=worker_id, d=digest: fetch_artifact(
                        channel, w, d),
                )
                attachments_by_digest[digest] = attached
            attachments.append(attached)
        service, attach_ms = build_worker_service(attachments, config)
    except TransportClosed:
        raise
    except Exception as exc:
        # Deterministic init failure: tell the router (it fails startup
        # fast with the cause) and refuse to reconnect-loop on it.
        text = f"{type(exc).__name__}: {exc}"
        try:
            channel.send(("init_error", worker_id, text))
        except TransportClosed:
            pass
        raise WorkerInitError(text) from exc
    channel.send(("ready", worker_id, os.getpid(), attach_ms))
    log(f"worker {worker_id}: ready ({len(attachments)} model(s))")

    hb_stop = threading.Event()
    #: Fault injection: heartbeats are suppressed until this monotonic
    #: stamp (a stalled worker must *look* stalled — a separate heartbeat
    #: thread cheerfully reporting liveness would defeat the fault).
    stall_until = [0.0]

    def _heartbeat() -> None:
        interval = max(0.01, config.heartbeat_interval_s)
        # Monotonic stamp: a wall-clock step on this host (NTP, DST) must
        # not distort heartbeat pacing or let the router's staleness check
        # mass-declare workers dead.
        while not hb_stop.wait(interval):
            if time.monotonic() < stall_until[0]:
                continue
            try:
                channel.send(("hb", worker_id, time.monotonic()))
            except TransportClosed:
                return

    hb_thread = threading.Thread(target=_heartbeat, name="worker-hb",
                                 daemon=True)
    hb_thread.start()

    def _send_response(message) -> None:
        try:
            channel.send(message)
        except TransportClosed:
            # Link died with work in flight: the router already requeued it
            # on connection loss, so the answer is redundant — drop it.
            pass

    outcome = "lost"
    #: Messages that arrived while a dynamic attach was fetching its blob;
    #: replayed in order before reading the socket again.
    deferred: List = []
    try:
        while True:
            if deferred:
                message = deferred.pop(0)
            else:
                try:
                    message = channel.recv()
                except TransportClosed:
                    break
            kind = message[0]
            if kind == "reqs":
                for rid, model, image, digest in message[1]:
                    _submit_one(service, _send_response, worker_id, rid,
                                model, image, digest)
            elif kind == "attach":
                # Dynamic re-pin: attach more published artifacts through
                # the per-host digest cache (one wire fetch per host ever).
                for model, digest, nbytes, shm_name in message[1]:
                    t0 = time.perf_counter()
                    attached = attachments_by_digest.get(digest)
                    if attached is None:
                        handle = ShmModelHandle(
                            model=model,
                            shm_name="" if force_fetch else shm_name,
                            nbytes=nbytes, digest=digest,
                        )
                        attached = cache.attach(
                            handle,
                            fetch=lambda w=worker_id, d=digest: fetch_artifact(
                                channel, w, d, defer=deferred),
                        )
                        attachments_by_digest[digest] = attached
                    service.pool.register(attached.network, name=model,
                                          warm=True, digest=digest)
                    _send_response(("attached", worker_id, model,
                                    (time.perf_counter() - t0) * 1000.0))
                log(f"worker {worker_id}: attached "
                    f"{[m for m, *_ in message[1]]}")
            elif kind == "prepare":
                # Rollout staging: fetch-ahead and warm the *candidate*
                # version while the stable one keeps serving.  Registered
                # inactive — nothing routes to it until digest-tagged
                # canary probes arrive, and untagged traffic never sees it
                # before an explicit commit.
                for model, digest, nbytes, shm_name in message[1]:
                    t0 = time.perf_counter()
                    try:
                        attached = attachments_by_digest.get(digest)
                        if attached is None:
                            handle = ShmModelHandle(
                                model=model,
                                shm_name="" if force_fetch else shm_name,
                                nbytes=nbytes, digest=digest,
                            )
                            attached = cache.attach(
                                handle,
                                fetch=lambda w=worker_id, d=digest:
                                fetch_artifact(channel, w, d, defer=deferred),
                            )
                            attachments_by_digest[digest] = attached
                        service.pool.register(attached.network, name=model,
                                              warm=True, digest=digest,
                                              activate=False)
                    except TransportClosed:
                        raise
                    except Exception as exc:  # noqa: BLE001 - staging must not kill serving
                        log(f"worker {worker_id}: prepare {model}@"
                            f"{digest[:12]} failed: {exc}")
                        continue  # no ack: the rollout's staging timeout rolls back
                    _send_response(("prepared", worker_id, model, digest,
                                    (time.perf_counter() - t0) * 1000.0))
                    log(f"worker {worker_id}: staged {model}@{digest[:12]}")
            elif kind == "commit":
                # Rollout commit (or rollback re-commit of the old digest):
                # an atomic worker-local pointer flip.
                _, model, digest = message
                try:
                    service.pool.set_active(model, digest)
                except KeyError as exc:
                    log(f"worker {worker_id}: commit {model}@{digest[:12]} "
                        f"failed: {exc}")
                else:
                    _send_response(("committed", worker_id, model, digest))
                    log(f"worker {worker_id}: active {model}@{digest[:12]}")
            elif kind == "detach":
                # Attach revocation: drop resident versions (rollout
                # cleanup) or whole models (pin shrink, digest "") and
                # free the shm views backing them.
                freed = 0
                done_items = []
                for model, digest in message[1]:
                    try:
                        if digest:
                            service.retire(model, digest)
                            victims = [digest]
                        else:
                            service.evict(model)
                            victims = [d for d, a in
                                       attachments_by_digest.items()
                                       if d != "__cache__"
                                       and a.handle.model == model]
                    except (KeyError, ValueError) as exc:
                        log(f"worker {worker_id}: detach {model}@"
                            f"{digest[:12]} refused: {exc}")
                        continue
                    for victim in victims:
                        attached = attachments_by_digest.pop(victim, None)
                        if attached is not None:
                            freed += attached.handle.nbytes
                            attached.close()
                    done_items.append((model, digest))
                _send_response(("detached", worker_id, done_items, freed))
                log(f"worker {worker_id}: detached {done_items} "
                    f"({freed} bytes)")
            elif kind == "report":
                _send_response(("reports", worker_id, message[1],
                                service.reports()))
            elif kind == "stall":
                # Fault injection: wedge this worker — serve loop blocked,
                # heartbeats suppressed — for the requested window.  From
                # the router it is indistinguishable from a GC pause or a
                # page-in storm.
                stall_until[0] = time.monotonic() + float(message[1])
                time.sleep(float(message[1]))
            elif kind == "stop":
                outcome = "stop"
                break
    finally:
        hb_stop.set()
        service.close(drain=True)
        if outcome == "stop":
            _send_response(("reports", worker_id, -1, service.reports()))
            _send_response(("bye", worker_id))
    return outcome


def _submit_one(service, send: Callable[[tuple], None], worker_id: str,
                rid: int, model: str, image: np.ndarray,
                digest: str = "") -> None:
    """Feed one routed request into the local service; answer via ``send``.

    ``digest`` pins the request to one resident artifact version (every
    cluster dispatch is version-tagged); ``""`` serves the active version.
    """
    from concurrent.futures import Future

    try:
        future = service.submit(model, np.asarray(image),
                                digest=digest or None)
    except Exception as exc:
        send(("err", worker_id, rid, f"{type(exc).__name__}: {exc}"))
        return

    def _done(done: Future, _rid: int = rid) -> None:
        error = done.exception()
        if error is not None:
            send(("err", worker_id, _rid, f"{type(error).__name__}: {error}"))
        else:
            send(("res", worker_id, _rid, done.result()))

    future.add_done_callback(_done)


def run_cluster_worker(address: str, threads: Optional[int] = None,
                       retry_s: float = 30.0, reconnect: bool = True,
                       log: Callable[[str], None] = print,
                       backend: Optional[str] = None) -> int:
    """Run a self-registering cluster worker until the router stops it.

    This is the ``python -m repro.cli cluster-worker`` entry point: dial
    ``address`` (retrying until the router is up or ``retry_s`` elapses),
    handshake, attach every published model through the per-host digest
    cache (fetching bytes over the wire only for artifacts this host has
    never seen), then serve requests.  On **connection loss** the worker
    reconnects and re-registers — its cached artifacts make re-admission
    take milliseconds; on a **graceful stop** from the router it drains
    in-flight work and exits.

    Parameters
    ----------
    address : str
        Router address (``tcp://host:port`` or ``uds:///path``).
    threads : int, optional
        Fused-executor threads; overrides the router-sent worker config.
    backend : str, optional
        Kernel-backend spec (``auto``/``numpy``/``cffi``/``numba``);
        overrides the router-sent worker config for *this host only* —
        the knob is per host because the toolchain is.
    retry_s : float
        How long to keep dialing a router that is not (yet) listening.
    reconnect : bool
        Reconnect after connection loss (``False``: exit instead).

    Returns
    -------
    int
        Process exit code: 0 after a graceful stop, 1 when the router
        never answered (or the link died with ``reconnect=False``).
    """
    from repro.serving.shm_store import HostModelCache

    attachments_by_digest: Dict = {"__cache__": HostModelCache()}
    code = 1
    try:
        while True:
            sock = _connect_with_retry(address, retry_s)
            if sock is None:
                log(f"worker: no router at {address} after {retry_s:.0f}s")
                return 1
            channel = Channel(sock)
            try:
                channel.send(("hello", {"pid": os.getpid(),
                                        "host": socket.gethostname()}))
                welcome = channel.recv()
                if not (isinstance(welcome, tuple) and welcome
                        and welcome[0] == "welcome"):
                    raise TransportClosed("router sent no welcome")
                outcome = _serve_session(channel, welcome,
                                         attachments_by_digest, threads, log,
                                         cli_backend=backend)
            except TransportClosed:
                outcome = "lost"
            except WorkerInitError as exc:
                log(f"worker: initialization failed: {exc}")
                return 1
            finally:
                channel.close()
            if outcome == "stop":
                log("worker: stopped by router")
                code = 0
                break
            if not reconnect:
                log("worker: connection lost; exiting (reconnect disabled)")
                break
            log("worker: connection lost; reconnecting")
    finally:
        cache = attachments_by_digest.pop("__cache__")
        for attached in attachments_by_digest.values():
            attached.close()
        cache.close()
    return code
