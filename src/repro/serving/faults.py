"""Deterministic fault injection for the serving cluster.

Every failure path the cluster claims to survive — crashed workers, lost
connections, stalled processes, dropped/delayed/duplicated frames — used
to be exercised by ad-hoc ``SIGKILL`` s scattered through the test suite.
This module turns chaos into an *input*: a :class:`FaultPlan` is a seeded,
replayable schedule of fault events, and a :class:`FaultInjector` fires it
against a live :class:`~repro.serving.cluster.ClusterService` through
injection points threaded into the transport and cluster layers.

Two kinds of rules:

* **Frame rules** (``drop`` / ``delay`` / ``duplicate``) act on individual
  transport frames.  Outbound request frames pass through a wrapped
  :class:`~repro.serving.transport.WorkerEndpoint`; inbound response
  frames pass through the injector's delivery filter.  Whether a given
  frame is hit is decided by a *seeded* RNG — the decision sequence is a
  pure function of the plan seed and the frame sequence.
* **Scheduled rules** (``crash`` / ``stall`` / ``partition`` /
  ``slow_start``) fire at seed-chosen times against seed-chosen worker
  indexes: SIGKILL a worker, freeze its serve loop (heartbeats stop), cut
  both directions of its frame flow for a window, or delay a reconnecting
  worker's re-registration.

The *schedule* — which faults fire, when, against which target index,
with which parameters — is a pure function of ``(seed, spec)``:
``FaultPlan.from_seed(7, "crash,stall,delay")`` builds the identical
schedule every time (:meth:`FaultPlan.schedule`), which is what makes a
chaos run reproducible and a chaos regression bisectable.  What the
cluster *does* about the faults (retry, hedge, quarantine, requeue) is
the machinery under test; outputs must stay bit-identical throughout.

Examples
--------
>>> plan = FaultPlan.from_seed(7, "crash,delay")
>>> plan.schedule() == FaultPlan.from_seed(7, "crash,delay").schedule()
True
>>> plan.seed, sorted({r.kind for r in plan.rules})
(7, ['crash', 'delay'])
>>> parse_chaos_spec("7:crash,stall").seed
7
"""

from __future__ import annotations

import heapq
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "FAULT_KINDS",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "FaultRule",
    "parse_chaos_spec",
]

#: Recognized fault classes, and which group each belongs to.
FRAME_KINDS = ("drop", "delay", "duplicate")
SCHEDULED_KINDS = ("crash", "stall", "partition", "slow_start")
FAULT_KINDS = FRAME_KINDS + SCHEDULED_KINDS

#: Message kinds frame rules apply to by default: the request/response hot
#: path.  Control traffic (heartbeats, reports, attach) is spared so a
#: frame fault reads as "this request's frame was lost", not "the whole
#: worker went silent" — partitions model the latter.
DEFAULT_FRAME_MESSAGE_KINDS = frozenset({"reqs", "res", "err"})


@dataclass(frozen=True)
class FaultRule:
    """One fault in a plan.

    Frame rules (``drop``/``delay``/``duplicate``) are active inside
    ``[at_s, at_s + duration_s)`` and hit each matching frame with
    ``probability`` (decided by the plan-seeded RNG), at most ``count``
    times.  Scheduled rules fire once at ``at_s`` against the live worker
    whose sorted index is ``target_index`` (modulo the live count).
    """

    kind: str
    at_s: float = 0.0
    duration_s: float = 0.0
    delay_s: float = 0.0
    probability: float = 1.0
    count: int = 1 << 30
    #: Index into the sorted live worker list at fire time (scheduled
    #: rules).  Seed-chosen, so the schedule is reproducible even though
    #: worker ids themselves depend on runtime membership.
    target_index: int = 0
    #: ``"send"`` (router→worker), ``"recv"`` (worker→router) or ``"both"``.
    direction: str = "both"

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of "
                f"{sorted(FAULT_KINDS)}"
            )
        if self.direction not in ("send", "recv", "both"):
            raise ValueError(f"invalid direction {self.direction!r}")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")


@dataclass(frozen=True)
class FaultEvent:
    """One fired (or scheduled) fault occurrence."""

    at_s: float
    kind: str
    target: str  #: worker id at fire time, or "*" for frame rules
    param: float  #: duration / delay seconds (0 where meaningless)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"t+{self.at_s:6.3f}s {self.kind:<10} {self.target} ({self.param:.3f})"


class FaultPlan:
    """A seeded, replayable set of fault rules.

    Parameters
    ----------
    rules:
        The fault rules (see :class:`FaultRule`).
    seed:
        Seeds every probabilistic decision the plan makes at runtime
        (which frames a ``drop`` rule hits, scheduled-rule parameters
        drawn by :meth:`from_seed`).  Same seed + same rules → same
        schedule and same frame-decision sequence.
    """

    def __init__(self, rules: Sequence[FaultRule], seed: int = 0) -> None:
        self.rules: Tuple[FaultRule, ...] = tuple(rules)
        self.seed = int(seed)

    @classmethod
    def from_seed(cls, seed: int, spec: str,
                  horizon_s: float = 2.0) -> "FaultPlan":
        """Generate a plan from a seed and a fault-class spec.

        ``spec`` is a comma-separated list of fault classes, each with an
        optional repeat count: ``"crash,stall*2,partition,delay"``.  Every
        rule's firing time, target index and parameters are drawn from a
        ``numpy`` RNG seeded with ``seed`` — the resulting schedule is a
        pure function of ``(seed, spec, horizon_s)``.

        Scheduled faults land in ``[0.15, 0.85] * horizon_s`` (the load
        must be in flight around them); frame faults are active across
        the whole horizon with moderate probabilities so retries have
        something to recover from without extinguishing goodput.
        """
        rng = np.random.default_rng(int(seed))
        rules: List[FaultRule] = []
        for kind, repeat in _parse_spec(spec):
            for _ in range(repeat):
                at = float(rng.uniform(0.15, 0.85)) * horizon_s
                target = int(rng.integers(0, 1 << 16))
                if kind in FRAME_KINDS:
                    rules.append(FaultRule(
                        kind=kind,
                        at_s=0.0,
                        duration_s=horizon_s,
                        delay_s=float(rng.uniform(0.01, 0.05)),
                        probability=float(rng.uniform(0.05, 0.20)),
                        direction=("both" if kind != "duplicate" else "recv"),
                    ))
                elif kind == "crash":
                    rules.append(FaultRule(kind=kind, at_s=at,
                                           target_index=target))
                elif kind == "stall":
                    rules.append(FaultRule(
                        kind=kind, at_s=at, target_index=target,
                        duration_s=float(rng.uniform(0.2, 0.5)),
                    ))
                elif kind == "partition":
                    rules.append(FaultRule(
                        kind=kind, at_s=at, target_index=target,
                        duration_s=float(rng.uniform(0.1, 0.3)),
                    ))
                else:  # slow_start
                    rules.append(FaultRule(
                        kind=kind, at_s=0.0, target_index=target,
                        delay_s=float(rng.uniform(0.05, 0.2)),
                    ))
        return cls(rules, seed=seed)

    def schedule(self) -> List[FaultEvent]:
        """The deterministic fire schedule (before worker-id resolution).

        Targets are rendered as ``#<index>`` because the concrete worker
        id is only known at fire time; everything else — order, times,
        kinds, parameters — is exact.  Two plans built from the same
        ``(seed, spec)`` compare equal here, which is the replayability
        contract the chaos tests pin.
        """
        events = []
        for rule in sorted(self.rules, key=lambda r: (r.at_s, r.kind)):
            target = ("*" if rule.kind in FRAME_KINDS
                      else f"#{rule.target_index}")
            param = (rule.delay_s if rule.kind in ("delay", "duplicate",
                                                   "slow_start")
                     else rule.duration_s)
            if rule.kind == "drop":
                param = rule.probability
            events.append(FaultEvent(at_s=rule.at_s, kind=rule.kind,
                                     target=target, param=param))
        return events

    def injector(self) -> "FaultInjector":
        """Build a fresh runtime injector for one chaos run."""
        return FaultInjector(self)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kinds = ",".join(r.kind for r in self.rules)
        return f"FaultPlan(seed={self.seed}, rules=[{kinds}])"


def _parse_spec(spec: str) -> List[Tuple[str, int]]:
    """``"crash,stall*2"`` → ``[("crash", 1), ("stall", 2)]``."""
    out: List[Tuple[str, int]] = []
    for item in str(spec).split(","):
        item = item.strip()
        if not item:
            continue
        name, star, repeat_text = item.partition("*")
        name = name.strip().lower()
        if name not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault class {name!r}; expected one of "
                f"{sorted(FAULT_KINDS)}"
            )
        repeat = 1
        if star:
            try:
                repeat = int(repeat_text)
            except ValueError:
                raise ValueError(
                    f"invalid repeat count in {item!r}; expected CLASS*N"
                ) from None
            if repeat < 1:
                raise ValueError(f"repeat count in {item!r} must be >= 1")
        out.append((name, repeat))
    if not out:
        raise ValueError("empty fault spec")
    return out


def parse_chaos_spec(text: str) -> FaultPlan:
    """Parse the CLI's ``--chaos SEED:PLAN`` argument into a plan.

    ``"7:crash,stall*2,delay"`` → a :class:`FaultPlan` seeded with 7.
    A bare plan with no seed prefix seeds with 0.
    """
    head, sep, tail = str(text).partition(":")
    if sep and head.strip().lstrip("-").isdigit():
        return FaultPlan.from_seed(int(head), tail)
    return FaultPlan.from_seed(0, text)


class _FrameRuleState:
    """Runtime state of one frame rule: its RNG stream and budget."""

    def __init__(self, rule: FaultRule, seed: int, index: int) -> None:
        self.rule = rule
        # Independent per-rule stream: decisions of one rule never shift
        # another's, so adding a rule to a plan perturbs only itself.
        self.rng = np.random.default_rng((int(seed), 1000 + index))
        self.remaining = rule.count

    def decide(self, now_s: float, direction: str) -> bool:
        rule = self.rule
        if self.remaining <= 0:
            return False
        if rule.direction != "both" and rule.direction != direction:
            return False
        if not (rule.at_s <= now_s < rule.at_s + rule.duration_s):
            return False
        if float(self.rng.random()) >= rule.probability:
            return False
        self.remaining -= 1
        return True


class FaultInjector:
    """Runtime executor of one :class:`FaultPlan` against one cluster.

    The cluster owns the lifecycle: it calls :meth:`start` with a
    controller (its own adapter exposing ``worker_ids`` / ``kill`` /
    ``stall``), wraps every worker endpoint with :meth:`wrap_endpoint`,
    and filters inbound delivery through :meth:`filter_inbound`.  The
    injector is single-use — build a fresh one per run
    (:meth:`FaultPlan.injector`).

    Injection points
    ----------------
    * outbound frames — :meth:`wrap_endpoint` intercepts ``send``:
      hot-path frames may be dropped, delayed (delivered late by the
      injector's timer thread) or duplicated; a partitioned worker's
      frames all vanish for the window.
    * inbound frames — :meth:`filter_inbound` does the same for
      worker→router messages.
    * scheduled worker faults — a timer thread fires ``crash`` (SIGKILL
      via the controller), ``stall`` (a control message freezes the
      worker's serve loop) and ``partition`` windows at their seeded
      times.
    * reconnect slow-start — :meth:`reconnect_delay_s` tells the
      registration path how long to hold a worker's re-admission.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._frame_rules = [
            _FrameRuleState(rule, plan.seed, index)
            for index, rule in enumerate(plan.rules)
            if rule.kind in FRAME_KINDS
        ]
        self._scheduled = sorted(
            (rule for rule in plan.rules if rule.kind in SCHEDULED_KINDS
             and rule.kind != "slow_start"),
            key=lambda r: r.at_s,
        )
        self._slow_start = [r for r in plan.rules if r.kind == "slow_start"]
        self._lock = threading.Lock()
        self._events: List[FaultEvent] = []
        #: ``{worker_id: partition_end_monotonic}``
        self._partitioned: Dict[str, float] = {}
        self._controller = None
        self._deliver: Optional[Callable[[tuple], None]] = None
        self._t0: Optional[float] = None
        self._stop = threading.Event()
        self._timer_thread: Optional[threading.Thread] = None
        #: Delayed deliveries: heap of (due_monotonic, seq, fire_fn).
        self._delayed: List[tuple] = []
        self._delayed_seq = 0
        self._delayed_cv = threading.Condition(self._lock)

    # ------------------------------------------------------------- lifecycle
    def start(self, controller,
              deliver: Optional[Callable[[tuple], None]] = None) -> None:
        """Arm the injector.  ``controller`` needs ``worker_ids()`` →
        sorted live ids, ``kill(worker_id)`` and ``stall(worker_id,
        seconds)``; ``deliver`` re-injects delayed inbound messages."""
        with self._lock:
            if self._t0 is not None:
                raise RuntimeError("injector already started (single-use)")
            self._controller = controller
            self._deliver = deliver
            self._t0 = time.monotonic()
        self._timer_thread = threading.Thread(
            target=self._timer_loop, name="fault-injector", daemon=True,
        )
        self._timer_thread.start()

    def stop(self) -> None:
        self._stop.set()
        with self._lock:
            self._delayed_cv.notify_all()
        if self._timer_thread is not None:
            self._timer_thread.join(timeout=5.0)

    @property
    def started(self) -> bool:
        return self._t0 is not None

    def now_s(self) -> float:
        """Seconds since :meth:`start` (0.0 before it)."""
        t0 = self._t0
        return 0.0 if t0 is None else time.monotonic() - t0

    def events(self) -> List[FaultEvent]:
        """Faults actually fired so far, in firing order."""
        with self._lock:
            return list(self._events)

    def _record(self, kind: str, target: str, param: float) -> None:
        with self._lock:
            self._events.append(FaultEvent(
                at_s=self.now_s(), kind=kind, target=target, param=param,
            ))

    # ------------------------------------------------------------- frames
    def partitioned(self, worker_id: str) -> bool:
        with self._lock:
            end = self._partitioned.get(worker_id)
            if end is None:
                return False
            if time.monotonic() >= end:
                del self._partitioned[worker_id]
                return False
            return True

    def _message_kind(self, message) -> str:
        try:
            return message[0]
        except Exception:  # pragma: no cover - defensive
            return ""

    def filter_send(self, worker_id: str, message) -> List[Tuple[float, object]]:
        """Frame decision for one outbound message.

        Returns ``[(delay_s, message), ...]`` — empty means dropped, one
        entry means delivered (possibly late), two means duplicated.
        Messages outside the hot path pass through untouched unless the
        worker is partitioned.
        """
        if self._stop.is_set():  # draining/teardown: no faults
            return [(0.0, message)]
        if self.partitioned(worker_id):
            return []
        kind = self._message_kind(message)
        if kind not in DEFAULT_FRAME_MESSAGE_KINDS:
            return [(0.0, message)]
        return self._filter_frame(message, "send", target=worker_id)

    def filter_inbound(self, message) -> List[Tuple[float, object]]:
        """Frame decision for one inbound (worker→router) message."""
        if self._stop.is_set():  # draining/teardown: no faults
            return [(0.0, message)]
        kind = self._message_kind(message)
        worker_id = None
        if kind in ("res", "err", "hb") and len(message) >= 2:
            worker_id = message[1]
        if worker_id is not None and self.partitioned(worker_id):
            return []
        if kind not in DEFAULT_FRAME_MESSAGE_KINDS:
            return [(0.0, message)]
        return self._filter_frame(message, "recv", target=worker_id or "*")

    def _filter_frame(self, message, direction: str,
                      target: str) -> List[Tuple[float, object]]:
        now = self.now_s()
        out: List[Tuple[float, object]] = [(0.0, message)]
        with self._lock:
            for state in self._frame_rules:
                if not state.decide(now, direction):
                    continue
                rule = state.rule
                if rule.kind == "drop":
                    out = []
                elif rule.kind == "delay":
                    out = [(delay + rule.delay_s, m) for delay, m in out]
                elif rule.kind == "duplicate" and out:
                    out = out + [(rule.delay_s, message)]
        for delay, _m in out:
            if delay > 0:
                self._record("delay", target, delay)
        if not out:
            self._record("drop", target, 0.0)
        elif len(out) > 1:
            self._record("duplicate", target, out[-1][0])
        return out

    # ------------------------------------------------------------- endpoints
    def wrap_endpoint(self, endpoint):
        """Wrap a :class:`WorkerEndpoint` with the outbound frame filter."""
        return _FaultyEndpoint(endpoint, self)

    def schedule_delivery(self, delay_s: float, fire: Callable[[], None]) -> None:
        """Run ``fire`` after ``delay_s`` on the injector's timer thread."""
        with self._lock:
            self._delayed_seq += 1
            heapq.heappush(self._delayed,
                           (time.monotonic() + delay_s, self._delayed_seq, fire))
            self._delayed_cv.notify_all()

    # ------------------------------------------------------------- reconnects
    def reconnect_delay_s(self) -> float:
        """Slow-start delay to apply to the next worker (re)registration."""
        with self._lock:
            if not self._slow_start:
                return 0.0
            rule = self._slow_start.pop(0)
        self._record("slow_start", "*", rule.delay_s)
        return rule.delay_s

    # ------------------------------------------------------------- scheduler
    def _timer_loop(self) -> None:
        pending = list(self._scheduled)
        while not self._stop.is_set():
            now_mono = time.monotonic()
            now = self.now_s()
            # Fire due scheduled rules.
            while pending and pending[0].at_s <= now:
                rule = pending.pop(0)
                try:
                    self._fire(rule)
                except Exception:  # pragma: no cover - defensive
                    pass
            # Fire due delayed frame deliveries.
            fire_now: List[Callable[[], None]] = []
            with self._lock:
                while self._delayed and self._delayed[0][0] <= now_mono:
                    _, _, fn = heapq.heappop(self._delayed)
                    fire_now.append(fn)
            for fn in fire_now:
                try:
                    fn()
                except Exception:  # pragma: no cover - defensive
                    pass
            with self._lock:
                next_due = None
                if pending:
                    next_due = self._t0 + pending[0].at_s
                if self._delayed:
                    due = self._delayed[0][0]
                    next_due = due if next_due is None else min(next_due, due)
                timeout = 0.02 if next_due is None else max(
                    0.0, min(0.02, next_due - time.monotonic()))
                self._delayed_cv.wait(timeout=timeout)
            if not pending and not self._delayed and self._stop.is_set():
                return

    def _fire(self, rule: FaultRule) -> None:
        controller = self._controller
        if controller is None:  # pragma: no cover - not started
            return
        ids = sorted(controller.worker_ids())
        if not ids:
            return
        worker_id = ids[rule.target_index % len(ids)]
        if rule.kind == "crash":
            self._record("crash", worker_id, 0.0)
            controller.kill(worker_id)
        elif rule.kind == "stall":
            self._record("stall", worker_id, rule.duration_s)
            controller.stall(worker_id, rule.duration_s)
        elif rule.kind == "partition":
            self._record("partition", worker_id, rule.duration_s)
            with self._lock:
                self._partitioned[worker_id] = (time.monotonic()
                                                + rule.duration_s)


@dataclass
class _FaultyEndpoint:
    """Endpoint decorator applying the injector's outbound frame rules.

    Everything except ``send`` delegates to the wrapped endpoint, so the
    cluster's supervision (``alive`` / ``kill`` / ``reap`` /
    ``surviving_process``) sees the real transport state.
    """

    inner: object
    injector: FaultInjector
    #: filled in __post_init__; declared for dataclass bookkeeping only
    worker_id: str = field(init=False, default="")

    def __post_init__(self) -> None:
        self.worker_id = getattr(self.inner, "worker_id", "")

    def send(self, message) -> None:
        deliveries = self.injector.filter_send(self.worker_id, message)
        for delay, msg in deliveries:
            if delay <= 0:
                self.inner.send(msg)
            else:
                inner = self.inner

                def _late(m=msg) -> None:
                    try:
                        inner.send(m)
                    except Exception:
                        pass  # link died while the frame was in flight

                self.injector.schedule_delivery(delay, _late)

    def __getattr__(self, name: str):
        return getattr(self.inner, name)
