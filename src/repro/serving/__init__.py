"""Async micro-batching inference serving on top of the batched engine.

The paper's engine executes one network invocation as fast as the kernels
allow; this package turns that into a *service*: per-request traffic is
dynamically micro-batched into ``PhoneBitEngine.run_batch`` calls, models
are held warm in a pool, repeated inputs are answered from an LRU response
cache, and every request contributes to p50/p99 latency and throughput
metrics.  See ``docs/serving.md`` for the architecture.
"""

from repro.serving.autoscale import (
    Autoscaler,
    AutoscaleConfig,
    AutoscaleSignals,
    FakeClock,
    ScaleEvent,
)
from repro.serving.cache import CacheStats, LRUResponseCache, input_digest
from repro.serving.cluster import (
    ClusterOverloadError,
    ClusterReport,
    ClusterService,
    DeadlineExceededError,
    RetryPolicy,
    WorkerConfig,
    WorkerCrashError,
    open_loop_sweep,
    scaling_sweep,
)
from repro.serving.faults import (
    FaultEvent,
    FaultInjector,
    FaultPlan,
    FaultRule,
    parse_chaos_spec,
)
from repro.serving.loadgen import (
    ChaosResult,
    LoadgenResult,
    ShedLoadResult,
    SpikeLoadResult,
    SpikePhase,
    run_chaos_scenario,
    run_closed_loop,
    run_open_loop,
    run_open_loop_shedding,
    run_spike_load,
    sequential_baseline,
    sequential_forward_baseline,
    sweep_table,
    synthetic_images,
    throughput_sweep,
    write_sweep_records,
)
from repro.serving.metrics import LatencySummary, LatencyTracker, percentile_ms
from repro.serving.pool import ModelPool, PoolEntry
from repro.serving.scheduler import (
    BatchingScheduler,
    BatchRecord,
    SchedulerStats,
    TRIGGERS,
)
from repro.serving.router import (
    LeastOutstandingRouter,
    QuarantinePolicy,
    RouterStats,
    pin_counts_from_shares,
    rendezvous_score,
)
from repro.serving.service import InferenceService, ServiceReport
from repro.serving.shm_store import (
    AttachedModel,
    HostModelCache,
    SharedModelStore,
    ShmModelHandle,
    artifact_digest,
    attach_model,
)
from repro.serving.transport import (
    Channel,
    PipeTransport,
    SocketTransport,
    TransportClosed,
    run_cluster_worker,
)

__all__ = [
    "AttachedModel",
    "Autoscaler",
    "AutoscaleConfig",
    "AutoscaleSignals",
    "FakeClock",
    "ScaleEvent",
    "SpikeLoadResult",
    "SpikePhase",
    "pin_counts_from_shares",
    "rendezvous_score",
    "run_spike_load",
    "BatchRecord",
    "BatchingScheduler",
    "CacheStats",
    "Channel",
    "HostModelCache",
    "PipeTransport",
    "SocketTransport",
    "TransportClosed",
    "artifact_digest",
    "run_cluster_worker",
    "ChaosResult",
    "ClusterOverloadError",
    "ClusterReport",
    "ClusterService",
    "DeadlineExceededError",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "FaultRule",
    "QuarantinePolicy",
    "RetryPolicy",
    "parse_chaos_spec",
    "run_chaos_scenario",
    "InferenceService",
    "LRUResponseCache",
    "LatencySummary",
    "LatencyTracker",
    "LeastOutstandingRouter",
    "LoadgenResult",
    "ModelPool",
    "PoolEntry",
    "RouterStats",
    "SchedulerStats",
    "ServiceReport",
    "SharedModelStore",
    "ShmModelHandle",
    "TRIGGERS",
    "WorkerConfig",
    "WorkerCrashError",
    "attach_model",
    "open_loop_sweep",
    "run_open_loop_shedding",
    "scaling_sweep",
    "ShedLoadResult",
    "input_digest",
    "percentile_ms",
    "run_closed_loop",
    "run_open_loop",
    "sequential_baseline",
    "sequential_forward_baseline",
    "sweep_table",
    "synthetic_images",
    "throughput_sweep",
    "write_sweep_records",
]
