"""Sharded multi-process serving: N worker processes, one shared model store.

The single-process :class:`~repro.serving.service.InferenceService` is
capped by the GIL once the fused kernels saturate one interpreter.
:class:`ClusterService` scales horizontally:

* the packed model zoo is serialized **once** into shared memory
  (:mod:`repro.serving.shm_store`); every worker process attaches read-only
  and zero-copy — no per-worker unpack, no N× weight memory;
* each worker hosts a warmed :class:`InferenceService` (micro-batching,
  fused plans compiled at attach time) and talks to the front end over a
  request queue / shared response queue pair;
* the front end routes with least-outstanding-requests balancing and
  per-model consistent tie-breaking (:mod:`repro.serving.router`), applies
  admission control (bounded per-worker outstanding windows,
  shed-with-retry-after on overload), supervises worker health (heartbeats,
  crash → respawn + requeue of in-flight work) and aggregates per-worker
  :class:`~repro.serving.service.ServiceReport` s into a cluster-wide view.

``ClusterService`` duck-types the service surface the load generators use
(``submit`` / ``submit_batch`` / ``infer`` / ``report`` / ``close``), so
:func:`repro.serving.loadgen.run_closed_loop` and ``run_open_loop`` drive a
cluster unmodified.  Outputs are bit-identical to a single-process service
serving the same published artifact (``tests/test_cluster.py`` and
``benchmarks/bench_cluster_scaling.py`` gate this).

See ``docs/architecture.md`` for where this layer sits in the system.
"""

from __future__ import annotations

import multiprocessing
import os
import queue as queue_mod
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.reporting import format_kv
from repro.serving.metrics import LatencyTracker
from repro.serving.router import LeastOutstandingRouter, RouterStats
from repro.serving.scheduler import TRIGGERS, SchedulerStats
from repro.serving.service import ServiceReport
from repro.serving.shm_store import SharedModelStore, ShmModelHandle, attach_model

__all__ = [
    "ClusterOverloadError",
    "ClusterReport",
    "ClusterService",
    "WorkerCrashError",
    "WorkerConfig",
    "scaling_sweep",
]


class ClusterOverloadError(RuntimeError):
    """Raised when every worker is at its admission bound (request shed).

    ``retry_after_s`` is the suggested client back-off before retrying.
    """

    def __init__(self, retry_after_s: float) -> None:
        super().__init__(
            f"cluster saturated; retry after {retry_after_s * 1000.0:.1f} ms"
        )
        self.retry_after_s = retry_after_s


class WorkerCrashError(RuntimeError):
    """A request's worker died and the request could not be re-dispatched."""


@dataclass(frozen=True)
class WorkerConfig:
    """Picklable per-worker service configuration."""

    max_batch_size: int = 32
    max_wait_ms: float = 2.0
    cache_capacity: int = 0
    chunk_bytes: Optional[int] = None
    threads: Optional[int] = 1
    heartbeat_interval_s: float = 0.2


# ---------------------------------------------------------------------------
# worker process
# ---------------------------------------------------------------------------

def _worker_submit(service, response_q, worker_id: str, rid: int,
                   model: str, image: np.ndarray) -> None:
    """Feed one routed request into the worker's local service."""
    try:
        future = service.submit(model, image)
    except Exception as exc:
        response_q.put(("err", worker_id, rid, f"{type(exc).__name__}: {exc}"))
        return

    def _done(done: Future, _rid: int = rid) -> None:
        error = done.exception()
        if error is not None:
            response_q.put(
                ("err", worker_id, _rid, f"{type(error).__name__}: {error}")
            )
        else:
            response_q.put(("res", worker_id, _rid, done.result()))

    future.add_done_callback(_done)


def _worker_main(worker_id: str, handles: Dict[str, ShmModelHandle],
                 config: WorkerConfig, request_q, response_q) -> None:
    """Entry point of one worker process.

    Attaches every published model zero-copy, warms a local
    :class:`InferenceService` over them and serves the request queue until
    a ``stop`` message arrives; heartbeats ride the response queue.
    """
    # Imported here (not at module top-level use sites) so a spawn-context
    # worker pays its imports once, inside the child.
    from repro.core.engine import PhoneBitEngine
    from repro.serving.pool import ModelPool
    from repro.serving.service import InferenceService

    try:
        pool = ModelPool()
        attached = []
        attach_ms: Dict[str, float] = {}
        for model, handle in handles.items():
            a = attach_model(handle)
            attached.append(a)
            pool.register(a.network, name=model, warm=True)
            attach_ms[model] = a.attach_ms
        service = InferenceService(
            pool=pool,
            engine=PhoneBitEngine(num_threads=config.threads),
            max_batch_size=config.max_batch_size,
            max_wait_ms=config.max_wait_ms,
            cache_capacity=config.cache_capacity,
            chunk_bytes=config.chunk_bytes,
        )
    except BaseException as exc:  # noqa: BLE001 - reported to the front end
        response_q.put(("init_error", worker_id,
                        f"{type(exc).__name__}: {exc}"))
        return

    response_q.put(("ready", worker_id, os.getpid(), attach_ms))
    last_hb = time.time()
    interval = max(0.01, config.heartbeat_interval_s)
    try:
        while True:
            now = time.time()
            if now - last_hb >= interval:
                response_q.put(("hb", worker_id, now))
                last_hb = now
            try:
                message = request_q.get(timeout=interval / 2.0)
            except queue_mod.Empty:
                continue
            kind = message[0]
            if kind == "reqs":
                for rid, model, image in message[1]:
                    _worker_submit(service, response_q, worker_id, rid, model,
                                   image)
            elif kind == "report":
                response_q.put(("reports", worker_id, message[1],
                                service.reports()))
            elif kind == "stop":
                break
    finally:
        # Drain: every accepted request resolves (and its response has been
        # queued by the done-callback) before the final report goes out.
        service.close(drain=True)
        response_q.put(("reports", worker_id, -1, service.reports()))
        response_q.put(("bye", worker_id))


# ---------------------------------------------------------------------------
# front end
# ---------------------------------------------------------------------------

@dataclass
class _Pending:
    """Front-end record of one dispatched request."""

    future: Future
    model: str
    image: np.ndarray
    worker: str
    submitted_at: float
    requeues: int = 0


@dataclass
class _Worker:
    """Front-end view of one worker process."""

    worker_id: str
    process: multiprocessing.process.BaseProcess
    request_q: object
    spawned_at: float
    ready: bool = False
    pid: Optional[int] = None
    last_heartbeat: float = 0.0
    attach_ms: Dict[str, float] = field(default_factory=dict)
    ready_ms: float = 0.0
    stopping: bool = False


class _ModelTraffic:
    """Router-side per-model accounting (end-to-end, includes IPC)."""

    def __init__(self) -> None:
        self.latencies = LatencyTracker()
        self.requests = 0
        self.shed = 0
        self.first_submit: Optional[float] = None
        self.last_done: Optional[float] = None


@dataclass(frozen=True)
class ClusterReport:
    """Cluster-wide aggregation of per-worker serving reports."""

    workers: int
    models: Tuple[str, ...]
    #: ``{worker_id: {model: ServiceReport}}`` exactly as the workers sent.
    worker_reports: Dict[str, Dict[str, ServiceReport]]
    #: Aggregated per-model view (router-side latency, summed counters).
    aggregated: Dict[str, ServiceReport]
    router: RouterStats
    respawns: int
    requeued: int
    shed: int
    attach_ms_mean: float
    store_bytes: int

    def table(self, model: Optional[str] = None) -> str:
        """Aligned rendering: cluster summary plus one model's aggregate."""
        rows = [
            ("workers", self.workers),
            ("models", ", ".join(self.models)),
            ("dispatched", self.router.dispatched),
            ("shed", self.shed),
            ("requeued", self.requeued),
            ("respawns", self.respawns),
            ("shm attach mean (ms)", self.attach_ms_mean),
            ("store bytes", self.store_bytes),
        ]
        parts = [format_kv(rows, title="Cluster report")]
        keys = [model] if model else list(self.aggregated)
        for key in keys:
            parts.append(self.aggregated[key].table())
        return "\n\n".join(parts)


def _merge_scheduler_stats(stats: Sequence[SchedulerStats]) -> SchedulerStats:
    """Sum per-worker scheduler counters into one cluster-wide view."""
    triggers = {trigger: 0 for trigger in TRIGGERS}
    batches = []
    for s in stats:
        for name, count in s.trigger_counts.items():
            triggers[name] = triggers.get(name, 0) + count
        batches.extend(s.batches)
    return SchedulerStats(
        submitted=sum(s.submitted for s in stats),
        completed=sum(s.completed for s in stats),
        failed=sum(s.failed for s in stats),
        batch_count=sum(s.batch_count for s in stats),
        batched_requests=sum(s.batched_requests for s in stats),
        trigger_counts=triggers,
        batches=batches,
        max_queue_depth=max((s.max_queue_depth for s in stats), default=0),
    )


def _default_context() -> multiprocessing.context.BaseContext:
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


def usable_cpus() -> int:
    """CPUs this process may actually run on.

    ``os.cpu_count()`` reports the host's cores even inside an
    affinity/cgroup-limited container, which would let the scaling gate
    demand parallelism that does not exist; the scheduler affinity mask is
    the honest number where available.
    """
    try:
        return len(os.sched_getaffinity(0)) or 1
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


class ClusterService:
    """Front end of the sharded serving cluster.

    Parameters
    ----------
    models:
        Serving-zoo model names to publish (ignored when ``store`` already
        holds published handles).
    workers:
        Number of worker processes to spawn.
    store:
        An externally owned :class:`SharedModelStore`; by default the
        cluster builds the models, publishes them and owns the store.
    max_batch_size / max_wait_ms / cache_capacity / chunk_bytes:
        Per-worker :class:`InferenceService` configuration.  Worker response
        caches default to **off** — a cluster-wide cache lives on the
        roadmap, and per-worker caches would make hit rates routing-shaped.
    worker_threads:
        Fused-executor threads per worker (default 1: the cluster already
        provides the process-level parallelism).
    max_outstanding:
        Admission bound per worker (default ``2 × max_batch_size``): enough
        queued work to cut full micro-batches back-to-back, small enough
        that overload sheds instead of building unbounded queues.
    heartbeat_interval_s / heartbeat_timeout_s:
        Worker liveness reporting and the staleness threshold after which
        the supervisor declares a worker dead.
    max_respawns:
        Total crash-respawn budget (default: ``workers``).
    mp_context:
        ``"fork"`` / ``"spawn"`` / a context object; default prefers fork
        (instant worker start; the plan module resets its thread pools via
        ``os.register_at_fork``).
    """

    def __init__(
        self,
        models: Sequence[str] = ("MicroCNN",),
        workers: int = 2,
        store: Optional[SharedModelStore] = None,
        max_batch_size: int = 32,
        max_wait_ms: float = 2.0,
        cache_capacity: int = 0,
        chunk_bytes: Optional[int] = None,
        worker_threads: Optional[int] = 1,
        max_outstanding: Optional[int] = None,
        heartbeat_interval_s: float = 0.2,
        heartbeat_timeout_s: float = 3.0,
        max_respawns: Optional[int] = None,
        mp_context=None,
        startup_timeout_s: float = 120.0,
        rng: int = 0,
        word_size: int = 64,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be at least 1")
        if isinstance(mp_context, str):
            mp_context = multiprocessing.get_context(mp_context)
        self._ctx = mp_context or _default_context()

        self._owns_store = store is None
        self.store = store or SharedModelStore()
        if not self.store.handles():
            self.store.publish_models(models, rng=rng, word_size=word_size)
        self._handles = self.store.handles()

        self.config = WorkerConfig(
            max_batch_size=max_batch_size,
            max_wait_ms=max_wait_ms,
            cache_capacity=cache_capacity,
            chunk_bytes=chunk_bytes,
            threads=worker_threads,
            heartbeat_interval_s=heartbeat_interval_s,
        )
        self.heartbeat_timeout_s = heartbeat_timeout_s
        self.router = LeastOutstandingRouter(
            max_outstanding=max_outstanding or 2 * max_batch_size
        )
        self.max_respawns = workers if max_respawns is None else max_respawns

        self._lock = threading.Lock()
        self._slot_free = threading.Condition(self._lock)
        self._report_arrived = threading.Condition(self._lock)
        self._report_inbox: Dict[tuple, Dict[str, ServiceReport]] = {}
        self._report_gen = 0
        self._workers: Dict[str, _Worker] = {}
        self._pending: Dict[int, _Pending] = {}
        self._orphans: List[int] = []  #: admitted req ids awaiting a worker
        self._stale_assignee: Dict[int, str] = {}
        self._traffic: Dict[str, _ModelTraffic] = {}
        self._init_errors: List[str] = []
        self._next_rid = 0
        self._next_worker = 0
        self._respawns = 0
        self._requeued = 0
        self._closed = False

        self._response_q = self._ctx.Queue()
        for _ in range(workers):
            self._spawn_worker()

        self._pump_thread = threading.Thread(
            target=self._pump, name="cluster-pump", daemon=True
        )
        self._pump_thread.start()
        self._supervisor_thread = threading.Thread(
            target=self._supervise, name="cluster-supervisor", daemon=True
        )
        self._supervise_stop = threading.Event()
        self._supervisor_thread.start()

        self._wait_ready(startup_timeout_s)

    # ------------------------------------------------------------- lifecycle
    def _spawn_worker(self) -> str:
        worker_id = f"w{self._next_worker}"
        self._next_worker += 1
        request_q = self._ctx.Queue()
        process = self._ctx.Process(
            target=_worker_main,
            args=(worker_id, self._handles, self.config, request_q,
                  self._response_q),
            name=f"cluster-{worker_id}",
            daemon=True,
        )
        process.start()
        with self._lock:
            self._workers[worker_id] = _Worker(
                worker_id=worker_id,
                process=process,
                request_q=request_q,
                spawned_at=time.perf_counter(),
            )
        return worker_id

    def _wait_ready(self, timeout_s: float) -> None:
        deadline = time.perf_counter() + timeout_s
        while True:
            with self._lock:
                errors = list(self._init_errors)
                ready = sum(1 for w in self._workers.values() if w.ready)
                total = len(self._workers)
            if errors:
                self.close(drain=False)
                raise RuntimeError(
                    "cluster worker failed to initialize: " + "; ".join(errors)
                )
            if ready == total:
                return
            if time.perf_counter() > deadline:
                self.close(drain=False)
                raise RuntimeError(
                    f"cluster startup timed out: {ready}/{total} workers ready"
                )
            time.sleep(0.01)

    def close(self, drain: bool = True, timeout_s: float = 30.0) -> None:
        """Stop workers (draining in-flight work by default) and clean up."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            workers = list(self._workers.values())
        self._supervise_stop.set()
        for worker in workers:
            worker.stopping = True
            try:
                worker.request_q.put(("stop",))
            except Exception:  # pragma: no cover - queue already broken
                pass
        deadline = time.perf_counter() + timeout_s
        if drain:
            while time.perf_counter() < deadline:
                with self._lock:
                    if not self._pending and not self._orphans:
                        break
                time.sleep(0.005)
        for worker in workers:
            worker.process.join(timeout=max(0.1, deadline - time.perf_counter()))
            if worker.process.is_alive():  # pragma: no cover - stragglers
                worker.process.terminate()
                worker.process.join(timeout=5.0)
            worker.request_q.close()
            worker.request_q.cancel_join_thread()
        self._fail_outstanding(RuntimeError("cluster closed"))
        # Stop the pump after the queues are finished with.
        self._pump_thread.join(timeout=5.0)
        self._response_q.close()
        self._response_q.cancel_join_thread()
        if self._supervisor_thread.is_alive():
            self._supervisor_thread.join(timeout=5.0)
        if self._owns_store:
            self.store.close()

    def __enter__(self) -> "ClusterService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _fail_outstanding(self, error: BaseException) -> None:
        with self._lock:
            pending = list(self._pending.values())
            self._pending.clear()
            self._orphans.clear()
            self._slot_free.notify_all()
        for entry in pending:
            if not entry.future.done():
                entry.future.set_exception(error)

    # ------------------------------------------------------------- submission
    def canonical_name(self, model: str) -> str:
        for key in self._handles:
            if key.lower() == model.lower():
                return key
        raise KeyError(
            f"model {model!r} is not published; available: {sorted(self._handles)}"
        )

    def _traffic_for(self, model: str) -> _ModelTraffic:
        traffic = self._traffic.get(model)
        if traffic is None:
            traffic = self._traffic.setdefault(model, _ModelTraffic())
        return traffic

    def _admit(self, key: str, image: np.ndarray, block: bool,
               deadline: Optional[float], count_shed: bool = True) -> tuple:
        """Acquire a routing slot and register the pending entry.

        Returns ``(rid, worker_id, future)``; the caller is responsible for
        dispatching (:meth:`_dispatch`).  Raises
        :class:`ClusterOverloadError` on shed, :class:`WorkerCrashError`
        when the cluster has no workers left and no replacement is coming
        (waiting would hang forever), ``RuntimeError`` after close.
        """
        with self._lock:
            if self._closed:
                raise RuntimeError("cluster is closed")
            traffic = self._traffic_for(key)
            while True:
                if not self._workers:
                    # Every worker is gone and the respawn budget is spent —
                    # nothing will ever free a slot.
                    raise WorkerCrashError(
                        "cluster has no workers left and no replacement is coming"
                    )
                # record_shed=False: a blocked submitter polling for a slot
                # is waiting, not shedding — only the client-visible raise
                # below counts as a shed.
                worker_id = self.router.acquire(key, record_shed=False)
                if worker_id is not None and worker_id in self._workers:
                    break
                if worker_id is not None:
                    # Router raced a worker death; slot is already counted —
                    # undo and retry.
                    self.router.release(worker_id)
                if not block:
                    # count_shed=False marks an internal saturation *probe*
                    # (submit_batch flushing before it waits), which is not
                    # a client-visible shed.
                    if count_shed:
                        traffic.shed += 1
                        self.router.record_shed()
                    raise ClusterOverloadError(
                        self.router.retry_after_s(self.config.max_wait_ms)
                    )
                remaining = None if deadline is None else deadline - time.perf_counter()
                if remaining is not None and remaining <= 0:
                    traffic.shed += 1
                    self.router.record_shed()
                    raise ClusterOverloadError(
                        self.router.retry_after_s(self.config.max_wait_ms)
                    )
                self._slot_free.wait(timeout=0.05 if remaining is None
                                     else min(0.05, remaining))
                if self._closed:
                    raise RuntimeError("cluster is closed")
            now = time.perf_counter()
            traffic.requests += 1
            if traffic.first_submit is None:
                traffic.first_submit = now
            rid = self._next_rid
            self._next_rid += 1
            future: Future = Future()
            future.set_running_or_notify_cancel()
            self._pending[rid] = _Pending(
                future=future, model=key, image=image, worker=worker_id,
                submitted_at=time.perf_counter(),
            )
            return rid, worker_id, future

    def _dispatch(self, key: str, assignments: Sequence[tuple]) -> None:
        """Send admitted ``(rid, worker_id, image)`` entries, one queue
        message per worker.

        A worker whose queue was closed under us (its death handler won the
        race) gets its slots released and the requests re-dispatched rather
        than surfacing transport errors to clients.
        """
        groups: Dict[str, List[tuple]] = {}
        for rid, worker_id, image in assignments:
            groups.setdefault(worker_id, []).append((rid, key, image))
        for worker_id, items in groups.items():
            with self._lock:
                worker = self._workers.get(worker_id)
                request_q = worker.request_q if worker is not None else None
            delivered = False
            if request_q is not None:
                try:
                    request_q.put(("reqs", items))
                    delivered = True
                except (ValueError, OSError):
                    pass
            if not delivered:
                for rid, _, _ in items:
                    self.router.release(worker_id)
                    self._redispatch(rid)

    def submit(self, model: str, image: np.ndarray, block: bool = True,
               timeout: Optional[float] = None) -> Future:
        """Route one request to a worker; resolves to the output row.

        With ``block=True`` (default — what the closed-loop load generators
        want) submission waits for an admission slot; with ``block=False``
        a saturated cluster sheds immediately by raising
        :class:`ClusterOverloadError` carrying ``retry_after_s``.
        """
        key = self.canonical_name(model)
        image = np.asarray(image)
        deadline = None if timeout is None else time.perf_counter() + timeout
        rid, worker_id, future = self._admit(key, image, block, deadline)
        self._dispatch(key, [(rid, worker_id, image)])
        return future

    def submit_batch(self, model: str, images: np.ndarray) -> List[Future]:
        """Enqueue one request per leading row of ``images`` (blocking).

        Admissions are coalesced: all of a run's requests routed to one
        worker travel in a single queue message, so a closed-loop burst
        costs a handful of IPC round trips instead of one per request.
        Accumulated admissions are always flushed *before* waiting for a
        slot — a blocked submitter never holds undispatched work, so
        concurrent batch submitters cannot deadlock each other.  Bursts
        larger than the cluster's admission window are paced by
        backpressure, mirroring the single-process semantics.
        """
        key = self.canonical_name(model)
        futures: List[Future] = []
        assignments: List[tuple] = []
        for image in np.asarray(images):
            try:
                rid, worker_id, future = self._admit(
                    key, image, block=False, deadline=None, count_shed=False
                )
            except ClusterOverloadError:
                # Saturated: dispatch what we hold, then wait empty-handed.
                if assignments:
                    self._dispatch(key, assignments)
                    assignments = []
                rid, worker_id, future = self._admit(
                    key, image, block=True, deadline=None
                )
            futures.append(future)
            assignments.append((rid, worker_id, image))
        if assignments:
            self._dispatch(key, assignments)
        return futures

    def infer(self, model: str, image: np.ndarray,
              timeout: Optional[float] = None) -> np.ndarray:
        """Blocking single-request inference."""
        return self.submit(model, image).result(timeout=timeout)

    # ------------------------------------------------------------- pump
    def _pump(self) -> None:
        """Drain the shared response queue until close() finishes."""
        while True:
            try:
                message = self._response_q.get(timeout=0.05)
            except queue_mod.Empty:
                with self._lock:
                    if self._closed and not self._pending:
                        alive = any(w.process.is_alive()
                                    for w in self._workers.values())
                        if not alive:
                            return
                continue
            except (EOFError, OSError):  # pragma: no cover - queue torn down
                return
            try:
                self._handle_message(message)
            except Exception:  # pragma: no cover - defensive
                # The pump is the only consumer of worker responses; one
                # malformed message must never kill it (that would hang
                # every in-flight future).
                pass

    def _handle_message(self, message: tuple) -> None:
        kind = message[0]
        if kind == "res" or kind == "err":
            self._handle_response(message)
        elif kind == "hb":
            _, worker_id, _stamp = message
            with self._lock:
                worker = self._workers.get(worker_id)
                if worker is not None:
                    worker.last_heartbeat = time.perf_counter()
        elif kind == "ready":
            self._handle_ready(message)
        elif kind == "reports":
            _, worker_id, generation, reports = message
            with self._lock:
                self._report_inbox[(worker_id, generation)] = reports
                self._report_arrived.notify_all()
        elif kind == "init_error":
            _, worker_id, text = message
            with self._lock:
                self._init_errors.append(f"{worker_id}: {text}")
        elif kind == "bye":
            pass

    def _handle_ready(self, message: tuple) -> None:
        _, worker_id, pid, attach_ms = message
        orphans: List[int] = []
        with self._lock:
            worker = self._workers.get(worker_id)
            if worker is None:  # pragma: no cover - raced close()
                return
            worker.ready = True
            worker.pid = pid
            worker.attach_ms = dict(attach_ms)
            worker.ready_ms = (time.perf_counter() - worker.spawned_at) * 1000.0
            worker.last_heartbeat = time.perf_counter()
            self.router.add_worker(worker_id)
            orphans, self._orphans = self._orphans, []
            self._slot_free.notify_all()
        for rid in orphans:
            self._redispatch(rid)

    def _handle_response(self, message: tuple) -> None:
        kind, worker_id, rid, payload = message
        with self._lock:
            entry = self._pending.pop(rid, None)
            if entry is None:
                # Late answer for a request that was requeued after this
                # sender was (wrongly or rightly) declared dead, and that
                # the replacement already answered — release the slot the
                # replacement still holds.
                assignee = self._stale_assignee.pop(rid, None)
                if assignee == worker_id:
                    self.router.release(worker_id)
                    self._slot_free.notify_all()
                return
            if entry.worker != worker_id:
                # Answered by a worker we had already given up on; the
                # current assignee's answer will arrive later — remember it
                # so its slot gets released too.
                self._stale_assignee[rid] = entry.worker
            self.router.release(worker_id)
            now = time.perf_counter()
            traffic = self._traffic_for(entry.model)
            traffic.last_done = now
            traffic.latencies.record(max(0.0, now - entry.submitted_at))
            self._slot_free.notify_all()
        if kind == "res":
            result = payload
            if isinstance(result, np.ndarray) and result.flags.writeable:
                result.setflags(write=False)
            entry.future.set_result(result)
        else:
            entry.future.set_exception(RuntimeError(
                f"worker {worker_id} failed request: {payload}"
            ))

    # ------------------------------------------------------------- supervision
    def _supervise(self) -> None:
        interval = max(0.05, min(self.config.heartbeat_interval_s,
                                 self.heartbeat_timeout_s / 4.0))
        while not self._supervise_stop.wait(interval):
            self._check_workers()

    def _check_workers(self) -> None:
        now = time.perf_counter()
        dead: List[_Worker] = []
        with self._lock:
            for worker in self._workers.values():
                if worker.stopping:
                    continue
                alive = worker.process.is_alive()
                stale = (
                    worker.ready
                    and self.heartbeat_timeout_s > 0
                    and now - worker.last_heartbeat > self.heartbeat_timeout_s
                )
                if not alive or stale:
                    dead.append(worker)
        for worker in dead:
            self._handle_worker_death(worker)

    def _handle_worker_death(self, worker: _Worker) -> None:
        """Respawn a crashed worker and re-dispatch its in-flight requests."""
        with self._lock:
            if worker.worker_id not in self._workers:
                return
            del self._workers[worker.worker_id]
            self.router.remove_worker(worker.worker_id)
            victims = [rid for rid, entry in self._pending.items()
                       if entry.worker == worker.worker_id]
            # Orphans were parked waiting for *some* replacement to become
            # ready; if the worker that just died was that replacement, the
            # wait is over — re-run them through _redispatch, which either
            # re-parks (another respawn is coming) or fails them.  Leaving
            # them parked would hang their futures forever.
            victims.extend(self._orphans)
            self._orphans = []
            respawn = self._respawns < self.max_respawns and not self._closed
            if respawn:
                self._respawns += 1
            self._slot_free.notify_all()
        if worker.process.is_alive():  # pragma: no cover - hb-stale only
            worker.process.terminate()
        worker.request_q.close()
        worker.request_q.cancel_join_thread()
        if respawn:
            self._spawn_worker()
        for rid in victims:
            self._redispatch(rid)

    def _redispatch(self, rid: int) -> None:
        """Move an admitted request onto a live worker (crash requeue)."""
        request_q = None
        failed_future: Optional[Future] = None
        with self._lock:
            entry = self._pending.get(rid)
            if entry is None:
                return
            entry.requeues += 1
            self._requeued += 1
            # force=True: this work was admitted once already; shedding it
            # now would turn a worker crash into client-visible errors.
            worker_id = self.router.acquire(entry.model, force=True)
            if worker_id is None or worker_id not in self._workers:
                if worker_id is not None:
                    self.router.release(worker_id)
                replacement_coming = not self._closed and (
                    any(not w.ready for w in self._workers.values())
                )
                if replacement_coming:
                    # Park until the replacement's "ready" drains orphans.
                    self._orphans.append(rid)
                    return
                self._pending.pop(rid, None)
                failed_future = entry.future
            else:
                entry.worker = worker_id
                request_q = self._workers[worker_id].request_q
                message = ("reqs", [(rid, entry.model, entry.image)])
        if failed_future is not None:
            if not failed_future.done():
                failed_future.set_exception(WorkerCrashError(
                    f"request {rid} lost its worker and no replacement is "
                    f"available"
                ))
            return
        try:
            request_q.put(message)
        except (ValueError, OSError):
            # The replacement died too (queue closed under us).  Its death
            # handler has already removed it from the router/worker maps,
            # so this recursion terminates: each retry sees one fewer
            # candidate until the request lands, parks, or fails.
            self.router.release(worker_id)
            self._redispatch(rid)

    # ------------------------------------------------------------- reporting
    def worker_reports(self, timeout: float = 10.0) -> Dict[str, Dict[str, ServiceReport]]:
        """Poll every ready worker for its per-model ``ServiceReport`` s."""
        with self._lock:
            self._report_gen += 1
            generation = self._report_gen
            candidates = [w for w in self._workers.values()
                          if w.ready and not w.stopping]
            targets = []
            for worker in candidates:
                try:
                    worker.request_q.put(("report", generation))
                except (ValueError, OSError):  # pragma: no cover - dying worker
                    continue  # don't wait on a reply that can never come
                targets.append(worker)
        deadline = time.perf_counter() + timeout
        collected: Dict[str, Dict[str, ServiceReport]] = {}
        with self._lock:
            while len(collected) < len(targets):
                for worker in targets:
                    key = (worker.worker_id, generation)
                    if key in self._report_inbox:
                        collected[worker.worker_id] = self._report_inbox.pop(key)
                if len(collected) >= len(targets):
                    break
                remaining = deadline - time.perf_counter()
                if remaining <= 0:
                    break
                self._report_arrived.wait(timeout=min(0.05, remaining))
        return collected

    def report(self, model: str,
               worker_reports: Optional[Dict[str, Dict[str, ServiceReport]]] = None
               ) -> ServiceReport:
        """Aggregated cluster-wide report for one model.

        Shape-compatible with the single-process
        :meth:`InferenceService.report`: latency figures are the front
        end's end-to-end measurements (queueing + IPC + worker service
        time), scheduler/cache counters are summed across workers.
        ``worker_reports`` lets a caller that already polled the workers
        (:meth:`cluster_report`) reuse one IPC round trip for every model.
        """
        key = self.canonical_name(model)
        reports = (self.worker_reports() if worker_reports is None
                   else worker_reports)
        per_worker = [wr[key] for wr in reports.values() if key in wr]
        with self._lock:
            traffic = self._traffic.get(key)
            if traffic is None:
                raise KeyError(f"model {model!r} has not served any requests")
            first, last = traffic.first_submit, traffic.last_done
            requests = traffic.requests
            latency = traffic.latencies.summary()
        duration = (last - first) if (first is not None and last is not None) else 0.0
        device = per_worker[0].device if per_worker else "cluster"
        return ServiceReport(
            model=key,
            device=f"{device} ×{len(reports)} workers",
            duration_s=max(0.0, duration),
            requests=requests,
            cache_hits=sum(r.cache_hits for r in per_worker),
            cache_misses=sum(r.cache_misses for r in per_worker),
            latency=latency,
            scheduler=_merge_scheduler_stats([r.scheduler for r in per_worker]),
            cache=None,
        )

    def cluster_report(self) -> ClusterReport:
        """Full cluster view: per-worker reports plus aggregates.

        Polls the workers once and reuses that snapshot for every model's
        aggregation, so the cost is one IPC round trip regardless of how
        many models are published.
        """
        reports = self.worker_reports()
        models = tuple(self._handles)
        aggregated = {}
        for model in models:
            with self._lock:
                served = model in self._traffic
            if served:
                aggregated[model] = self.report(model, worker_reports=reports)
        with self._lock:
            attach_values = [ms for w in self._workers.values()
                             for ms in w.attach_ms.values()]
            shed = sum(t.shed for t in self._traffic.values())
            workers = len(self._workers)
            respawns = self._respawns
            requeued = self._requeued
        return ClusterReport(
            workers=workers,
            models=models,
            worker_reports=reports,
            aggregated=aggregated,
            router=self.router.stats(),
            respawns=respawns,
            requeued=requeued,
            shed=shed,
            attach_ms_mean=(sum(attach_values) / len(attach_values))
            if attach_values else 0.0,
            store_bytes=self.store.total_bytes(),
        )

    # ------------------------------------------------------------- baseline
    def baseline_service(self, **service_kwargs):
        """Single-process :class:`InferenceService` over the same artifacts.

        Attaches the published models locally (zero-copy, same bytes the
        workers serve), which is what makes cluster-vs-single-process
        output comparisons bit-identical rather than merely close.  The
        caller owns the returned service (and should ``close()`` it).
        """
        from repro.serving.pool import ModelPool
        from repro.serving.service import InferenceService

        pool = ModelPool()
        self._baseline_attachments = []
        for model, handle in self._handles.items():
            attached = attach_model(handle)
            self._baseline_attachments.append(attached)
            pool.register(attached.network, name=model, warm=True)
        service_kwargs.setdefault("max_batch_size", self.config.max_batch_size)
        service_kwargs.setdefault("max_wait_ms", self.config.max_wait_ms)
        service_kwargs.setdefault("cache_capacity", self.config.cache_capacity)
        service_kwargs.setdefault("chunk_bytes", self.config.chunk_bytes)
        return InferenceService(pool=pool, **service_kwargs)


# ---------------------------------------------------------------------------
# scaling sweep (shared by the CLI and benchmarks/bench_cluster_scaling.py)
# ---------------------------------------------------------------------------

def scaling_table(records: Sequence[dict], title: Optional[str] = None) -> str:
    """Render :func:`scaling_sweep` records as an aligned table.

    Single rendering path shared by ``repro.cli serve-bench --workers N``
    and ``benchmarks/bench_cluster_scaling.py`` (same discipline as
    :func:`repro.serving.loadgen.sweep_table`).
    """
    from repro.analysis.reporting import format_table

    return format_table(
        ["workers", "batch", "req/s", "1-proc req/s", "speedup",
         "p50 (ms)", "p99 (ms)", "attach (ms)"],
        [
            [r["workers"], r["batch"], r["req_per_s"],
             r["single_process_rps"],
             f"{r['speedup_vs_single_process']:.2f}x",
             r["latency_p50_ms"], r["latency_p99_ms"],
             r["shm_attach_ms_mean"]]
            for r in records
        ],
        title=title,
    )

def scaling_sweep(
    model: str = "MicroCNN",
    worker_counts: Sequence[int] = (1, 2, 4, 8),
    offered_batch: int = 64,
    requests: int = 256,
    max_wait_ms: float = 2.0,
    seed: int = 0,
    mp_context=None,
    worker_threads: Optional[int] = 1,
    chunk_bytes: Optional[int] = None,
) -> List[dict]:
    """Closed-loop cluster throughput vs the single-process service.

    Publishes ``model`` once into shared memory, measures a single-process
    :class:`InferenceService` over the attached artifact as the baseline,
    then sweeps the worker counts.  Every sweep point's outputs are checked
    bit-identical against the baseline before anything is recorded — both
    sides serve the same published bytes, so equality is exact.

    Warm-up (weight packing, plan compilation, NumPy internals) runs
    through ``engine.run_batch`` on the attached artifact *before* any
    measured service exists, so the recorded throughput and latency
    percentiles cover exactly the measured requests — the same discipline
    as :func:`repro.serving.loadgen.throughput_sweep`.  Cluster workers
    warm themselves at attach time (``ModelPool.register(warm=True)``);
    their residual first-batch cost is part of every sweep point equally.
    """
    from repro.serving.loadgen import run_closed_loop, synthetic_images

    store = SharedModelStore()
    try:
        handles = store.publish_models([model], rng=0)
        key = next(iter(handles))
        attached = attach_model(handles[key])
        images = synthetic_images(attached.network.input_shape, requests,
                                  seed=seed)

        from repro.core.engine import PhoneBitEngine
        from repro.serving.pool import ModelPool
        from repro.serving.service import InferenceService

        # One warm pass outside all timings and outside the measured
        # services, so their request counters and latency windows stay
        # exactly the measured run.
        warm_engine = PhoneBitEngine(num_threads=worker_threads)
        warm_engine.run_batch(attached.network, images[:2],
                              collect_estimate=False, chunk_bytes=chunk_bytes)

        pool = ModelPool()
        pool.register(attached.network, name=key, warm=True)
        baseline = InferenceService(
            pool=pool, engine=warm_engine, max_batch_size=offered_batch,
            max_wait_ms=max_wait_ms, cache_capacity=0, chunk_bytes=chunk_bytes,
        )
        try:
            result = run_closed_loop(baseline, key, images)
        finally:
            baseline.close()
        baseline_out = result.outputs
        baseline_rps = result.achieved_rps

        records: List[dict] = []
        for workers in worker_counts:
            cluster = ClusterService(
                store=store, workers=int(workers),
                max_batch_size=offered_batch, max_wait_ms=max_wait_ms,
                cache_capacity=0, worker_threads=worker_threads,
                chunk_bytes=chunk_bytes, mp_context=mp_context,
            )
            try:
                run = run_closed_loop(cluster, key, images)
                cluster_detail = cluster.cluster_report()
            finally:
                cluster.close()
            if not np.array_equal(run.outputs, baseline_out):
                raise AssertionError(
                    f"cluster outputs diverged from the single-process "
                    f"service at {workers} workers"
                )
            report = run.report
            records.append({
                "op": "cluster_scaling",
                "model": key,
                "workers": int(workers),
                "batch": int(offered_batch),
                "shape": list(attached.network.input_shape),
                "requests": int(images.shape[0]),
                "req_per_s": run.achieved_rps,
                "requests_per_s": run.achieved_rps,
                "single_process_rps": baseline_rps,
                "speedup_vs_single_process": (
                    run.achieved_rps / baseline_rps if baseline_rps else float("inf")
                ),
                "latency_p50_ms": report.latency.p50_ms,
                "latency_p99_ms": report.latency.p99_ms,
                "mean_batch_size": report.scheduler.mean_batch_size,
                "shm_attach_ms_mean": cluster_detail.attach_ms_mean,
                "store_bytes": cluster_detail.store_bytes,
                "host_cpus": usable_cpus(),
                "bit_identical": True,
            })
        return records
    finally:
        store.close()
