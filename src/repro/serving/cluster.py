"""Sharded multi-worker serving: N workers, one digest-addressed model zoo.

The single-process :class:`~repro.serving.service.InferenceService` is
capped by the GIL once the fused kernels saturate one interpreter.
:class:`ClusterService` scales horizontally:

* the packed model zoo is serialized **once** into shared memory
  (:mod:`repro.serving.shm_store`); every same-host worker attaches
  read-only and zero-copy — no per-worker unpack, no N× weight memory —
  while remote workers fetch each artifact's bytes once per host into a
  digest-keyed :class:`~repro.serving.shm_store.HostModelCache`;
* each worker hosts a warmed :class:`InferenceService` (micro-batching,
  fused plans compiled at attach time) and talks to the front end over a
  pluggable transport (:mod:`repro.serving.transport`): ``multiprocessing``
  pipes on one host, Unix-domain or TCP sockets across hosts;
* the front end routes with least-outstanding-requests balancing and
  per-model consistent tie-breaking (:mod:`repro.serving.router`), applies
  admission control (bounded per-worker outstanding windows,
  shed-with-retry-after on overload), supervises worker health (heartbeats
  plus connection loss, crash → respawn/re-admission + requeue of in-flight
  work) and aggregates per-worker
  :class:`~repro.serving.service.ServiceReport` s into a cluster-wide view.

``ClusterService`` duck-types the service surface the load generators use
(``submit`` / ``submit_batch`` / ``infer`` / ``report`` / ``close``), so
:func:`repro.serving.loadgen.run_closed_loop` and ``run_open_loop`` drive a
cluster unmodified.  Outputs are bit-identical to a single-process service
serving the same published artifact regardless of transport
(``tests/test_cluster.py``, ``tests/test_transport.py`` and
``benchmarks/bench_cluster_scaling.py`` gate this).

See ``docs/architecture.md`` for where this layer sits in the system and
``docs/deployment.md`` for the operator's guide (topologies, transport
selection, failure semantics).
"""

from __future__ import annotations

import os
import queue as queue_mod
import subprocess
import tempfile
import threading
import time
import uuid
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

import numpy as np

from repro.analysis.reporting import format_kv
from repro.serving.autoscale import Autoscaler, AutoscaleConfig, AutoscaleSignals
from repro.serving.cache import CacheStats, LRUResponseCache, response_cache_key
from repro.serving.faults import FaultInjector, FaultPlan
from repro.serving.metrics import LatencyTracker
from repro.serving.rollout import RolloutConfig, RolloutController
from repro.serving.router import (
    SLO_CLASSES,
    LeastOutstandingRouter,
    QuarantinePolicy,
    RouterStats,
    pin_counts_from_shares,
    rendezvous_score,
    validate_slo,
)
from repro.serving.scheduler import TRIGGERS, SchedulerStats
from repro.serving.service import ServiceReport
from repro.serving.shm_store import SharedModelStore, ShmModelHandle, attach_model
from repro.serving.transport import (
    PipeTransport,
    SocketTransport,
    TransportClosed,
    WorkerEndpoint,
    build_worker_service,
)

__all__ = [
    "AutoscaleConfig",
    "ClusterOverloadError",
    "ClusterReport",
    "ClusterService",
    "DeadlineExceededError",
    "RetryPolicy",
    "RolloutConfig",
    "RolloutController",
    "SLOPolicy",
    "DEFAULT_SLO_POLICIES",
    "WorkerCrashError",
    "WorkerConfig",
    "open_loop_sweep",
    "scaling_sweep",
]


class ClusterOverloadError(RuntimeError):
    """Raised when every worker is at its admission bound (request shed).

    ``retry_after_s`` is the suggested client back-off before retrying.
    """

    def __init__(self, retry_after_s: float) -> None:
        super().__init__(
            f"cluster saturated; retry after {retry_after_s * 1000.0:.1f} ms"
        )
        self.retry_after_s = retry_after_s


class WorkerCrashError(RuntimeError):
    """A request's worker died and the request could not be re-dispatched."""


class DeadlineExceededError(TimeoutError):
    """A request's end-to-end deadline passed before it completed.

    Raised synchronously by :meth:`ClusterService.submit` when the
    deadline expires while still waiting for admission, set on the
    request's future when it expires after admission — in both cases the
    work is dropped (a dispatch is never sent for it once expired, and a
    dispatched-but-expired request's slots are released immediately), so
    a caller that has already timed out never keeps burning worker time.
    """


@dataclass(frozen=True)
class RetryPolicy:
    """When the front end re-dispatches or hedges a slow request.

    All timing is derived from the model's **live p99 latency** (the
    router-side end-to-end tracker) once ``min_samples`` completions have
    been observed; before that the heartbeat timeout stands in — a lost
    first frame must still retry on a cold cluster.  Attempt ``k``'s
    patience is ``timeout_factor × p99 × backoff_factor^(k-1)``: the
    exponential growth is the retry back-off, spacing successive
    re-dispatches apart so a briefly degraded fleet is not flooded with
    duplicates.  The p99-derived base is clamped to
    ``[min_timeout_s, max_timeout_s]``: rescued requests record their
    *full* wait (including retry delays) into the same tracker the next
    patience is derived from, and without the absolute ceiling that
    feedback loop inflates p99 faster than stuck requests can catch it —
    retries would chase a threshold that keeps running away.

    A request whose final attempt also outlives its patience fails
    terminally with :class:`WorkerCrashError` (slots released, never
    leaked) — admitted work always resolves, one way or the other.

    A **retry** moves the request: the unresponsive assignee is demoted
    (its slot stays held and is released by the existing generation-scoped
    accounting when its late answer arrives, or credited when it dies —
    never leaked), a failure is recorded against it for quarantine
    purposes, and the request is force-dispatched to a different worker.

    A **hedge** (``hedge=True``) duplicates the request instead of
    waiting for the full attempt timeout: after ``hedge_factor × p99``
    a second copy is dispatched to another eligible worker *without*
    force (a saturated fleet sheds hedges first) and the first response
    wins — bit-identical outputs make the winner indistinguishable — with
    the loser's slot released by the same late-answer accounting.
    """

    #: Total dispatch attempts per request, including the first.
    max_attempts: int = 3
    #: Attempt timeout as a multiple of the model's live p99.
    timeout_factor: float = 8.0
    #: Exponential growth of successive attempt timeouts (the back-off).
    backoff_factor: float = 2.0
    #: Floor under every derived timeout/delay (p99 of a trivial model can
    #: be tens of microseconds; re-dispatching at that cadence would melt
    #: the cluster).
    min_timeout_s: float = 0.05
    #: Ceiling over every derived timeout/delay — breaks the p99 feedback
    #: loop described above.  Per-attempt back-off still multiplies on
    #: top of the clamped base.
    max_timeout_s: float = 2.0
    #: Dispatch a duplicate after ``hedge_factor`` × p99 instead of
    #: waiting out the attempt timeout.
    hedge: bool = False
    hedge_factor: float = 3.0
    #: Completions observed for a model before its p99 is trusted.
    min_samples: int = 20

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.timeout_factor <= 0 or self.hedge_factor <= 0:
            raise ValueError("timeout_factor and hedge_factor must be > 0")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be at least 1")
        if self.min_timeout_s <= 0:
            raise ValueError("min_timeout_s must be positive")
        if self.max_timeout_s < self.min_timeout_s:
            raise ValueError("max_timeout_s must be >= min_timeout_s")
        if self.min_samples < 1:
            raise ValueError("min_samples must be at least 1")


@dataclass(frozen=True)
class SLOPolicy:
    """Per-SLO-class serving defaults: latency budget, deadline, retry.

    One row of the cluster's ``slo_policies`` table.  A request submitted
    with ``slo=<class>`` and no explicit ``timeout`` inherits the class's
    ``deadline_s``; ``max_attempts`` and ``hedge`` override the cluster's
    :class:`RetryPolicy` per class (``None`` keeps the policy's value) —
    an interactive tier typically hedges while the batch tier must not
    burn duplicate capacity.  ``latency_budget_ms`` is the per-request
    latency target the scenario harness measures **SLO attainment**
    against; the admission path itself never reads it.
    """

    slo: str
    #: Per-request latency target (attainment accounting, not enforcement).
    latency_budget_ms: float
    #: Default end-to-end deadline for the class; ``None`` = no deadline.
    deadline_s: Optional[float] = None
    #: Override of ``RetryPolicy.max_attempts`` (``None`` = inherit).
    max_attempts: Optional[int] = None
    #: Override of ``RetryPolicy.hedge`` (``None`` = inherit).
    hedge: Optional[bool] = None

    def __post_init__(self) -> None:
        validate_slo(self.slo)
        if self.latency_budget_ms <= 0:
            raise ValueError("latency_budget_ms must be positive")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError("deadline_s must be positive or None")
        if self.max_attempts is not None and self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1 or None")


#: Stock per-class policy table: interactive hedges under a tight budget
#: and deadline, standard rides the cluster-wide retry policy, batch gets
#: a loose budget, no deadline and never hedges.  Scenario specs override
#: the budgets per tenant; the table is the fallback.
DEFAULT_SLO_POLICIES: Mapping[str, SLOPolicy] = {
    "interactive": SLOPolicy("interactive", latency_budget_ms=250.0,
                             deadline_s=2.0, hedge=True),
    "standard": SLOPolicy("standard", latency_budget_ms=1000.0,
                          deadline_s=10.0),
    "batch": SLOPolicy("batch", latency_budget_ms=10000.0,
                       deadline_s=None, hedge=False),
}


@dataclass(frozen=True)
class WorkerConfig:
    """Picklable per-worker service configuration."""

    max_batch_size: int = 32
    max_wait_ms: float = 2.0
    cache_capacity: int = 0
    chunk_bytes: Optional[int] = None
    threads: Optional[int] = 1
    heartbeat_interval_s: float = 0.2
    #: Kernel-backend spec each worker applies while warming its plans
    #: (:data:`repro.core.backends.BACKEND_CHOICES`).  ``auto`` compiles
    #: where the worker's host allows and silently falls back to NumPy —
    #: selection is per host, so a heterogeneous cluster mixes backends
    #: safely (results are bit-identical by the verification gate).
    backend: str = "auto"


# ---------------------------------------------------------------------------
# worker process
# ---------------------------------------------------------------------------

def _worker_submit(service, response_q, worker_id: str, rid: int,
                   model: str, image: np.ndarray, digest: str = "") -> None:
    """Feed one routed request into the worker's local service.

    ``digest`` pins the request to one resident artifact version (every
    cluster dispatch is version-tagged); ``""`` serves the active one.
    """
    try:
        future = service.submit(model, image, digest=digest or None)
    except Exception as exc:
        response_q.put(("err", worker_id, rid, f"{type(exc).__name__}: {exc}"))
        return

    def _done(done: Future, _rid: int = rid) -> None:
        error = done.exception()
        if error is not None:
            response_q.put(
                ("err", worker_id, _rid, f"{type(error).__name__}: {error}")
            )
        else:
            response_q.put(("res", worker_id, _rid, done.result()))

    future.add_done_callback(_done)


def _worker_main(worker_id: str, handles: Dict[str, ShmModelHandle],
                 config: WorkerConfig, request_q, response_q) -> None:
    """Entry point of one worker process.

    Attaches every published model zero-copy, warms a local
    :class:`InferenceService` over them and serves the request queue until
    a ``stop`` message arrives; heartbeats ride the response queue.
    """
    try:
        attached = {handle.digest: attach_model(handle)
                    for handle in handles.values()}
        service, attach_ms = build_worker_service(list(attached.values()),
                                                  config)
    except BaseException as exc:  # noqa: BLE001 - reported to the front end
        response_q.put(("init_error", worker_id,
                        f"{type(exc).__name__}: {exc}"))
        return

    response_q.put(("ready", worker_id, os.getpid(), attach_ms))
    # Heartbeat pacing must be monotonic: an NTP step or DST wall-clock
    # jump on the worker's host must never freeze (or flood) the
    # heartbeat stream — the supervisor would mass-declare workers dead.
    last_hb = time.monotonic()
    interval = max(0.01, config.heartbeat_interval_s)
    try:
        while True:
            now = time.monotonic()
            if now - last_hb >= interval:
                response_q.put(("hb", worker_id, now))
                last_hb = now
            try:
                message = request_q.get(timeout=interval / 2.0)
            except queue_mod.Empty:
                continue
            kind = message[0]
            if kind == "reqs":
                for rid, model, image, digest in message[1]:
                    _worker_submit(service, response_q, worker_id, rid, model,
                                   image, digest)
            elif kind == "attach":
                # Dynamic (re)pinning: map more published artifacts into this
                # worker.  Warming can take whole seconds for a deep model,
                # so a heartbeat brackets each attach — a worker busy growing
                # its pool must not read as dead.
                for model, digest, nbytes, shm_name in message[1]:
                    response_q.put(("hb", worker_id, time.monotonic()))
                    t0 = time.perf_counter()
                    just_attached = attach_model(ShmModelHandle(
                        model=model, shm_name=shm_name, nbytes=nbytes,
                        digest=digest,
                    ))
                    attached[digest] = just_attached  # keep the mapping alive
                    service.pool.register(just_attached.network, name=model,
                                          warm=True, digest=digest)
                    response_q.put(("attached", worker_id, model,
                                    (time.perf_counter() - t0) * 1000.0))
                last_hb = time.monotonic()
            elif kind == "prepare":
                # Rollout fetch-ahead: stage a new artifact version beside
                # the serving one without activating it.  Same heartbeat
                # bracket as "attach" — warming must not read as death.
                for model, digest, nbytes, shm_name in message[1]:
                    response_q.put(("hb", worker_id, time.monotonic()))
                    t0 = time.perf_counter()
                    try:
                        staged = attached.get(digest)
                        if staged is None:
                            staged = attach_model(ShmModelHandle(
                                model=model, shm_name=shm_name, nbytes=nbytes,
                                digest=digest,
                            ))
                            attached[digest] = staged
                        service.pool.register(staged.network, name=model,
                                              warm=True, digest=digest,
                                              activate=False)
                    except Exception as exc:  # noqa: BLE001 - no ack → the
                        # controller's staging timeout rolls the rollout back.
                        response_q.put(("err", worker_id, -1,
                                        f"prepare {model}@{digest[:12]}: "
                                        f"{type(exc).__name__}: {exc}"))
                        continue
                    response_q.put(("prepared", worker_id, model, digest,
                                    (time.perf_counter() - t0) * 1000.0))
                last_hb = time.monotonic()
            elif kind == "commit":
                # Atomic pointer flip: untagged requests now serve `digest`.
                _, model, digest = message
                try:
                    service.pool.set_active(model, digest)
                except KeyError:
                    pass  # no ack → the promote timeout rolls back
                else:
                    response_q.put(("committed", worker_id, model, digest))
            elif kind == "detach":
                # Revocation: drop resident versions (digest "" = the whole
                # model) and release their shared-memory views.
                done_items: List[Tuple[str, str]] = []
                freed = 0
                for model, digest in message[1]:
                    victims: List[str] = []
                    try:
                        if digest:
                            service.retire(model, digest)
                            victims = [digest]
                        else:
                            service.evict(model)
                            victims = [
                                d for d, a in attached.items()
                                if a.handle.model == model
                            ]
                    except (KeyError, ValueError):
                        continue
                    for victim in victims:
                        view = attached.pop(victim, None)
                        if view is not None:
                            freed += view.handle.nbytes
                            view.close()
                    done_items.append((model, digest))
                response_q.put(("detached", worker_id, done_items, freed))
            elif kind == "report":
                response_q.put(("reports", worker_id, message[1],
                                service.reports()))
            elif kind == "stall":
                # Fault injection: freeze the serve loop (heartbeats stop,
                # queued work sits) for the requested window — exactly what
                # a GC pause, page-in storm or wedged kernel looks like
                # from the front end.
                time.sleep(float(message[1]))
                last_hb = 0.0  # heartbeat immediately on wake-up
            elif kind == "stop":
                break
    finally:
        # Drain: every accepted request resolves (and its response has been
        # queued by the done-callback) before the final report goes out.
        service.close(drain=True)
        response_q.put(("reports", worker_id, -1, service.reports()))
        response_q.put(("bye", worker_id))


# ---------------------------------------------------------------------------
# front end
# ---------------------------------------------------------------------------

@dataclass
class _Pending:
    """Front-end record of one dispatched request."""

    future: Future
    model: str
    image: np.ndarray
    worker: str
    submitted_at: float
    requeues: int = 0
    #: Router registration generation of ``worker`` when the slot was
    #: acquired — scopes the eventual ``release`` to that incarnation.
    generation: int = 0
    #: Caller's end-to-end deadline (``perf_counter`` clock); ``None`` =
    #: no deadline.  Expired entries are dropped, never dispatched.
    deadline: Optional[float] = None
    #: When the *current* primary dispatch went out (retry/hedge timers).
    dispatched_at: float = 0.0
    #: Dispatch attempts so far (the first dispatch counts).
    attempts: int = 1
    #: A hedge duplicate is already in flight.
    hedged: bool = False
    #: SLO class the request was admitted under (``None`` = unclassed,
    #: treated as ``standard`` by the router's tiered admission).
    slo: Optional[str] = None
    #: Extra live slot holders beyond ``worker`` — demoted slow assignees
    #: and hedge duplicates, as ``{worker_id: generation}``.  Their slots
    #: are released when their (late) answers arrive or credited when
    #: they die; first answer from *any* holder wins the future.
    holders: Dict[str, int] = field(default_factory=dict)
    #: Artifact version the dispatch is tagged with — the model's serving
    #: digest at dispatch time (or the rollout's new digest for a canary
    #: probe).  A worker executes exactly this version, never "whatever is
    #: active locally", so a mid-rollout fleet can never serve a mix of
    #: digests to one request.
    digest: str = ""
    #: Front-end response-cache key (miss path populates the cache on
    #: completion); ``None`` when caching is off or the entry is a probe.
    cache_key: Optional[str] = None
    #: Canary probe: an internal mirror dispatch.  Never retried, never
    #: hedged, never requeued on worker death — its only consumer is the
    #: rollout controller's comparison, and a dropped probe is just a
    #: sample that never happened.
    probe: bool = False


@dataclass
class _Worker:
    """Front-end view of one worker, behind its transport endpoint."""

    worker_id: str
    endpoint: WorkerEndpoint
    spawned_at: float
    ready: bool = False
    pid: Optional[int] = None
    last_heartbeat: float = 0.0
    attach_ms: Dict[str, float] = field(default_factory=dict)
    ready_ms: float = 0.0
    stopping: bool = False
    #: Router registration generation (assigned at ``ready``).
    generation: int = 0
    #: Models this worker attaches/serves; ``None`` = every published model
    #: (the unpinned fleet).
    models: Optional[Set[str]] = None


class _ModelTraffic:
    """Router-side per-model accounting (end-to-end, includes IPC)."""

    def __init__(self) -> None:
        self.latencies = LatencyTracker()
        self.requests = 0
        self.shed = 0
        self.first_submit: Optional[float] = None
        self.last_done: Optional[float] = None
        #: Front-end response-cache counters.  Hits resolve before
        #: admission, so the hit count depends only on the request stream
        #: and the serving digest — never on which worker the request
        #: would have routed to.
        self.cache_hits = 0
        self.cache_misses = 0


@dataclass
class _Rollout:
    """Front-end state of one live rollout: the pure controller plus the
    artifact handles its decisions act on."""

    controller: RolloutController
    old_handle: ShmModelHandle
    new_handle: ShmModelHandle
    #: Terminal phase has been executed (handles flipped / flip-back and
    #: detach of the losing version queued).
    finalized: bool = False
    #: Commit done; the old version awaits detach once no in-flight
    #: request is tagged with it.
    retiring: bool = False


class _CanaryComparison:
    """Pairs one client request with its mirrored canary probe.

    The client always receives the *stable* answer; the probe is an
    internal duplicate against the rollout's new digest.  Once both
    futures resolve, exactly one comparison sample is reported to the
    rollout controller — or none at all when either side failed for
    infrastructure reasons (worker crash, deadline, cluster close): a
    dead worker says nothing about the new weights.  A probe that fails
    where the stable answer succeeded for any *other* reason counts as a
    mismatch — the new version errored on an input the old one serves.
    """

    _NO_SAMPLE_ERRORS = (WorkerCrashError, DeadlineExceededError,
                         ClusterOverloadError)

    def __init__(self, cluster: "ClusterService", model: str,
                 new_digest: str) -> None:
        self._cluster = cluster
        self._model = model
        self._new_digest = new_digest
        self._lock = threading.Lock()
        self._started: Dict[str, float] = {}
        self._results: Dict[str, tuple] = {}

    def watch(self, which: str, future: Future) -> None:
        self._started[which] = time.perf_counter()
        future.add_done_callback(lambda f, w=which: self._done(w, f))

    def _done(self, which: str, future: Future) -> None:
        latency_s = time.perf_counter() - self._started[which]
        error = future.exception()
        value = None if error is not None else future.result()
        with self._lock:
            self._results[which] = (error, value, latency_s)
            if len(self._results) < 2:
                return
            stable_error, stable_value, stable_s = self._results["stable"]
            canary_error, canary_value, canary_s = self._results["canary"]
        if stable_error is not None:
            return  # no stable answer to compare against
        if canary_error is not None:
            if isinstance(canary_error, self._NO_SAMPLE_ERRORS):
                return  # infrastructure loss, not a model verdict
            match = False
        else:
            match = bool(np.array_equal(stable_value, canary_value))
        self._cluster._record_comparison(self._model, self._new_digest,
                                         match, stable_s, canary_s)


@dataclass(frozen=True)
class ClusterReport:
    """Cluster-wide aggregation of per-worker serving reports."""

    workers: int
    models: Tuple[str, ...]
    #: ``{worker_id: {model: ServiceReport}}`` exactly as the workers sent.
    worker_reports: Dict[str, Dict[str, ServiceReport]]
    #: Aggregated per-model view (router-side latency, summed counters).
    aggregated: Dict[str, ServiceReport]
    router: RouterStats
    respawns: int
    requeued: int
    shed: int
    attach_ms_mean: float
    store_bytes: int
    #: Requests dropped because their end-to-end deadline passed.
    deadline_expired: int = 0
    #: Slow-attempt re-dispatches (RetryPolicy timeouts, not crash requeues).
    retries: int = 0
    #: Hedge duplicates dispatched.
    hedges: int = 0
    #: Workers currently quarantined by the router's health layer.
    quarantined: int = 0

    def table(self, model: Optional[str] = None) -> str:
        """Aligned rendering: cluster summary plus one model's aggregate."""
        rows = [
            ("workers", self.workers),
            ("models", ", ".join(self.models)),
            ("dispatched", self.router.dispatched),
            ("shed", self.shed),
            ("requeued", self.requeued),
            ("respawns", self.respawns),
            ("deadline expired", self.deadline_expired),
            ("retries", self.retries),
            ("hedges", self.hedges),
            ("quarantined", self.quarantined),
            ("shm attach mean (ms)", self.attach_ms_mean),
            ("store bytes", self.store_bytes),
        ]
        parts = [format_kv(rows, title="Cluster report")]
        keys = [model] if model else list(self.aggregated)
        for key in keys:
            parts.append(self.aggregated[key].table())
        return "\n\n".join(parts)


def _merge_scheduler_stats(stats: Sequence[SchedulerStats]) -> SchedulerStats:
    """Sum per-worker scheduler counters into one cluster-wide view."""
    triggers = {trigger: 0 for trigger in TRIGGERS}
    batches = []
    for s in stats:
        for name, count in s.trigger_counts.items():
            triggers[name] = triggers.get(name, 0) + count
        batches.extend(s.batches)
    return SchedulerStats(
        submitted=sum(s.submitted for s in stats),
        completed=sum(s.completed for s in stats),
        failed=sum(s.failed for s in stats),
        batch_count=sum(s.batch_count for s in stats),
        batched_requests=sum(s.batched_requests for s in stats),
        trigger_counts=triggers,
        batches=batches,
        max_queue_depth=max((s.max_queue_depth for s in stats), default=0),
    )


def usable_cpus() -> int:
    """CPUs this process may actually run on.

    ``os.cpu_count()`` reports the host's cores even inside an
    affinity/cgroup-limited container, which would let the scaling gate
    demand parallelism that does not exist; the scheduler affinity mask is
    the honest number where available.
    """
    try:
        return len(os.sched_getaffinity(0)) or 1
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


class _FaultController:
    """The cluster surface a :class:`FaultInjector` fires faults through."""

    def __init__(self, cluster: "ClusterService") -> None:
        self._cluster = cluster

    def worker_ids(self) -> List[str]:
        with self._cluster._lock:
            return sorted(
                w.worker_id for w in self._cluster._workers.values()
                if w.ready and not w.stopping
            )

    def kill(self, worker_id: str) -> None:
        with self._cluster._lock:
            worker = self._cluster._workers.get(worker_id)
        if worker is not None:
            worker.endpoint.kill()

    def stall(self, worker_id: str, seconds: float) -> None:
        with self._cluster._lock:
            worker = self._cluster._workers.get(worker_id)
        if worker is None:
            return
        try:
            worker.endpoint.send(("stall", float(seconds)))
        except (TransportClosed, ValueError, OSError):
            pass  # dying link: close enough to a stall already


class ClusterService:
    """Front end of the sharded serving cluster.

    Parameters
    ----------
    models:
        Serving-zoo model names to publish (ignored when ``store`` already
        holds published handles).
    workers:
        Number of worker processes to spawn.
    store:
        An externally owned :class:`SharedModelStore`; by default the
        cluster builds the models, publishes them and owns the store.
    max_batch_size / max_wait_ms / cache_capacity / chunk_bytes:
        Per-worker :class:`InferenceService` configuration.  Worker response
        caches default to **off** — a cluster-wide cache lives on the
        roadmap, and per-worker caches would make hit rates routing-shaped.
    worker_threads:
        Fused-executor threads per worker (default 1: the cluster already
        provides the process-level parallelism).
    worker_backend:
        Kernel-backend spec workers warm their plans with (``auto`` /
        ``numpy`` / ``cffi`` / ``numba``; default ``auto`` — compiled
        kernels where each worker's host allows, NumPy fallback
        otherwise).
    max_outstanding:
        Admission bound per worker (default ``2 × max_batch_size``): enough
        queued work to cut full micro-batches back-to-back, small enough
        that overload sheds instead of building unbounded queues.
    heartbeat_interval_s / heartbeat_timeout_s:
        Worker liveness reporting and the staleness threshold after which
        the supervisor declares a worker dead.
    max_respawns:
        Total crash-respawn budget (default: ``workers``).
    mp_context:
        ``"fork"`` / ``"spawn"`` / a context object for the pipe transport;
        default prefers fork (instant worker start; the plan module resets
        its thread pools via ``os.register_at_fork``).
    transport:
        ``"pipe"`` (default — today's single-host child processes),
        ``"uds"`` / ``"tcp"`` (socket transports: workers are separate
        ``repro.cli cluster-worker`` processes that self-register), or a
        ready-made transport object.  See :mod:`repro.serving.transport`.
    bind:
        Socket-transport listen address (``tcp://host:port``,
        ``uds:///path``).  Defaults: TCP loopback on an ephemeral port, or
        a temp-dir socket path.  The resolved address is
        ``cluster.transport.address``.
    expect_workers:
        Additionally wait at startup for this many *externally launched*
        workers to self-register (socket transports only) — the two-
        terminal topology in ``docs/deployment.md``.  ``workers=0`` with
        ``expect_workers>0`` runs the router with no locally spawned
        workers at all.
    reconnect_grace_s:
        After a socket worker's connection drops while its process is
        still alive, how long requeued work may park waiting for the
        reconnection before the worker is declared dead for good.
    pin_models:
        ``{model: K}`` per-model pinning widths: each listed model routes
        only within the top-``K`` workers of its rendezvous preference
        order, and each worker attaches **only** the artifacts pinned to
        it (unlisted models pin fleet-wide).  Cuts warm time and
        per-worker plan memory on heterogeneous fleets; the cluster keeps
        the attached sets converging on the top-K target as membership
        churns (see :meth:`_refresh_pinning`).
    autoscale:
        An :class:`~repro.serving.autoscale.AutoscaleConfig` enabling the
        elastic control loop: grow the fleet on sustained shedding,
        shrink it on sustained idleness, within the config's bounds
        (``workers`` is clamped into them at startup).  Scale events are
        recorded on :attr:`autoscale_events`; :meth:`scale_up` /
        :meth:`scale_down` expose the same machinery for manual and
        test-driven scale events.
    retry:
        A :class:`RetryPolicy` enabling slow-attempt re-dispatch (and,
        with ``hedge=True``, duplicate dispatch after a p99-based delay;
        first bit-identical response wins).  ``None`` (default) keeps the
        pre-existing behavior: a dispatched request waits for its worker
        however long that takes.
    quarantine:
        A :class:`~repro.serving.router.QuarantinePolicy` enabling
        health-driven ejection of degraded workers from routing
        eligibility, with probation re-admission on clean heartbeats.
    faults:
        A :class:`~repro.serving.faults.FaultPlan` (or a prepared
        :class:`~repro.serving.faults.FaultInjector`) armed against this
        cluster: worker endpoints and inbound delivery are threaded
        through its frame rules, and its scheduler fires crash/stall/
        partition faults at the seeded times.  The fired schedule is on
        :attr:`fault_events`.  Test/benchmark machinery — never enable in
        production serving.
    slo_reserves:
        ``{class: slots}`` enabling SLO-class tiered admission on the
        router: each class may only fill a worker up to
        ``max_outstanding - slots``, so under pressure batch sheds before
        standard before interactive (see
        :func:`~repro.serving.router.default_slo_reserves`).
    slo_policies:
        ``{class: SLOPolicy}`` per-class serving defaults.  A
        ``submit(slo=...)`` without an explicit ``timeout`` inherits the
        class's ``deadline_s``, and the class's ``max_attempts`` /
        ``hedge`` override the cluster :class:`RetryPolicy` for its
        requests.  ``None`` (default) leaves every class on the shared
        knobs — existing unclassed traffic is unaffected.
    """

    def __init__(
        self,
        models: Sequence[str] = ("MicroCNN",),
        workers: int = 2,
        store: Optional[SharedModelStore] = None,
        max_batch_size: int = 32,
        max_wait_ms: float = 2.0,
        cache_capacity: int = 0,
        chunk_bytes: Optional[int] = None,
        worker_threads: Optional[int] = 1,
        worker_backend: str = "auto",
        max_outstanding: Optional[int] = None,
        heartbeat_interval_s: float = 0.2,
        heartbeat_timeout_s: float = 3.0,
        max_respawns: Optional[int] = None,
        mp_context=None,
        startup_timeout_s: float = 120.0,
        rng: int = 0,
        word_size: int = 64,
        transport="pipe",
        bind: Optional[str] = None,
        expect_workers: int = 0,
        reconnect_grace_s: float = 15.0,
        pin_models: Optional[Mapping[str, int]] = None,
        autoscale: Optional[AutoscaleConfig] = None,
        retry: Optional[RetryPolicy] = None,
        quarantine: Optional[QuarantinePolicy] = None,
        faults: Optional[FaultPlan] = None,
        slo_reserves: Optional[Mapping[str, int]] = None,
        slo_policies: Optional[Mapping[str, SLOPolicy]] = None,
    ) -> None:
        socket_mode = (transport in ("uds", "tcp") if isinstance(transport, str)
                       else getattr(transport, "spawns_via_registration", False))
        if expect_workers and not socket_mode:
            raise ValueError("expect_workers requires a socket transport")
        if workers < 1 and not (socket_mode and expect_workers > 0):
            raise ValueError("workers must be at least 1")
        self.autoscaler = (Autoscaler(autoscale) if autoscale is not None
                           else None)
        if autoscale is not None and workers >= 1:
            workers = min(max(workers, autoscale.min_workers),
                          autoscale.max_workers)
        self.transport = self._build_transport(transport, bind, mp_context)
        self._startup_target = workers + expect_workers
        self.reconnect_grace_s = reconnect_grace_s

        self._owns_store = store is None
        self.store = store or SharedModelStore()
        if not self.store.handles():
            self.store.publish_models(models, rng=rng, word_size=word_size)
        self._handles = self.store.handles()
        if pin_models:
            unknown = sorted(set(pin_models) - set(self._handles))
            if unknown:
                raise KeyError(
                    f"pin_models references unpublished models {unknown}; "
                    f"published: {sorted(self._handles)}"
                )
            self._pinning: Optional[Dict[str, int]] = {
                model: int(count) for model, count in pin_models.items()
            }
        else:
            self._pinning = None

        # The response cache is **cluster-wide**: one LRU on the front
        # end, keyed by (model, serving digest, input digest).  Workers
        # run cache-less (cache_capacity=0 in their config) — per-worker
        # caches would make hit rates routing-shaped, where the same
        # repeated request hits or misses depending on which worker the
        # balancer picked.  Digest-keyed entries also make a rollback
        # safe: the rolled-back version's responses can never serve for
        # the restored one.
        self._cache_capacity = cache_capacity
        self._response_cache = (LRUResponseCache(cache_capacity)
                                if cache_capacity else None)
        self.config = WorkerConfig(
            max_batch_size=max_batch_size,
            max_wait_ms=max_wait_ms,
            cache_capacity=0,
            chunk_bytes=chunk_bytes,
            threads=worker_threads,
            heartbeat_interval_s=heartbeat_interval_s,
            backend=worker_backend,
        )
        self.heartbeat_timeout_s = heartbeat_timeout_s
        self.retry_policy = retry
        #: How long a parked slot waits for its holder's late answer
        #: before the monitor reaps it (the answer frame may be lost for
        #: good under fault injection or a half-dead link).
        self._stale_grace_s = max(5.0, heartbeat_timeout_s)
        self.router = LeastOutstandingRouter(
            max_outstanding=max_outstanding or 2 * max_batch_size,
            pin_counts=self._pinning,
            quarantine=quarantine,
            slo_reserves=slo_reserves,
        )
        if slo_policies is not None:
            for name, slo_policy in slo_policies.items():
                if validate_slo(name) != slo_policy.slo:
                    raise ValueError(
                        f"slo_policies[{name!r}] carries class "
                        f"{slo_policy.slo!r}"
                    )
        self.slo_policies = (dict(slo_policies)
                             if slo_policies is not None else None)
        self.max_respawns = workers if max_respawns is None else max_respawns
        if isinstance(faults, FaultInjector):
            self._faults: Optional[FaultInjector] = faults
        elif faults is not None:
            self._faults = faults.injector()
        else:
            self._faults = None

        self._lock = threading.Lock()
        self._slot_free = threading.Condition(self._lock)
        self._report_arrived = threading.Condition(self._lock)
        self._report_inbox: Dict[tuple, Dict[str, ServiceReport]] = {}
        self._report_gen = 0
        self._workers: Dict[str, _Worker] = {}
        self._pending: Dict[int, _Pending] = {}
        self._orphans: List[int] = []  #: admitted req ids awaiting a worker
        #: ``{rid: {worker_id: generation}}`` — slots still held for an
        #: already-answered (or expired) request: demoted slow assignees,
        #: losing hedges, and replacements a stale assignee outran.  Each
        #: worker's late answer releases exactly its own slot, scoped to
        #: the incarnation that acquired it.
        self._stale_holders: Dict[int, Dict[str, int]] = {}
        self._traffic: Dict[str, _ModelTraffic] = {}
        self._init_errors: List[str] = []
        self._next_rid = 0
        self._next_worker = 0
        self._respawns = 0
        self._requeued = 0
        self._deadline_expired = 0
        self._retries = 0
        self._hedges = 0
        self._closed = False
        #: Live rollouts, one per model: ``{canonical name: _Rollout}``.
        self._rollouts: Dict[str, "_Rollout"] = {}
        #: Finished rollout controllers (timeline/status after the fact).
        self._rollout_history: List[RolloutController] = []
        #: ``("detached", worker, items, freed_bytes)`` acks, for tests
        #: asserting attach revocation actually freed worker memory.
        self._detach_log: List[tuple] = []
        #: Socket workers the router launched that have not yet said hello,
        #: keyed by subprocess pid.
        self._spawn_pending: Dict[int, subprocess.Popen] = {}
        #: Socket workers whose link dropped but whose process is alive and
        #: expected to dial back: ``{pid: (popen, deadline)}``.
        self._rejoin_pending: Dict[int, tuple] = {}

        deliver = (self._handle_message if self._faults is None
                   else self._faulty_deliver)
        self.transport.start(deliver=deliver,
                             register=self._register_worker)
        for _ in range(workers):
            self._spawn_worker()

        self._supervisor_thread = threading.Thread(
            target=self._supervise, name="cluster-supervisor", daemon=True
        )
        self._supervise_stop = threading.Event()
        self._supervisor_thread.start()

        self._monitor_thread = threading.Thread(
            target=self._monitor_pending, name="cluster-monitor", daemon=True
        )
        self._monitor_thread.start()

        self._wait_ready(startup_timeout_s)

        # Arm the fault schedule only once the fleet is up: scheduled
        # faults are meant to hit a serving cluster, not its startup
        # handshake (frame rules cover the request path from here on).
        if self._faults is not None and not self._faults.started:
            self._faults.start(_FaultController(self),
                               deliver=self._handle_message)

        self._autoscale_thread: Optional[threading.Thread] = None
        if self.autoscaler is not None:
            self._autoscale_thread = threading.Thread(
                target=self._autoscale_loop, name="cluster-autoscale",
                daemon=True,
            )
            self._autoscale_thread.start()

    # ------------------------------------------------------------- lifecycle
    @staticmethod
    def _build_transport(transport, bind: Optional[str], mp_context):
        if not isinstance(transport, str):
            return transport
        if transport == "pipe":
            if bind is not None:
                raise ValueError("bind is only meaningful for socket transports")
            return PipeTransport(mp_context=mp_context)
        if transport == "tcp":
            return SocketTransport(bind or "tcp://127.0.0.1:0")
        if transport == "uds":
            if bind is None:
                path = os.path.join(
                    tempfile.gettempdir(),
                    f"repro-cluster-{os.getpid()}-{uuid.uuid4().hex[:8]}.sock",
                )
                bind = f"uds://{path}"
            return SocketTransport(bind)
        raise ValueError(
            f"unknown transport {transport!r}; expected pipe, uds or tcp"
        )

    # ------------------------------------------------------------- pinning
    def _desired_assignment(self, worker_ids: Sequence[str]
                            ) -> Dict[str, Set[str]]:
        """Ideal ``{worker_id: models}`` layout under the pin counts.

        Each model goes to the top-``K`` of ``worker_ids`` by rendezvous
        score (``K`` clamped into ``[1, len(worker_ids)]``; unlisted models
        pin fleet-wide) — the same ordering the router's eligibility layer
        uses, so the attached sets and the routing sets agree.
        """
        ids = list(worker_ids)
        desired: Dict[str, Set[str]] = {wid: set() for wid in ids}
        for model in self._handles:
            count = (len(ids) if self._pinning is None
                     else self._pinning.get(model, len(ids)))
            count = max(1, min(int(count), len(ids)))
            ranked = sorted(
                ids, key=lambda wid: rendezvous_score(model, wid),
                reverse=True,
            )
            for wid in ranked[:count]:
                desired[wid].add(model)
        return desired

    def _prospective_ids(self, new_id: Optional[str] = None) -> List[str]:
        """Worker ids to lay models out over (lock held by caller).

        Live non-stopping workers, plus ``new_id``, plus — during initial
        startup — the ids the remaining planned spawns will get, so the
        first worker up does not attach everything only to strand the
        surplus once its peers arrive.
        """
        ids = {w.worker_id for w in self._workers.values() if not w.stopping}
        if new_id is not None:
            ids.add(new_id)
        for i in range(self._next_worker, self._startup_target):
            ids.add(f"w{i}")
        return sorted(ids)

    def _assigned_models(self, worker_id: str) -> Optional[Set[str]]:
        """Models a fresh ``worker_id`` should attach (lock held by caller);
        ``None`` (attach everything) when pinning is off."""
        if self._pinning is None:
            return None
        desired = self._desired_assignment(self._prospective_ids(worker_id))
        return desired.get(worker_id, set())

    def _spawn_worker(self) -> None:
        """Start one router-owned worker (child process or subprocess)."""
        if self.transport.spawns_via_registration:
            process = self.transport.launch_worker()
            with self._lock:
                self._spawn_pending[process.pid] = process
            return
        with self._lock:
            worker_id = f"w{self._next_worker}"
            self._next_worker += 1
            assigned = self._assigned_models(worker_id)
        handles = (self._handles if assigned is None
                   else {m: self._handles[m] for m in sorted(assigned)})
        endpoint = self.transport.spawn(worker_id, handles, self.config)
        if self._faults is not None:
            endpoint = self._faults.wrap_endpoint(endpoint)
        with self._lock:
            self._workers[worker_id] = _Worker(
                worker_id=worker_id,
                endpoint=endpoint,
                spawned_at=time.perf_counter(),
                models=assigned,
            )

    def _register_worker(self, channel, hello: dict):
        """Admit a socket worker that said hello (new spawn or reconnect).

        Runs on the transport's handshake thread.  Returns the endpoint to
        start reading from, or ``None`` to reject (cluster closed).
        """
        pid = hello.get("pid")
        if self._faults is not None:
            # Slow-start fault: hold this (re)registration on the handshake
            # thread — parked work keeps waiting out its reconnect grace.
            delay = self._faults.reconnect_delay_s()
            if delay > 0:
                time.sleep(delay)
        with self._lock:
            if self._closed:
                return None
            worker_id = f"w{self._next_worker}"
            self._next_worker += 1
            assigned = self._assigned_models(worker_id)
            process = self._spawn_pending.pop(pid, None)
            rejoin = self._rejoin_pending.pop(pid, None)
            if rejoin is not None:
                # A reconnect restores capacity the same way a respawn does.
                # External workers have no router-held process (rejoin[0] is
                # None); router-launched ones carry their Popen forward.
                if process is None:
                    process = rejoin[0]
                self._respawns += 1
        endpoint = self.transport.make_endpoint(worker_id, channel, process)
        if self._faults is not None:
            endpoint = self._faults.wrap_endpoint(endpoint)
        manifest_handles = (list(self._handles.values()) if assigned is None
                            else [self._handles[m] for m in sorted(assigned)])
        manifest = [(h.model, h.digest, h.nbytes, h.shm_name)
                    for h in manifest_handles]
        try:
            endpoint.send(("welcome", worker_id, manifest, self.config))
        except TransportClosed:
            return None
        with self._lock:
            if self._closed:  # raced close(); do not admit
                return None
            self._workers[worker_id] = _Worker(
                worker_id=worker_id,
                endpoint=endpoint,
                spawned_at=time.perf_counter(),
                models=assigned,
            )
        return endpoint

    def _wait_ready(self, timeout_s: float) -> None:
        deadline = time.perf_counter() + timeout_s
        target = self._startup_target
        while True:
            with self._lock:
                errors = list(self._init_errors)
                ready = sum(1 for w in self._workers.values() if w.ready)
            if errors:
                self.close(drain=False)
                raise RuntimeError(
                    "cluster worker failed to initialize: " + "; ".join(errors)
                )
            if ready >= target:
                return
            if time.perf_counter() > deadline:
                self.close(drain=False)
                raise RuntimeError(
                    f"cluster startup timed out: {ready}/{target} workers ready"
                )
            time.sleep(0.01)

    def close(self, drain: bool = True, timeout_s: float = 30.0) -> None:
        """Stop workers (draining in-flight work by default) and clean up."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            workers = list(self._workers.values())
            unjoined = list(self._spawn_pending.values())
            unjoined += [proc for proc, _ in self._rejoin_pending.values()
                         if proc is not None]
            self._spawn_pending.clear()
            self._rejoin_pending.clear()
        self._supervise_stop.set()
        if self._faults is not None:
            # No faults during teardown: drain must mean drain.
            self._faults.stop()
        for worker in workers:
            worker.stopping = True
            worker.endpoint.request_stop()
        deadline = time.perf_counter() + timeout_s
        if drain:
            while time.perf_counter() < deadline:
                with self._lock:
                    if not self._pending and not self._orphans:
                        break
                time.sleep(0.005)
        for worker in workers:
            worker.endpoint.shutdown(
                timeout_s=max(0.1, deadline - time.perf_counter())
            )
        for process in unjoined:  # never registered: nothing to drain
            process.terminate()
        for process in unjoined:
            try:
                process.wait(timeout=5.0)
            except subprocess.TimeoutExpired:  # pragma: no cover - stragglers
                process.kill()
        self._fail_outstanding(RuntimeError("cluster closed"))
        # Stop inbound delivery after the endpoints are finished with.
        self.transport.close()
        if self._supervisor_thread.is_alive():
            self._supervisor_thread.join(timeout=5.0)
        monitor_thread = getattr(self, "_monitor_thread", None)
        if monitor_thread is not None and monitor_thread.is_alive():
            monitor_thread.join(timeout=5.0)
        autoscale_thread = getattr(self, "_autoscale_thread", None)
        if autoscale_thread is not None and autoscale_thread.is_alive():
            autoscale_thread.join(timeout=5.0)
        if self._owns_store:
            self.store.close()

    def __enter__(self) -> "ClusterService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _fail_outstanding(self, error: BaseException) -> None:
        with self._lock:
            pending = list(self._pending.values())
            self._pending.clear()
            self._orphans.clear()
            self._stale_holders.clear()
            self._slot_free.notify_all()
        for entry in pending:
            if not entry.future.done():
                entry.future.set_exception(error)

    # ------------------------------------------------------------- submission
    def canonical_name(self, model: str) -> str:
        for key in self._handles:
            if key.lower() == model.lower():
                return key
        raise KeyError(
            f"model {model!r} is not published; available: {sorted(self._handles)}"
        )

    def _traffic_for(self, model: str) -> _ModelTraffic:
        traffic = self._traffic.get(model)
        if traffic is None:
            traffic = self._traffic.setdefault(model, _ModelTraffic())
        return traffic

    def _cache_lookup(self, key: str, image: np.ndarray
                      ) -> Tuple[Optional[str], Optional[Future]]:
        """Front-end response-cache probe for one request.

        Returns ``(cache_key, resolved_future_or_None)``.  A hit resolves
        *before* admission — no slot, no dispatch, no routing — which is
        what makes the cluster-wide hit rate a property of the request
        stream and the serving digest alone, identical across 1, 2 or N
        workers.  The key includes the model's current serving digest, so
        a rollout commit (or rollback) naturally invalidates: the old
        version's entries can never answer for the new one.
        """
        if self._response_cache is None:
            return None, None
        with self._lock:
            if self._closed:
                raise RuntimeError("cluster is closed")
            digest = self._handles[key].digest
            cache_key = response_cache_key(key, digest, image)
            cached = self._response_cache.get(cache_key)
            if cached is None:
                self._traffic_for(key).cache_misses += 1
                return cache_key, None
            now = time.perf_counter()
            traffic = self._traffic_for(key)
            traffic.cache_hits += 1
            traffic.requests += 1
            if traffic.first_submit is None:
                traffic.first_submit = now
            traffic.last_done = now
        future: Future = Future()
        future.set_running_or_notify_cancel()
        future.set_result(cached)
        return cache_key, future

    def cache_stats(self) -> Optional[CacheStats]:
        """Cluster-wide response-cache counters (``None`` when disabled)."""
        if self._response_cache is None:
            return None
        return self._response_cache.stats()

    def _admit(self, key: str, image: np.ndarray, block: bool,
               deadline: Optional[float], count_shed: bool = True,
               slo: Optional[str] = None,
               cache_key: Optional[str] = None) -> tuple:
        """Acquire a routing slot and register the pending entry.

        Returns ``(rid, worker_id, future)``; the caller is responsible for
        dispatching (:meth:`_dispatch`).  Raises
        :class:`ClusterOverloadError` on shed, :class:`WorkerCrashError`
        when the cluster has no workers left and no replacement is coming
        (waiting would hang forever), ``RuntimeError`` after close.
        """
        with self._lock:
            if self._closed:
                raise RuntimeError("cluster is closed")
            traffic = self._traffic_for(key)
            while True:
                if not (self._workers or self._spawn_pending
                        or self._rejoin_pending):
                    # Every worker is gone and the respawn budget is spent —
                    # nothing will ever free a slot.
                    raise WorkerCrashError(
                        "cluster has no workers left and no replacement is coming"
                    )
                # record_shed=False: a blocked submitter polling for a slot
                # is waiting, not shedding — only the client-visible raise
                # below counts as a shed.
                worker_id = self.router.acquire(key, record_shed=False,
                                                slo=slo)
                if worker_id is not None and worker_id in self._workers:
                    break
                if worker_id is not None:
                    # Router raced a worker death; slot is already counted —
                    # undo and retry.
                    self.router.release(worker_id)
                if not block:
                    # count_shed=False marks an internal saturation *probe*
                    # (submit_batch flushing before it waits), which is not
                    # a client-visible shed.
                    if count_shed:
                        traffic.shed += 1
                        self.router.record_shed(slo)
                    raise ClusterOverloadError(
                        self.router.retry_after_s(self.config.max_wait_ms,
                                                  model=key, slo=slo)
                    )
                remaining = None if deadline is None else deadline - time.perf_counter()
                if remaining is not None and remaining <= 0:
                    # The caller's deadline passed while waiting for a
                    # slot: the work was never dispatched, never executed.
                    self._deadline_expired += 1
                    raise DeadlineExceededError(
                        f"deadline expired after waiting "
                        f"{-remaining * 1000.0:.1f} ms past it for admission"
                    )
                self._slot_free.wait(timeout=0.05 if remaining is None
                                     else min(0.05, remaining))
                if self._closed:
                    raise RuntimeError("cluster is closed")
            now = time.perf_counter()
            traffic.requests += 1
            if traffic.first_submit is None:
                traffic.first_submit = now
            rid = self._next_rid
            self._next_rid += 1
            future: Future = Future()
            future.set_running_or_notify_cancel()
            self._pending[rid] = _Pending(
                future=future, model=key, image=image, worker=worker_id,
                submitted_at=now, deadline=deadline, dispatched_at=now,
                generation=self._workers[worker_id].generation, slo=slo,
                digest=self._handles[key].digest, cache_key=cache_key,
            )
            return rid, worker_id, future

    def _dispatch(self, key: str, assignments: Sequence[tuple]) -> None:
        """Send admitted ``(rid, worker_id, image)`` entries, one queue
        message per worker.

        A worker whose queue was closed under us (its death handler won the
        race) gets its slots released and the requests re-dispatched rather
        than surfacing transport errors to clients.

        Requests whose deadline has already passed are dropped *here*,
        before any frame goes out — an expired request is never executed;
        its slot is released and its future fails with
        :class:`DeadlineExceededError`.
        """
        expired: List[Future] = []
        live: List[tuple] = []
        now = time.perf_counter()
        with self._lock:
            for rid, worker_id, image in assignments:
                entry = self._pending.get(rid)
                if entry is None:  # pragma: no cover - raced recovery
                    continue
                if entry.deadline is not None and now >= entry.deadline:
                    del self._pending[rid]
                    self._deadline_expired += 1
                    self.router.release(worker_id, entry.generation)
                    self._slot_free.notify_all()
                    expired.append(entry.future)
                else:
                    live.append((rid, worker_id, image, entry.digest))
        for future in expired:
            if not future.done():
                future.set_exception(DeadlineExceededError(
                    "deadline expired before dispatch; request dropped "
                    "unexecuted"
                ))
        groups: Dict[str, List[tuple]] = {}
        for rid, worker_id, image, digest in live:
            groups.setdefault(worker_id, []).append((rid, key, image, digest))
        for worker_id, items in groups.items():
            with self._lock:
                worker = self._workers.get(worker_id)
                endpoint = worker.endpoint if worker is not None else None
            delivered = False
            if endpoint is not None:
                try:
                    endpoint.send(("reqs", items))
                    delivered = True
                except (TransportClosed, ValueError, OSError):
                    pass
            if not delivered:
                for rid, _, _, _ in items:
                    with self._lock:
                        entry = self._pending.get(rid)
                        generation = (entry.generation if entry is not None
                                      else None)
                    self.router.release(worker_id, generation)
                    self._redispatch(rid)

    def submit(self, model: str, image: np.ndarray, block: bool = True,
               timeout: Optional[float] = None,
               slo: Optional[str] = None) -> Future:
        """Route one request to a worker; resolves to the output row.

        With ``block=True`` (default — what the closed-loop load generators
        want) submission waits for an admission slot; with ``block=False``
        a saturated cluster sheds immediately by raising
        :class:`ClusterOverloadError` carrying ``retry_after_s``.

        ``timeout`` is an **end-to-end deadline**, not an admission bound:
        if it expires while waiting for admission this call raises
        :class:`DeadlineExceededError` synchronously; if it expires after
        admission the returned future fails with the same error and the
        request's slots are released — expired work queued behind a slow
        worker is dropped at dispatch time, never executed.

        ``slo`` names the request's class (:data:`~repro.serving.router
        .SLO_CLASSES`): with ``slo_reserves`` configured the router admits
        it through its class's tiered bound (batch sheds first), and with
        ``slo_policies`` configured a ``timeout=None`` request inherits
        the class's default ``deadline_s``.
        """
        key = self.canonical_name(model)
        image = np.asarray(image)
        if slo is not None:
            slo = validate_slo(slo)
            if timeout is None and self.slo_policies is not None:
                slo_policy = self.slo_policies.get(slo)
                if slo_policy is not None:
                    timeout = slo_policy.deadline_s
        cache_key, hit = self._cache_lookup(key, image)
        if hit is not None:
            return hit
        deadline = None if timeout is None else time.perf_counter() + timeout
        rid, worker_id, future = self._admit(key, image, block, deadline,
                                             slo=slo, cache_key=cache_key)
        self._dispatch(key, [(rid, worker_id, image)])
        self._maybe_probe(key, image, future)
        return future

    def submit_batch(self, model: str, images: np.ndarray,
                     slo: Optional[str] = None) -> List[Future]:
        """Enqueue one request per leading row of ``images`` (blocking).

        Admissions are coalesced: all of a run's requests routed to one
        worker travel in a single queue message, so a closed-loop burst
        costs a handful of IPC round trips instead of one per request.
        Accumulated admissions are always flushed *before* waiting for a
        slot — a blocked submitter never holds undispatched work, so
        concurrent batch submitters cannot deadlock each other.  Bursts
        larger than the cluster's admission window are paced by
        backpressure, mirroring the single-process semantics.
        """
        key = self.canonical_name(model)
        slo = None if slo is None else validate_slo(slo)
        futures: List[Future] = []
        assignments: List[tuple] = []
        for image in np.asarray(images):
            cache_key, hit = self._cache_lookup(key, image)
            if hit is not None:
                futures.append(hit)
                continue
            try:
                rid, worker_id, future = self._admit(
                    key, image, block=False, deadline=None, count_shed=False,
                    slo=slo, cache_key=cache_key
                )
            except ClusterOverloadError:
                # Saturated: dispatch what we hold, then wait empty-handed.
                if assignments:
                    self._dispatch(key, assignments)
                    assignments = []
                rid, worker_id, future = self._admit(
                    key, image, block=True, deadline=None, slo=slo,
                    cache_key=cache_key
                )
            futures.append(future)
            assignments.append((rid, worker_id, image))
            self._maybe_probe(key, image, future)
        if assignments:
            self._dispatch(key, assignments)
        return futures

    def infer(self, model: str, image: np.ndarray,
              timeout: Optional[float] = None) -> np.ndarray:
        """Blocking single-request inference."""
        return self.submit(model, image).result(timeout=timeout)

    # ------------------------------------------------------------- inbound
    def _handle_message(self, message: tuple) -> None:
        """Inbound dispatch; called from the transport's delivery thread(s).

        The pipe transport delivers from one pump thread, socket transports
        from one reader thread per connection — every branch takes the
        cluster lock, so concurrent delivery is safe.
        """
        kind = message[0]
        if kind == "res" or kind == "err":
            self._handle_response(message)
        elif kind == "hb":
            _, worker_id, _stamp = message
            with self._lock:
                worker = self._workers.get(worker_id)
                if worker is not None:
                    worker.last_heartbeat = time.perf_counter()
            # Quarantined workers earn probation credit with every
            # heartbeat that arrives with no failure since the last one
            # (no-op unless a quarantine policy is configured).
            self.router.record_clean_heartbeat(worker_id)
        elif kind == "ready":
            self._handle_ready(message)
        elif kind == "attached":
            _, worker_id, model, ms = message
            with self._lock:
                worker = self._workers.get(worker_id)
                if worker is not None:
                    worker.attach_ms[model] = ms
                    worker.last_heartbeat = time.perf_counter()
        elif kind == "prepared":
            self._handle_prepared(message)
        elif kind == "committed":
            _, worker_id, model, digest = message
            with self._lock:
                worker = self._workers.get(worker_id)
                if worker is not None:
                    worker.last_heartbeat = time.perf_counter()
                rollout = self._rollouts.get(model)
                if (rollout is not None
                        and digest == rollout.controller.new_digest):
                    rollout.controller.worker_committed(worker_id)
            self._rollout_tick()
        elif kind == "detached":
            _, worker_id, items, freed = message
            with self._lock:
                worker = self._workers.get(worker_id)
                if worker is not None:
                    worker.last_heartbeat = time.perf_counter()
                self._detach_log.append((worker_id, list(items), int(freed)))
                for model, digest in items:
                    # Straggler cleanup: e.g. a prepare that completed
                    # after its rollout rolled back declared a digest the
                    # bulk revocation never saw.
                    if digest:
                        self.router.revoke_digest(worker_id, model, digest)
        elif kind == "reports":
            _, worker_id, generation, reports = message
            with self._lock:
                self._report_inbox[(worker_id, generation)] = reports
                self._report_arrived.notify_all()
        elif kind == "fetch":
            self._handle_fetch(message)
        elif kind == "conn_lost":
            _, worker_id = message
            with self._lock:
                worker = self._workers.get(worker_id)
            if worker is not None and not worker.stopping:
                self._handle_worker_death(worker)
        elif kind == "init_error":
            _, worker_id, text = message
            with self._lock:
                self._init_errors.append(f"{worker_id}: {text}")
        elif kind == "bye":
            pass

    def _handle_fetch(self, message: tuple) -> None:
        """Serve a remote worker's artifact-bytes request by digest."""
        _, worker_id, digest = message
        with self._lock:
            worker = self._workers.get(worker_id)
        if worker is None:  # pragma: no cover - raced removal
            return
        try:
            payload = np.frombuffer(self.store.payload_view(digest),
                                    dtype=np.uint8)
            reply = ("blob", digest, payload)
        except KeyError as exc:
            reply = ("blob_error", digest, str(exc))
        try:
            worker.endpoint.send(reply)
        except (TransportClosed, ValueError, OSError):
            pass  # dead link: its conn_lost handler owns the cleanup

    def _handle_prepared(self, message: tuple) -> None:
        """A worker acked ``prepare``: the new version is staged on it."""
        _, worker_id, model, digest, ms = message
        straggler: Optional[WorkerEndpoint] = None
        with self._lock:
            worker = self._workers.get(worker_id)
            if worker is not None:
                worker.last_heartbeat = time.perf_counter()
                worker.attach_ms[f"{model}@{digest[:12]}"] = ms
            self.router.declare_digest(worker_id, model, digest)
            rollout = self._rollouts.get(model)
            if (rollout is not None and worker is not None
                    and digest == rollout.controller.new_digest):
                rollout.controller.worker_prepared(worker_id)
                if rollout.controller.phase in ("promoting", "committed"):
                    # A late joiner finished staging after the fleet
                    # already flipped: flip its active pointer too, or
                    # its *untagged* local state would lag the cluster.
                    straggler = worker.endpoint
        if straggler is not None:
            try:
                straggler.send(("commit", model, digest))
            except (TransportClosed, ValueError, OSError):
                pass  # dying link: its death handler discounts the worker
        self._rollout_tick()

    def _handle_ready(self, message: tuple) -> None:
        _, worker_id, pid, attach_ms = message
        orphans: List[int] = []
        prepare_sends: List[Tuple[WorkerEndpoint, tuple]] = []
        with self._lock:
            worker = self._workers.get(worker_id)
            if worker is None:  # pragma: no cover - raced close()
                return
            worker.ready = True
            worker.pid = pid
            worker.attach_ms = dict(attach_ms)
            worker.ready_ms = (time.perf_counter() - worker.spawned_at) * 1000.0
            worker.last_heartbeat = time.perf_counter()
            worker.generation = self.router.add_worker(
                worker_id,
                models=(None if worker.models is None
                        else sorted(worker.models)),
            )
            # Declare the serving version of everything it attached —
            # digest-tagged traffic (canary probes, in-flight rollout
            # requests) may only route to declared holders.
            held = (self._handles if worker.models is None
                    else {m: self._handles[m] for m in worker.models})
            for model, handle in held.items():
                self.router.declare_digest(worker_id, model, handle.digest)
            # A worker joining mid-rollout must stage the new digest too.
            for model, rollout in self._rollouts.items():
                if worker.models is not None and model not in worker.models:
                    continue
                if rollout.controller.done:
                    continue
                rollout.controller.worker_joined(worker_id)
                new = rollout.new_handle
                prepare_sends.append((worker.endpoint, ("prepare", [
                    (new.model, new.digest, new.nbytes, new.shm_name)
                ])))
            orphans, self._orphans = self._orphans, []
            self._slot_free.notify_all()
        for endpoint, frame in prepare_sends:
            try:
                endpoint.send(frame)
            except (TransportClosed, ValueError, OSError):
                pass  # dying link: its death handler discounts the worker
        # Converge attachments before redispatching parked work, so a
        # force-acquire can land on a worker that just gained the model.
        self._refresh_pinning()
        for rid in orphans:
            self._redispatch(rid)

    def _handle_response(self, message: tuple) -> None:
        kind, worker_id, rid, payload = message
        now = time.perf_counter()
        with self._lock:
            entry = self._pending.pop(rid, None)
            if entry is None:
                # Late (duplicate) answer: the request was already won by
                # another holder, requeued past this sender, or expired.
                # Release exactly the *sender's* still-held slot, scoped
                # to the incarnation that acquired it (a same-id
                # re-registration must not lose a slot it never granted).
                holders = self._stale_holders.get(rid)
                if holders is not None:
                    held = holders.pop(worker_id, None)
                    if not holders:
                        del self._stale_holders[rid]
                    if held is not None:
                        self.router.release(worker_id, held[0])
                        self._slot_free.notify_all()
                return
            # First answer wins — with retry/hedging several workers may
            # hold a live slot for this rid (outputs are bit-identical, so
            # *which* copy wins is unobservable).  Release the sender's
            # slot now; the remaining holders' slots are parked until
            # their own late answers arrive (or their deaths credit them,
            # or the stale grace reaps them).
            holders = dict(entry.holders)
            holders[entry.worker] = entry.generation
            sender_generation = holders.pop(worker_id, None)
            if sender_generation is not None:
                self.router.release(worker_id, sender_generation)
                if kind == "res":
                    self.router.record_completion(
                        worker_id, max(0.0, now - entry.dispatched_at))
                else:
                    self.router.record_failure(worker_id)
            # A sender absent from the holder set was already given up on
            # (declared dead; its slots were credited at removal) — there
            # is nothing to release for it, only the live holders to park.
            if holders:
                reap_at = now + self._stale_grace_s
                self._stale_holders[rid] = {
                    holder: (generation, reap_at)
                    for holder, generation in holders.items()
                }
            if not entry.probe:
                # Canary probes are internal mirrors: they must not skew
                # the client-facing latency distribution (the retry
                # policy's p99 is derived from it).
                traffic = self._traffic_for(entry.model)
                traffic.last_done = now
                traffic.latencies.record(max(0.0, now - entry.submitted_at))
            self._slot_free.notify_all()
        if kind == "res":
            result = payload
            if isinstance(result, np.ndarray) and result.flags.writeable:
                result.setflags(write=False)
            if entry.cache_key is not None and self._response_cache is not None:
                self._response_cache.put(entry.cache_key, result)
            entry.future.set_result(result)
        else:
            entry.future.set_exception(RuntimeError(
                f"worker {worker_id} failed request: {payload}"
            ))

    # ------------------------------------------------------------- faults
    def _faulty_deliver(self, message: tuple) -> None:
        """Inbound delivery threaded through the fault plane's frame rules.

        Replaces :meth:`_handle_message` as the transport's deliver
        callback when a fault plan is armed: worker→router hot-path frames
        may be dropped, delivered late (via the injector's timer thread)
        or duplicated before the real handler sees them.
        """
        for delay, msg in self._faults.filter_inbound(message):
            if delay <= 0:
                self._handle_message(msg)
            else:
                self._faults.schedule_delivery(
                    delay, lambda m=msg: self._handle_message(m))

    @property
    def fault_events(self) -> List:
        """Faults the armed plan has actually fired so far, in order
        (:class:`~repro.serving.faults.FaultEvent`; empty without a plan)."""
        return [] if self._faults is None else self._faults.events()

    # ------------------------------------------------------------- deadlines
    def _monitor_pending(self) -> None:
        """Deadline/retry/hedge control loop (20 ms cadence).

        Three sweeps over the pending table: fail dispatched requests
        whose end-to-end deadline passed (releasing every slot they
        hold), re-dispatch requests whose current attempt has outlived
        the retry policy's patience, and hedge requests past the p99-based
        hedge delay.  Parked late-answer slots whose grace expired are
        reaped here too — a lost response frame must not leak admission
        capacity forever.
        """
        while not self._supervise_stop.wait(0.02):
            self._sweep_pending()
            self._rollout_tick()

    def _sweep_pending(self) -> None:
        policy = self.retry_policy
        now = time.perf_counter()
        expired: List[_Pending] = []
        exhausted: List[_Pending] = []
        sends: List[Tuple[WorkerEndpoint, tuple]] = []
        p99_cache: Dict[str, tuple] = {}

        def model_p99(model: str) -> tuple:
            cached = p99_cache.get(model)
            if cached is None:
                traffic = self._traffic.get(model)
                cached = ((0, 0.0) if traffic is None
                          else traffic.latencies.quantile_s(99.0))
                p99_cache[model] = cached
            return cached

        with self._lock:
            if self._closed:
                return
            for rid, entry in list(self._pending.items()):
                if entry.deadline is not None and now >= entry.deadline:
                    # Too late for anyone to want the answer: fail the
                    # future and release every held slot immediately.  The
                    # workers' late answers will find neither a pending
                    # entry nor a parked slot — no double release.
                    del self._pending[rid]
                    self._deadline_expired += 1
                    self.router.release(entry.worker, entry.generation)
                    for holder, generation in entry.holders.items():
                        self.router.release(holder, generation)
                    self._slot_free.notify_all()
                    expired.append(entry)
                    continue
                if policy is None or entry.probe:
                    # Probes are never retried or hedged: a slow or lost
                    # probe is a canary sample that never happened, and
                    # duplicating it would double-count the comparison.
                    continue
                # Per-class overrides: an SLOPolicy row may cap the
                # request's attempts or veto hedging for its class.
                slo_policy = (self.slo_policies.get(entry.slo)
                              if self.slo_policies is not None
                              and entry.slo is not None else None)
                max_attempts = (policy.max_attempts
                                if slo_policy is None
                                or slo_policy.max_attempts is None
                                else slo_policy.max_attempts)
                hedge_enabled = (policy.hedge
                                 if slo_policy is None
                                 or slo_policy.hedge is None
                                 else slo_policy.hedge)
                count, p99_s = model_p99(entry.model)
                if count >= policy.min_samples and p99_s > 0.0:
                    candidate = policy.timeout_factor * p99_s
                else:
                    # Cold start: no latency distribution to scale from
                    # yet.  Fall back to the heartbeat timeout — the same
                    # "worker is unresponsive" bound the supervisor uses —
                    # so a request whose very first frame was lost still
                    # retries instead of waiting for statistics.
                    candidate = self.heartbeat_timeout_s
                base = max(policy.min_timeout_s,
                           min(policy.max_timeout_s, candidate))
                waited = now - entry.dispatched_at
                patience = (
                    base * policy.backoff_factor ** (entry.attempts - 1)
                )
                if waited >= patience and entry.attempts >= max_attempts:
                    # Retry budget exhausted and the final attempt has
                    # outlived its patience too: fail terminally rather
                    # than hang.  Slots are released exactly as on
                    # deadline expiry; a straggler answer arriving later
                    # finds neither a pending entry nor a parked slot.
                    del self._pending[rid]
                    self.router.record_failure(entry.worker)
                    self.router.release(entry.worker, entry.generation)
                    for holder, generation in entry.holders.items():
                        self.router.release(holder, generation)
                    self._slot_free.notify_all()
                    exhausted.append(entry)
                    continue
                if waited >= patience:
                    # Retry: the current assignee has outlived attempt
                    # ``attempts``'s patience.  Demote it (slot parked on
                    # the entry; released by its late answer / death /
                    # grace), record the failure for quarantine purposes
                    # and force-dispatch to a different worker.
                    exclude = [entry.worker, *entry.holders]
                    worker_id = self.router.acquire(
                        entry.model, force=True, record_shed=False,
                        exclude=exclude)
                    if worker_id is None or worker_id not in self._workers:
                        if worker_id is not None:
                            self.router.release(worker_id)
                        continue  # nowhere else to go; re-check next tick
                    self.router.record_failure(entry.worker)
                    entry.holders[entry.worker] = entry.generation
                    worker = self._workers[worker_id]
                    entry.worker = worker_id
                    entry.generation = worker.generation
                    entry.attempts += 1
                    entry.dispatched_at = now
                    self._retries += 1
                    sends.append((worker.endpoint,
                                  ("reqs", [(rid, entry.model, entry.image,
                                             entry.digest)])))
                elif (hedge_enabled and not entry.hedged
                      and count >= policy.min_samples and p99_s > 0.0
                      and waited >= max(policy.min_timeout_s,
                                        min(policy.max_timeout_s,
                                            policy.hedge_factor * p99_s))):
                    # Hedge: dispatch a duplicate *within* the admission
                    # bound (no force — a saturated fleet sheds hedges
                    # first, and a hedge rides its request's own class
                    # tier); first response wins, bit-identical outputs
                    # make the winner unobservable.
                    exclude = [entry.worker, *entry.holders]
                    worker_id = self.router.acquire(
                        entry.model, record_shed=False, exclude=exclude,
                        slo=entry.slo)
                    if worker_id is None or worker_id not in self._workers:
                        if worker_id is not None:
                            self.router.release(worker_id)
                        continue
                    worker = self._workers[worker_id]
                    entry.holders[worker_id] = worker.generation
                    entry.hedged = True
                    self._hedges += 1
                    sends.append((worker.endpoint,
                                  ("reqs", [(rid, entry.model, entry.image,
                                             entry.digest)])))
            # Reap parked late-answer slots whose grace expired: the
            # response frame is considered lost for good.  If it arrives
            # after all, the missing park entry makes it a no-op.
            for rid in list(self._stale_holders):
                holders = self._stale_holders[rid]
                for holder, (generation, reap_at) in list(holders.items()):
                    if now >= reap_at:
                        del holders[holder]
                        self.router.release(holder, generation)
                        self._slot_free.notify_all()
                if not holders:
                    del self._stale_holders[rid]
        for entry in expired:
            if not entry.future.done():
                entry.future.set_exception(DeadlineExceededError(
                    "deadline expired while dispatched; request dropped"
                ))
        for entry in exhausted:
            if not entry.future.done():
                entry.future.set_exception(WorkerCrashError(
                    f"no answer after {entry.attempts} attempt(s); "
                    "retry budget exhausted"
                ))
        for endpoint, message in sends:
            try:
                endpoint.send(message)
            except (TransportClosed, ValueError, OSError):
                pass  # dying link: its death handler requeues the rid

    # ------------------------------------------------------------- supervision
    def _supervise(self) -> None:
        interval = max(0.05, min(self.config.heartbeat_interval_s,
                                 self.heartbeat_timeout_s / 4.0))
        while not self._supervise_stop.wait(interval):
            self._check_workers()

    def _check_workers(self) -> None:
        now = time.perf_counter()
        dead: List[_Worker] = []
        retired: List[_Worker] = []
        with self._lock:
            for worker in self._workers.values():
                if worker.stopping:
                    # A retiring worker drains and exits on its own; once
                    # its endpoint is gone, finalize it (reap resources and
                    # requeue anything it never answered).
                    if not self._closed and not worker.endpoint.alive():
                        retired.append(worker)
                    continue
                alive = worker.endpoint.alive()
                stale = (
                    worker.ready
                    and self.heartbeat_timeout_s > 0
                    and now - worker.last_heartbeat > self.heartbeat_timeout_s
                )
                if not alive or stale:
                    dead.append(worker)
        for worker in dead:
            self._handle_worker_death(worker)
        for worker in retired:
            self._finalize_retired(worker)
        self._check_unjoined(now)

    def _check_unjoined(self, now: float) -> None:
        """Reap socket workers that died before (re)registering.

        A launched subprocess that exits before its hello, or a
        disconnected worker whose process dies (or whose reconnect grace
        expires) while work is parked waiting for it, must convert into a
        respawn or a drained orphan — never a silent hang.
        """
        #: (process-or-None, router_owned) — external rejoin entries carry
        #: no process handle and are never respawned by the router.
        failed: List[tuple] = []
        with self._lock:
            for pid, process in list(self._spawn_pending.items()):
                code = process.poll()
                if code is not None:
                    del self._spawn_pending[pid]
                    self._init_errors.append(
                        f"worker pid {pid} exited with code {code} before "
                        f"registering"
                    )
                    failed.append((process, True))
            for pid, (process, deadline) in list(self._rejoin_pending.items()):
                process_died = process is not None and process.poll() is not None
                if process_died or now > deadline:
                    del self._rejoin_pending[pid]
                    failed.append((process, process is not None))
        for process, router_owned in failed:
            if process is not None and process.poll() is None:
                process.terminate()  # pragma: no cover - grace expired
            with self._lock:
                respawn = (router_owned
                           and self._respawns < self.max_respawns
                           and not self._closed)
                if respawn:
                    self._respawns += 1
                orphans, self._orphans = self._orphans, []
                self._slot_free.notify_all()
            if respawn:
                self._spawn_worker()
            # _redispatch re-parks orphans when another replacement is
            # coming, otherwise fails their futures — never leaves them.
            for rid in orphans:
                self._redispatch(rid)

    def _handle_worker_death(self, worker: _Worker) -> None:
        """Recover a dead worker link: respawn/await-reconnect + requeue.

        Pipe workers are child processes — death means the process died,
        so the recovery is a respawn (budget permitting).  Socket workers
        die in two ways: the *process* died (respawn if the router launched
        it) or only the *connection* died while the process lives — then
        the worker is expected to dial back within ``reconnect_grace_s``
        and requeued work may park for it.  Externally launched workers
        are never respawned; they re-admit themselves by reconnecting.
        """
        endpoint = worker.endpoint
        with self._lock:
            if worker.worker_id not in self._workers:
                return
            del self._workers[worker.worker_id]
            self.router.remove_worker(worker.worker_id)
            for rollout in self._rollouts.values():
                rollout.controller.worker_gone(worker.worker_id)
            victims = []
            for rid, entry in self._pending.items():
                # A dead hedge/demoted holder's slot was credited by
                # remove_worker; its late answer can never come.
                entry.holders.pop(worker.worker_id, None)
                if entry.worker != worker.worker_id:
                    continue
                if entry.holders:
                    # The primary died but a duplicate of this request is
                    # already in flight on a surviving holder — promote it
                    # instead of requeueing (which would dispatch a third
                    # copy).
                    promoted = next(iter(entry.holders))
                    entry.generation = entry.holders.pop(promoted)
                    entry.worker = promoted
                else:
                    victims.append(rid)
            # Parked late-answer slots of the dead worker: credited by
            # remove_worker, never answering — drop their park entries.
            for rid in list(self._stale_holders):
                self._stale_holders[rid].pop(worker.worker_id, None)
                if not self._stale_holders[rid]:
                    del self._stale_holders[rid]
            # Orphans were parked waiting for *some* replacement to become
            # ready; if the worker that just died was that replacement, the
            # wait is over — re-run them through _redispatch, which either
            # re-parks (another respawn is coming) or fails them.  Leaving
            # them parked would hang their futures forever.
            victims.extend(self._orphans)
            self._orphans = []
            rejoining = False
            process = endpoint.surviving_process()
            external = (getattr(endpoint, "reconnects", False)
                        and not endpoint.respawnable)
            if not self._closed:
                if process is not None:
                    # Link lost but the router-owned process lives: it will
                    # reconnect.
                    self._rejoin_pending[process.pid] = (
                        process,
                        time.perf_counter() + self.reconnect_grace_s,
                    )
                    rejoining = True
                elif external and worker.pid is not None:
                    # Externally launched worker: the router cannot see its
                    # process, so grant the same reconnect grace on faith —
                    # the entry expires (and parked work drains) if it never
                    # dials back.
                    self._rejoin_pending[worker.pid] = (
                        None,
                        time.perf_counter() + self.reconnect_grace_s,
                    )
                    rejoining = True
            respawn = (endpoint.respawnable and not rejoining
                       and self._respawns < self.max_respawns
                       and not self._closed)
            if respawn:
                self._respawns += 1
            self._slot_free.notify_all()
        endpoint.reap()
        if respawn:
            self._spawn_worker()
        # Re-pin before requeueing: with per-model pinning the dead worker
        # may have been a model's only attacher, and the victims' force-
        # acquires need a surviving worker that declares their model.
        self._refresh_pinning()
        for rid in victims:
            self._redispatch(rid)
        # The death may have terminated a rollout (last staged holder) or
        # completed a promote (the dead worker was the last pending ack).
        self._rollout_tick()

    def _redispatch(self, rid: int) -> None:
        """Move an admitted request onto a live worker (crash requeue)."""
        endpoint = None
        failed_future: Optional[Future] = None
        failure: Optional[BaseException] = None
        with self._lock:
            entry = self._pending.get(rid)
            if entry is None:
                return
            now = time.perf_counter()
            if entry.deadline is not None and now >= entry.deadline:
                # Expired while losing its worker: drop instead of
                # re-dispatching — never execute past-deadline work.  The
                # primary slot was already handled by whoever called us;
                # surviving hedge holders park for their late answers.
                del self._pending[rid]
                self._deadline_expired += 1
                if entry.holders:
                    reap_at = now + self._stale_grace_s
                    self._stale_holders[rid] = {
                        holder: (generation, reap_at)
                        for holder, generation in entry.holders.items()
                    }
                failed_future = entry.future
                failure = DeadlineExceededError(
                    "deadline expired during crash recovery; request "
                    "dropped unexecuted"
                )
            elif entry.probe:
                # A canary probe that lost its worker is dropped, never
                # moved: re-running it elsewhere would sample a different
                # worker than the router picked, and the rollout
                # controller already discounted the dead holder.  The
                # comparison pair treats the crash as "no sample".
                del self._pending[rid]
                failed_future = entry.future
                failure = WorkerCrashError(
                    f"canary probe {rid} lost its worker; sample dropped"
                )
            else:
                entry.requeues += 1
                self._requeued += 1
                # Retag to the model's *current* serving digest: a requeue
                # may straddle a rollout commit, and the replacement worker
                # is only guaranteed to hold the serving version.  Safe
                # because the serving digest only ever flips after a
                # bit-identical canary — both versions answer alike.
                entry.digest = self._handles[entry.model].digest
                # force=True: this work was admitted once already; shedding
                # it now would turn a worker crash into client-visible
                # errors.  Workers already holding a copy are excluded — a
                # duplicate on the *same* worker id would collide with its
                # own late answer.
                worker_id = self.router.acquire(
                    entry.model, force=True, exclude=list(entry.holders))
                if worker_id is None or worker_id not in self._workers:
                    if worker_id is not None:
                        self.router.release(worker_id)
                    replacement_coming = not self._closed and (
                        any(not w.ready for w in self._workers.values())
                        or bool(self._spawn_pending)
                        or bool(self._rejoin_pending)
                    )
                    if replacement_coming:
                        # Park until the replacement's "ready" drains
                        # orphans (spawned workers and expected reconnects
                        # both end in a "ready"; the supervisor reaps the
                        # ones that never arrive and drains the orphans
                        # again).
                        self._orphans.append(rid)
                        return
                    self._pending.pop(rid, None)
                    failed_future = entry.future
                    failure = WorkerCrashError(
                        f"request {rid} lost its worker and no replacement "
                        f"is available"
                    )
                else:
                    entry.worker = worker_id
                    worker = self._workers[worker_id]
                    entry.generation = worker.generation
                    entry.dispatched_at = now
                    endpoint = worker.endpoint
                    message = ("reqs", [(rid, entry.model, entry.image,
                                         entry.digest)])
        if failed_future is not None:
            if not failed_future.done():
                failed_future.set_exception(failure)
            return
        try:
            endpoint.send(message)
        except (TransportClosed, ValueError, OSError):
            # The replacement's link closed under us.  Its conn_lost event
            # may not have arrived yet, so declare the death ourselves:
            # that removes the worker from the router/worker maps and
            # requeues this rid (it is pending on this worker) along with
            # any other victims.  Each level of this recursion removes one
            # worker, so it is bounded by the worker count — never by luck.
            self.router.release(worker_id, entry.generation)
            self._handle_worker_death(worker)

    # ------------------------------------------------------------- elasticity
    def _refresh_pinning(self) -> None:
        """Converge the attached model sets onto the pinned top-K layout.

        Called after every membership change (ready / death / retire) and
        after pin widths shrink (:meth:`rebalance_pinning`).  Under the
        cluster lock it computes which ready workers are missing models
        the ideal layout assigns them, and which hold a surplus; the
        ``attach`` / ``detach`` messages go out **outside** the lock.
        Each grown model is declared to the router only *after* its
        attach was sent — the channel is FIFO, so a worker always
        processes the attach before any request routed to it for that
        model.  Surplus models are revoked in the opposite order: routing
        eligibility is withdrawn under the lock *before* the ``detach``
        frame goes out, so every request dispatched ahead of the detach
        is already in the worker's FIFO queue and drains before the
        worker's pool drops the version and frees its shm views.  A model
        mid-rollout is never revoked — its layout is frozen until the
        rollout terminates.
        """
        if self._pinning is None:
            return
        sends: List[Tuple[_Worker, List[tuple], List[str]]] = []
        revokes: List[Tuple[_Worker, List[str]]] = []
        with self._lock:
            live = [w for w in self._workers.values() if not w.stopping]
            if not live:
                return
            desired = self._desired_assignment([w.worker_id for w in live])
            for worker in live:
                if worker.models is None or not worker.ready:
                    # Attach-everything workers need nothing; workers still
                    # initializing get their turn from their own ready
                    # handler (their handshake would drop an attach).
                    continue
                want = desired.get(worker.worker_id, set())
                missing = want - worker.models
                surplus = {m for m in worker.models - want
                           if m not in self._rollouts}
                if missing:
                    manifest = [
                        (h.model, h.digest, h.nbytes, h.shm_name)
                        for m in sorted(missing)
                        for h in (self._handles[m],)
                    ]
                    worker.models |= missing
                    sends.append((worker, manifest, sorted(missing)))
                if surplus:
                    for model in sorted(surplus):
                        self.router.remove_worker_model(worker.worker_id,
                                                        model)
                    worker.models -= surplus
                    revokes.append((worker, sorted(surplus)))
        for worker, manifest, models in sends:
            try:
                worker.endpoint.send(("attach", manifest))
            except (TransportClosed, ValueError, OSError):
                continue  # dying link: its death handler re-pins again
            for model in models:
                self.router.add_worker_model(worker.worker_id, model)
                self.router.declare_digest(worker.worker_id, model,
                                           self._handles[model].digest)
        for worker, models in revokes:
            try:
                worker.endpoint.send(
                    ("detach", [(model, "") for model in models]))
            except (TransportClosed, ValueError, OSError):
                pass  # dying link: death already frees everything

    def measured_model_shares(self) -> Dict[str, float]:
        """Observed request count per model since startup.

        This is the live traffic-share signal
        :func:`~repro.serving.router.pin_counts_from_shares` wants:
        actual submissions (admitted requests), not configured guesses.
        """
        with self._lock:
            return {model: float(traffic.requests)
                    for model, traffic in self._traffic.items()
                    if traffic.requests > 0}

    def rebalance_pinning(self, min_workers: int = 1
                          ) -> Optional[Dict[str, int]]:
        """Re-derive pin widths from **measured** traffic shares.

        Feeds :meth:`measured_model_shares` into
        :func:`~repro.serving.router.pin_counts_from_shares` over the
        current live fleet size, updates the router's pin table for the
        models that saw traffic, and converges worker attachments onto
        the new layout.  Returns the applied ``{model: K}`` (``None``
        when pinning is disabled or no traffic has been observed yet) —
        a no-op on unpinned clusters, where every worker already serves
        everything.
        """
        shares = self.measured_model_shares()
        with self._lock:
            if self._pinning is None or not shares:
                return None
            fleet = sum(1 for w in self._workers.values() if not w.stopping)
            if fleet < 1:
                return None
            counts = pin_counts_from_shares(shares, workers=fleet,
                                            min_workers=min_workers)
            self._pinning.update(counts)
            applied = dict(self._pinning)
        self.router.set_pin_counts(applied)
        self._refresh_pinning()
        return applied

    def scale_up(self, count: int = 1) -> int:
        """Spawn up to ``count`` additional workers; returns how many.

        Stops early at the autoscaler's ``max_workers`` bound (when one is
        configured) or after close.  The new workers attach their pinned
        manifests, say ready and join the router like any startup worker.
        """
        spawned = 0
        for _ in range(count):
            with self._lock:
                if self._closed:
                    break
                fleet = (sum(1 for w in self._workers.values()
                             if not w.stopping)
                         + len(self._spawn_pending)
                         + len(self._rejoin_pending))
                if (self.autoscaler is not None
                        and fleet >= self.autoscaler.config.max_workers):
                    break
            self._spawn_worker()
            spawned += 1
        return spawned

    def scale_down(self, count: int = 1) -> int:
        """Gracefully retire up to ``count`` workers; returns how many."""
        retired = 0
        for _ in range(count):
            if not self._retire_worker():
                break
            retired += 1
        return retired

    def _retire_worker(self) -> bool:
        """Drain one worker out of the fleet (the least-loaded ready one).

        The victim leaves the router immediately (no new work routes to
        it; its in-flight slots are credited — late answers still resolve
        their futures, the releases just no-op), gets a graceful ``stop``
        and drains on its own; the supervisor finalizes it once its
        process exits.  Declines (returning ``False``) rather than go
        below the autoscaler's ``min_workers`` (or 1).
        """
        floor = (self.autoscaler.config.min_workers
                 if self.autoscaler is not None else 1)
        with self._lock:
            if self._closed:
                return False
            candidates = [w for w in self._workers.values()
                          if w.ready and not w.stopping]
            if len(candidates) <= max(1, floor):
                return False
            victim = min(
                candidates,
                key=lambda w: self.router.outstanding(w.worker_id),
            )
            victim.stopping = True
            self.router.remove_worker(victim.worker_id)
            self._slot_free.notify_all()
        self._refresh_pinning()
        victim.endpoint.request_stop()
        return True

    def _finalize_retired(self, worker: _Worker) -> None:
        """Reap a drained retiree; requeue anything it never answered.

        A retiring worker that crashed mid-drain (or received a dispatch
        that raced its stop) leaves pending entries behind — they must be
        re-dispatched, not stranded, exactly like a crash victim's.
        """
        with self._lock:
            if self._workers.get(worker.worker_id) is not worker:
                return
            del self._workers[worker.worker_id]
            strays = [rid for rid, entry in self._pending.items()
                      if entry.worker == worker.worker_id]
            self._slot_free.notify_all()
        worker.endpoint.shutdown(timeout_s=5.0)
        for rid in strays:
            self._redispatch(rid)

    @property
    def autoscale_events(self) -> List:
        """Recorded :class:`~repro.serving.autoscale.ScaleEvent` s."""
        return [] if self.autoscaler is None else list(self.autoscaler.events)

    def _autoscale_loop(self) -> None:
        config = self.autoscaler.config
        while not self._supervise_stop.wait(config.interval_s):
            if self._closed:
                return
            stats = self.router.stats()
            with self._lock:
                ready = sum(1 for w in self._workers.values()
                            if w.ready and not w.stopping)
                starting = sum(1 for w in self._workers.values()
                               if not w.ready and not w.stopping)
                pending = (starting + len(self._spawn_pending)
                           + len(self._rejoin_pending))
            decision = self.autoscaler.observe(AutoscaleSignals(
                workers=ready,
                pending=pending,
                dispatched=stats.dispatched,
                shed=stats.shed,
                outstanding=max(0, stats.outstanding),
                window=ready * self.router.max_outstanding,
            ))
            if decision == "grow":
                if self.scale_up(config.grow_step) == 0:
                    self.autoscaler.refund_grow()
            elif decision == "shrink":
                self.scale_down(config.shrink_step)

    def worker_detail(self) -> Dict[str, dict]:
        """Per-worker attach surface: models held, bytes, warm timings.

        This is what the pinning benchmark reads: a pinned heterogeneous
        fleet shows small per-worker ``attach_bytes`` where an
        attach-everything fleet shows the full store on every worker.
        """
        with self._lock:
            detail = {}
            for worker in self._workers.values():
                models = (sorted(self._handles) if worker.models is None
                          else sorted(worker.models))
                detail[worker.worker_id] = {
                    "models": models,
                    "attach_bytes": sum(self._handles[m].nbytes
                                        for m in models),
                    "ready_ms": worker.ready_ms,
                    "attach_ms": dict(worker.attach_ms),
                    "ready": worker.ready,
                    "stopping": worker.stopping,
                }
            return detail

    # ------------------------------------------------------------- rollout
    def publish(self, network, model: Optional[str] = None,
                rollout: Optional[RolloutConfig] = None) -> str:
        """Publish a new version of a served model and start its rollout.

        The new artifact is content-addressed into the store beside the
        serving version, every ready holder of the model is told to
        fetch-ahead and warm it (``prepare``) while the old digest keeps
        serving **every** request, and a :class:`RolloutController` takes
        over: staging → canary (a mirrored fraction of live traffic,
        compared bit-for-bit) → promoting (atomic per-worker active-pointer
        flips) → committed, with auto-rollback on canary mismatch, canary
        latency regression, worker loss or any phase timeout.  Returns
        the new artifact's digest.

        Raises :class:`ValueError` when the bytes are already the serving
        version (content addressing: same bytes = same model) and
        :class:`RuntimeError` when a rollout for the model is already
        live — one rollout per model at a time.
        """
        key = self.canonical_name(model or network.name)
        new_handle = self.store.publish_version(network, name=key)
        sends: List[WorkerEndpoint] = []
        with self._lock:
            if self._closed:
                raise RuntimeError("cluster is closed")
            old_handle = self._handles[key]
            if new_handle.digest == old_handle.digest:
                raise ValueError(
                    f"published bytes are already the serving version of "
                    f"{key!r} ({old_handle.digest[:12]}...)")
            if key in self._rollouts:
                raise RuntimeError(
                    f"a rollout for {key!r} is already live "
                    f"(phase {self._rollouts[key].controller.phase!r}); "
                    f"promote or roll it back first")
            holders = [
                w for w in self._workers.values()
                if w.ready and not w.stopping
                and (w.models is None or key in w.models)
            ]
            controller = RolloutController(
                key, old_handle.digest, new_handle.digest,
                [w.worker_id for w in holders],
                config=rollout, clock=time.monotonic,
            )
            self._rollouts[key] = _Rollout(
                controller=controller, old_handle=old_handle,
                new_handle=new_handle,
            )
            sends = [w.endpoint for w in holders]
        frame = ("prepare", [(new_handle.model, new_handle.digest,
                              new_handle.nbytes, new_handle.shm_name)])
        for endpoint in sends:
            try:
                endpoint.send(frame)
            except (TransportClosed, ValueError, OSError):
                pass  # dying link: its death handler discounts the worker
        self._rollout_tick()  # a holder-less publish finalizes immediately
        return new_handle.digest

    def promote(self, model: str) -> None:
        """Manually promote a canarying rollout (``auto_promote=False``
        flows, or an operator overriding the sample quota)."""
        key = self.canonical_name(model)
        sends: List[WorkerEndpoint] = []
        with self._lock:
            live = self._rollouts.get(key)
            if live is None:
                raise KeyError(f"no live rollout for {model!r}")
            pending = live.controller.begin_promote()
            frame = ("commit", key, live.controller.new_digest)
            for wid in pending:
                worker = self._workers.get(wid)
                if worker is not None:
                    sends.append(worker.endpoint)
        for endpoint in sends:
            try:
                endpoint.send(frame)
            except (TransportClosed, ValueError, OSError):
                pass
        self._rollout_tick()

    def rollback(self, model: str,
                 reason: str = "operator request") -> None:
        """Abort a live rollout: the stable digest keeps (or resumes)
        serving everywhere and the new version is detached fleet-wide.

        Works from any live phase — including mid-promote, where workers
        that already flipped are flipped back (the old version stayed
        resident on every worker precisely for this).  Raises
        :class:`KeyError` when no rollout for the model is live, and
        :class:`RuntimeError` once the rollout committed (roll *forward*
        by publishing the previous artifact again).
        """
        key = self.canonical_name(model)
        with self._lock:
            live = self._rollouts.get(key)
            if live is None:
                raise KeyError(f"no live rollout for {model!r}")
            if live.controller.phase == "committed":
                raise RuntimeError(
                    f"rollout of {key!r} already committed; publish the "
                    f"previous artifact to roll forward instead")
            live.controller.force_rollback(reason)
        self._rollout_tick()

    def rollout_status(self, model: Optional[str] = None) -> List[dict]:
        """Status snapshots of rollouts, live first, then finished ones
        in completion order (see :meth:`RolloutController.status`)."""
        key = None if model is None else self.canonical_name(model)
        with self._lock:
            controllers = [r.controller for r in self._rollouts.values()
                           if r.controller not in self._rollout_history]
            controllers += self._rollout_history
        return [c.status() for c in controllers
                if key is None or c.model == key]

    def rollout_timeline(self, model: str) -> List[dict]:
        """Event timeline of the newest rollout of ``model`` (JSON-stable
        records, see :meth:`RolloutController.timeline`); ``[]`` when the
        model has never been rolled out."""
        key = self.canonical_name(model)
        with self._lock:
            live = self._rollouts.get(key)
            if live is not None:
                return live.controller.timeline()
            for controller in reversed(self._rollout_history):
                if controller.model == key:
                    return controller.timeline()
        return []

    def _record_comparison(self, model: str, new_digest: str, match: bool,
                           stable_latency_s: float,
                           canary_latency_s: float) -> None:
        """One (stable, canary) answer pair resolved — feed the sample."""
        with self._lock:
            live = self._rollouts.get(model)
            if live is None or live.controller.new_digest != new_digest:
                return  # the rollout this probe belonged to is gone
            live.controller.record_comparison(match, stable_latency_s,
                                              canary_latency_s)
        self._rollout_tick()

    def _maybe_probe(self, key: str, image: np.ndarray,
                     primary_future: Future) -> None:
        """Mirror a canary fraction of live traffic to the new digest.

        The probe is admitted only against workers that *declared* the
        new digest, without force and without shed accounting — a
        saturated fleet silently skips the sample rather than inflating
        shed counters or stealing client capacity.  The client's answer
        always comes from the stable dispatch.
        """
        with self._lock:
            live = self._rollouts.get(key)
            if live is None:
                return
            controller = live.controller
            if controller.phase != "canary" or not controller.should_probe():
                return
            new_digest = controller.new_digest
            worker_id = self.router.acquire(key, record_shed=False,
                                            digest=new_digest)
            if worker_id is None or worker_id not in self._workers:
                if worker_id is not None:
                    self.router.release(worker_id)
                return  # no declared holder has room: skip the sample
            now = time.perf_counter()
            rid = self._next_rid
            self._next_rid += 1
            future: Future = Future()
            future.set_running_or_notify_cancel()
            worker = self._workers[worker_id]
            self._pending[rid] = _Pending(
                future=future, model=key, image=image, worker=worker_id,
                submitted_at=now, deadline=now + self._stale_grace_s,
                dispatched_at=now, generation=worker.generation,
                digest=new_digest, probe=True,
            )
            endpoint = worker.endpoint
        comparison = _CanaryComparison(self, key, new_digest)
        comparison.watch("stable", primary_future)
        comparison.watch("canary", future)
        try:
            endpoint.send(("reqs", [(rid, key, image, new_digest)]))
        except (TransportClosed, ValueError, OSError):
            pass  # dying link: the death handler drops the probe

    def _rollout_tick(self) -> None:
        """Drive every live rollout one decision step.

        Runs on the monitor cadence (and inline after every rollout
        event): asks each controller to decide, executes promote
        decisions (commit fan-out), finalizes terminal phases — flipping
        the front end's serving handle on commit, flipping back
        partially-committed workers on rollback — and performs the
        deferred detach of the losing version once no in-flight request
        is tagged with it.  All controller access is under the cluster
        lock; endpoint sends happen outside it.
        """
        sends: List[Tuple[WorkerEndpoint, tuple]] = []
        with self._lock:
            if self._closed:
                return
            for key in list(self._rollouts):
                live = self._rollouts[key]
                controller = live.controller
                if not controller.done:
                    action = controller.decide()
                    if action == "promote":
                        frame = ("commit", key, controller.new_digest)
                        for wid in controller.begin_promote():
                            worker = self._workers.get(wid)
                            if worker is not None:
                                sends.append((worker.endpoint, frame))
                if controller.phase == "committed" and not live.finalized:
                    # The fleet flipped: flip the front end too.  From
                    # here every new admission is tagged (and cached)
                    # under the new digest; the old version is detached
                    # below once the last old-tagged request drains.
                    self.store.activate(key, controller.new_digest)
                    self._handles = self.store.handles()
                    live.finalized = True
                    live.retiring = True
                    self._rollout_history.append(controller)
                elif controller.phase == "rolled_back" and not live.finalized:
                    live.finalized = True
                    info = controller.status()
                    # Flip back any worker that already committed *before*
                    # detaching the new version — the channel is FIFO, so
                    # the flip-back always lands first.
                    flip_back = ("commit", key, controller.old_digest)
                    detach = ("detach", [(key, controller.new_digest)])
                    for wid in info["committed"]:
                        worker = self._workers.get(wid)
                        if worker is not None:
                            sends.append((worker.endpoint, flip_back))
                    # Every worker that was *asked* to prepare gets the
                    # detach — including ones whose prepare is still in
                    # flight (FIFO: their prepare lands first, then the
                    # detach drops it; a never-staged version detaches as
                    # a no-op).
                    staged = (set(info["pending_prepare"])
                              | set(info["prepared"])
                              | set(info["committed"]))
                    for wid in sorted(staged):
                        self.router.revoke_digest(wid, key,
                                                  controller.new_digest)
                        worker = self._workers.get(wid)
                        if worker is not None:
                            sends.append((worker.endpoint, detach))
                    try:
                        self.store.retire_version(controller.new_digest)
                    except ValueError:  # pragma: no cover - defensive
                        pass
                    self._rollout_history.append(controller)
                    del self._rollouts[key]
                    continue
                if live.retiring:
                    old_digest = controller.old_digest
                    in_flight = any(
                        entry.model == key and entry.digest == old_digest
                        for entry in self._pending.values()
                    )
                    if in_flight:
                        continue  # old-tagged work still draining
                    detach = ("detach", [(key, old_digest)])
                    for worker in self._workers.values():
                        if worker.stopping or not worker.ready:
                            continue
                        if (worker.models is not None
                                and key not in worker.models):
                            continue
                        self.router.revoke_digest(worker.worker_id, key,
                                                  old_digest)
                        sends.append((worker.endpoint, detach))
                    try:
                        self.store.retire_version(old_digest)
                    except ValueError:  # pragma: no cover - defensive
                        pass
                    del self._rollouts[key]
        for endpoint, frame in sends:
            try:
                endpoint.send(frame)
            except (TransportClosed, ValueError, OSError):
                pass  # dying link: its death handler owns the cleanup

    # ------------------------------------------------------------- reporting
    def worker_reports(self, timeout: float = 10.0) -> Dict[str, Dict[str, ServiceReport]]:
        """Poll every ready worker for its per-model ``ServiceReport`` s."""
        with self._lock:
            self._report_gen += 1
            generation = self._report_gen
            candidates = [w for w in self._workers.values()
                          if w.ready and not w.stopping]
            targets = []
            for worker in candidates:
                try:
                    worker.endpoint.send(("report", generation))
                except (TransportClosed, ValueError, OSError):  # pragma: no cover
                    continue  # dying worker: a reply can never come
                targets.append(worker)
        deadline = time.perf_counter() + timeout
        collected: Dict[str, Dict[str, ServiceReport]] = {}
        with self._lock:
            while len(collected) < len(targets):
                for worker in targets:
                    key = (worker.worker_id, generation)
                    if key in self._report_inbox:
                        collected[worker.worker_id] = self._report_inbox.pop(key)
                if len(collected) >= len(targets):
                    break
                remaining = deadline - time.perf_counter()
                if remaining <= 0:
                    break
                self._report_arrived.wait(timeout=min(0.05, remaining))
        return collected

    def report(self, model: str,
               worker_reports: Optional[Dict[str, Dict[str, ServiceReport]]] = None
               ) -> ServiceReport:
        """Aggregated cluster-wide report for one model.

        Shape-compatible with the single-process
        :meth:`InferenceService.report`: latency figures are the front
        end's end-to-end measurements (queueing + IPC + worker service
        time), scheduler/cache counters are summed across workers.
        ``worker_reports`` lets a caller that already polled the workers
        (:meth:`cluster_report`) reuse one IPC round trip for every model.
        """
        key = self.canonical_name(model)
        reports = (self.worker_reports() if worker_reports is None
                   else worker_reports)
        per_worker = [wr[key] for wr in reports.values() if key in wr]
        with self._lock:
            traffic = self._traffic.get(key)
            if traffic is None:
                raise KeyError(f"model {model!r} has not served any requests")
            first, last = traffic.first_submit, traffic.last_done
            requests = traffic.requests
            latency = traffic.latencies.summary()
            front_hits = traffic.cache_hits
            front_misses = traffic.cache_misses
        duration = (last - first) if (first is not None and last is not None) else 0.0
        device = per_worker[0].device if per_worker else "cluster"
        return ServiceReport(
            model=key,
            device=f"{device} ×{len(reports)} workers",
            duration_s=max(0.0, duration),
            requests=requests,
            # Front-end (cluster-wide) cache counters plus whatever the
            # workers saw — workers run cache-less by default, so the
            # front-end numbers *are* the cluster's hit rate.
            cache_hits=front_hits + sum(r.cache_hits for r in per_worker),
            cache_misses=front_misses + sum(r.cache_misses
                                            for r in per_worker),
            latency=latency,
            scheduler=_merge_scheduler_stats([r.scheduler for r in per_worker]),
            cache=None,
        )

    def cluster_report(self) -> ClusterReport:
        """Full cluster view: per-worker reports plus aggregates.

        Polls the workers once and reuses that snapshot for every model's
        aggregation, so the cost is one IPC round trip regardless of how
        many models are published.
        """
        reports = self.worker_reports()
        models = tuple(self._handles)
        aggregated = {}
        for model in models:
            with self._lock:
                served = model in self._traffic
            if served:
                aggregated[model] = self.report(model, worker_reports=reports)
        with self._lock:
            attach_values = [ms for w in self._workers.values()
                             for ms in w.attach_ms.values()]
            shed = sum(t.shed for t in self._traffic.values())
            workers = len(self._workers)
            respawns = self._respawns
            requeued = self._requeued
            deadline_expired = self._deadline_expired
            retries = self._retries
            hedges = self._hedges
        router_stats = self.router.stats()
        return ClusterReport(
            workers=workers,
            models=models,
            worker_reports=reports,
            aggregated=aggregated,
            router=router_stats,
            respawns=respawns,
            requeued=requeued,
            shed=shed,
            attach_ms_mean=(sum(attach_values) / len(attach_values))
            if attach_values else 0.0,
            store_bytes=self.store.total_bytes(),
            deadline_expired=deadline_expired,
            retries=retries,
            hedges=hedges,
            quarantined=router_stats.quarantined,
        )

    # ------------------------------------------------------------- baseline
    def baseline_service(self, **service_kwargs):
        """Single-process :class:`InferenceService` over the same artifacts.

        Attaches the published models locally (zero-copy, same bytes the
        workers serve), which is what makes cluster-vs-single-process
        output comparisons bit-identical rather than merely close.  The
        caller owns the returned service (and should ``close()`` it).
        """
        from repro.serving.pool import ModelPool
        from repro.serving.service import InferenceService

        pool = ModelPool()
        self._baseline_attachments = []
        for model, handle in self._handles.items():
            attached = attach_model(handle)
            self._baseline_attachments.append(attached)
            pool.register(attached.network, name=model, warm=True)
        service_kwargs.setdefault("max_batch_size", self.config.max_batch_size)
        service_kwargs.setdefault("max_wait_ms", self.config.max_wait_ms)
        service_kwargs.setdefault("cache_capacity", self._cache_capacity)
        service_kwargs.setdefault("chunk_bytes", self.config.chunk_bytes)
        return InferenceService(pool=pool, **service_kwargs)


# ---------------------------------------------------------------------------
# scaling sweep (shared by the CLI and benchmarks/bench_cluster_scaling.py)
# ---------------------------------------------------------------------------

def scaling_table(records: Sequence[dict], title: Optional[str] = None) -> str:
    """Render :func:`scaling_sweep` records as an aligned table.

    Single rendering path shared by ``repro.cli serve-bench --workers N``
    and ``benchmarks/bench_cluster_scaling.py`` (same discipline as
    :func:`repro.serving.loadgen.sweep_table`).
    """
    from repro.analysis.reporting import format_table

    return format_table(
        ["workers", "batch", "req/s", "1-proc req/s", "speedup",
         "p50 (ms)", "p99 (ms)", "attach (ms)"],
        [
            [r["workers"], r["batch"], r["req_per_s"],
             r["single_process_rps"],
             f"{r['speedup_vs_single_process']:.2f}x",
             r["latency_p50_ms"], r["latency_p99_ms"],
             r["shm_attach_ms_mean"]]
            for r in records
        ],
        title=title,
    )

def scaling_sweep(
    model: str = "MicroCNN",
    worker_counts: Sequence[int] = (1, 2, 4, 8),
    offered_batch: int = 64,
    requests: int = 256,
    max_wait_ms: float = 2.0,
    seed: int = 0,
    mp_context=None,
    worker_threads: Optional[int] = 1,
    chunk_bytes: Optional[int] = None,
    transport: str = "pipe",
    bind: Optional[str] = None,
    expect_workers: int = 0,
    worker_backend: str = "auto",
) -> List[dict]:
    """Closed-loop cluster throughput vs the single-process service.

    ``worker_backend`` selects the kernel backend both the baseline and
    every worker warm with (``auto``/``numpy``/``cffi``/``numba``), so
    the comparison stays apples-to-apples; the spec is recorded per sweep
    point.

    ``transport`` selects the worker wire (``pipe`` / ``uds`` / ``tcp``;
    see :mod:`repro.serving.transport`) and is recorded on every sweep
    point, so one BENCH file can compare transports at equal worker
    counts.  ``expect_workers`` waits for externally launched
    ``cluster-worker`` processes on top of the locally spawned ones.

    Publishes ``model`` once into shared memory, measures a single-process
    :class:`InferenceService` over the attached artifact as the baseline,
    then sweeps the worker counts.  Every sweep point's outputs are checked
    bit-identical against the baseline before anything is recorded — both
    sides serve the same published bytes, so equality is exact.

    Warm-up (weight packing, plan compilation, NumPy internals) runs
    through ``engine.run_batch`` on the attached artifact *before* any
    measured service exists, so the recorded throughput and latency
    percentiles cover exactly the measured requests — the same discipline
    as :func:`repro.serving.loadgen.throughput_sweep`.  Cluster workers
    warm themselves at attach time (``ModelPool.register(warm=True)``);
    their residual first-batch cost is part of every sweep point equally.
    """
    from repro.serving.loadgen import run_closed_loop, synthetic_images

    if expect_workers > 0 and len(tuple(worker_counts)) > 1:
        # close() gracefully stops external workers, so only one sweep
        # point can ever see them — the second would hang at startup
        # waiting for registrations that cannot come.
        raise ValueError(
            "expect_workers supports a single worker_counts entry: external "
            "workers exit when the first sweep point's cluster closes"
        )
    store = SharedModelStore()
    try:
        handles = store.publish_models([model], rng=0)
        key = next(iter(handles))
        attached = attach_model(handles[key])
        images = synthetic_images(attached.network.input_shape, requests,
                                  seed=seed)

        from repro.core.engine import PhoneBitEngine
        from repro.serving.pool import ModelPool
        from repro.serving.service import InferenceService

        # One warm pass outside all timings and outside the measured
        # services, so their request counters and latency windows stay
        # exactly the measured run.
        warm_engine = PhoneBitEngine(num_threads=worker_threads,
                                     backend=worker_backend)
        warm_engine.run_batch(attached.network, images[:2],
                              collect_estimate=False, chunk_bytes=chunk_bytes)

        pool = ModelPool(backend=worker_backend)
        pool.register(attached.network, name=key, warm=True)
        baseline = InferenceService(
            pool=pool, engine=warm_engine, max_batch_size=offered_batch,
            max_wait_ms=max_wait_ms, cache_capacity=0, chunk_bytes=chunk_bytes,
        )
        try:
            result = run_closed_loop(baseline, key, images)
        finally:
            baseline.close()
        baseline_out = result.outputs
        baseline_rps = result.achieved_rps

        records: List[dict] = []
        for workers in worker_counts:
            cluster = ClusterService(
                store=store, workers=int(workers),
                max_batch_size=offered_batch, max_wait_ms=max_wait_ms,
                cache_capacity=0, worker_threads=worker_threads,
                worker_backend=worker_backend,
                chunk_bytes=chunk_bytes, mp_context=mp_context,
                transport=transport, bind=bind,
                expect_workers=expect_workers,
            )
            try:
                run = run_closed_loop(cluster, key, images)
                cluster_detail = cluster.cluster_report()
            finally:
                cluster.close()
            if not np.array_equal(run.outputs, baseline_out):
                raise AssertionError(
                    f"cluster outputs diverged from the single-process "
                    f"service at {workers} workers over {transport}"
                )
            report = run.report
            records.append({
                "op": "cluster_scaling",
                "model": key,
                "transport": transport,
                "backend": worker_backend,
                "workers": cluster_detail.workers,
                "batch": int(offered_batch),
                "shape": list(attached.network.input_shape),
                "requests": int(images.shape[0]),
                "req_per_s": run.achieved_rps,
                "requests_per_s": run.achieved_rps,
                "single_process_rps": baseline_rps,
                "speedup_vs_single_process": (
                    run.achieved_rps / baseline_rps if baseline_rps else float("inf")
                ),
                "latency_p50_ms": report.latency.p50_ms,
                "latency_p99_ms": report.latency.p99_ms,
                "mean_batch_size": report.scheduler.mean_batch_size,
                "shm_attach_ms_mean": cluster_detail.attach_ms_mean,
                "store_bytes": cluster_detail.store_bytes,
                "host_cpus": usable_cpus(),
                "bit_identical": True,
            })
        return records
    finally:
        store.close()


def open_loop_sweep(
    model: str = "MicroCNN",
    workers: int = 2,
    offered_batch: int = 32,
    requests: int = 256,
    overload_x: Sequence[float] = (0.5, 1.5, 3.0),
    max_wait_ms: float = 2.0,
    seed: int = 0,
    mp_context=None,
    worker_threads: Optional[int] = 1,
    transport: str = "pipe",
    bind: Optional[str] = None,
    expect_workers: int = 0,
    max_outstanding: Optional[int] = None,
    worker_backend: str = "auto",
) -> List[dict]:
    """Open-loop overload trajectory: shed / retry-after vs offered load.

    ``max_outstanding`` is the **cluster-wide** admission budget for this
    sweep (default: ``offered_batch``), divided across the workers —
    deliberately tighter than the serving default of ``2 × offered_batch``
    *per worker* — so the overload regime actually sheds within a bounded
    request budget instead of parking the whole benchmark inside the
    admission window.

    The closed-loop sweep (:func:`scaling_sweep`) measures peak sustainable
    throughput — it can never observe a shed, because backpressure stalls
    the submitter instead.  This sweep measures what *overload* looks like:
    a fresh cluster is first driven closed-loop to calibrate its capacity,
    then non-blocking Poisson arrivals are offered at each
    ``overload_x`` multiple of that capacity
    (:func:`repro.serving.loadgen.run_open_loop_shedding`).  Each record
    captures the admitted/shed split, the shed rate, the mean suggested
    retry-after and the completed requests' latency percentiles.

    Every completed response is verified bit-identical to the engine's
    direct ``run_batch`` rows over the same published artifact — overload
    must never buy throughput with a correctness drift.
    """
    from repro.core.engine import PhoneBitEngine
    from repro.serving.loadgen import (
        run_closed_loop,
        run_open_loop_shedding,
        synthetic_images,
    )

    if expect_workers > 0:
        # The sweep builds several sequential clusters (calibration + one
        # per overload multiple) and close() gracefully stops external
        # workers, so the second cluster could never reach its startup
        # target — fail fast instead of hanging for startup_timeout_s.
        raise ValueError(
            "open_loop_sweep cannot use expect_workers: it builds multiple "
            "sequential clusters and external workers exit on the first "
            "close(); use router-spawned workers (workers=N) instead"
        )
    store = SharedModelStore()
    try:
        handles = store.publish_models([model], rng=0)
        key = next(iter(handles))
        attached = attach_model(handles[key])
        images = synthetic_images(attached.network.input_shape, requests,
                                  seed=seed)
        engine = PhoneBitEngine(num_threads=worker_threads,
                                backend=worker_backend)
        baseline_rows = engine.run_batch(
            attached.network, images, collect_estimate=False
        ).output.data

        budget = offered_batch if max_outstanding is None else max_outstanding
        window = max(2, budget // max(1, workers))

        def make_cluster() -> ClusterService:
            return ClusterService(
                store=store, workers=workers,
                max_batch_size=offered_batch, max_wait_ms=max_wait_ms,
                cache_capacity=0, worker_threads=worker_threads,
                worker_backend=worker_backend,
                mp_context=mp_context, transport=transport, bind=bind,
                expect_workers=expect_workers, max_outstanding=window,
            )

        # Calibrate: closed-loop capacity of this cluster configuration on
        # this host, so the overload multiples mean the same thing on a
        # laptop and a CI runner.
        cluster = make_cluster()
        try:
            capacity_rps = run_closed_loop(cluster, key, images).achieved_rps
        finally:
            cluster.close()

        records: List[dict] = []
        for multiple in overload_x:
            offered_rps = max(1.0, capacity_rps * float(multiple))
            cluster = make_cluster()
            try:
                run = run_open_loop_shedding(cluster, key, images,
                                             offered_rps=offered_rps,
                                             seed=seed)
                cluster_detail = cluster.cluster_report()
            finally:
                cluster.close()
            for index, row in run.outputs.items():
                if not np.array_equal(row, baseline_rows[index]):
                    raise AssertionError(
                        f"open-loop output {index} diverged from run_batch "
                        f"at {multiple}x capacity over {transport}"
                    )
            latency = run.report.latency if run.report is not None else None
            records.append({
                "op": "cluster_open_loop",
                "model": key,
                "transport": transport,
                "backend": worker_backend,
                "workers": cluster_detail.workers,
                "batch": int(offered_batch),
                "shape": list(attached.network.input_shape),
                "requests": int(images.shape[0]),
                "offered_rps": offered_rps,
                "offered_x_capacity": float(multiple),
                "capacity_rps": capacity_rps,
                "admission_budget": budget,
                "per_worker_window": window,
                "req_per_s": run.achieved_rps,
                "requests_per_s": run.achieved_rps,
                "completed": run.completed,
                "shed": run.shed,
                "shed_rate": run.shed_rate,
                "retry_after_ms_mean": run.retry_after_ms_mean,
                "latency_p50_ms": latency.p50_ms if latency else 0.0,
                "latency_p99_ms": latency.p99_ms if latency else 0.0,
                "host_cpus": usable_cpus(),
                "bit_identical": True,
            })
        return records
    finally:
        store.close()


def open_loop_table(records: Sequence[dict], title: Optional[str] = None) -> str:
    """Render :func:`open_loop_sweep` records as an aligned table."""
    from repro.analysis.reporting import format_table

    return format_table(
        ["transport", "offered ×cap", "offered rps", "done rps", "shed %",
         "retry-after (ms)", "p50 (ms)", "p99 (ms)"],
        [
            [r["transport"], f"{r['offered_x_capacity']:.1f}x",
             r["offered_rps"], r["req_per_s"],
             f"{100.0 * r['shed_rate']:.1f}", r["retry_after_ms_mean"],
             r["latency_p50_ms"], r["latency_p99_ms"]]
            for r in records
        ],
        title=title,
    )
