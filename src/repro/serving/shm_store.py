"""Shared-memory model store: serialize packed weights once, attach N times.

A cluster of worker processes must not hold N private copies of the model
zoo.  :class:`SharedModelStore` serializes each network **once** into a
``multiprocessing.shared_memory`` segment using the ``.pbit`` format
(:mod:`repro.core.model_format`), and every worker attaches with
:func:`attach_model`, which maps the segment and rebuilds the network with
``zero_copy=True`` — the packed filter banks and dense weight matrices end
up as read-only NumPy views straight into the shared pages.  No worker
unpacks, repacks or copies the bulk weights; the only per-worker costs are
the small per-channel vectors and the plan compilation at warm time.

Ownership and cleanup discipline:

* The **owner** (the process that published) unlinks every segment in
  :meth:`SharedModelStore.close`; a ``weakref.finalize`` hook makes a
  best-effort cleanup on interpreter exit, and the stdlib resource tracker
  reclaims the segments even if the owner is SIGKILLed.
* **Attachers** never unlink.  Python < 3.13 registers every attached
  segment with the resource tracker, whose exit-time cleanup would destroy
  the owner's segment the moment *one worker* dies — exactly wrong for a
  cluster that respawns crashed workers.  :func:`attach_model` therefore
  suppresses the attach-side registration, which is what keeps a worker
  crash from tearing the model store out from under the survivors (pinned
  by ``tests/test_cluster.py``).

Note the ``.pbit`` round trip stores thresholds in float32, so an attached
network is bit-identical to *any other load of the same published bytes* —
the invariant the cluster relies on — but only approximately equal
(``allclose``-level) to the float64 in-memory network it was serialized
from.  Cluster-vs-single-process comparisons must therefore serve the same
published artifact on both sides.

Cross-host serving (:mod:`repro.serving.transport`) extends the same idea:
every published artifact is identified by the SHA-256 **digest** of its
``.pbit`` bytes (``ShmModelHandle.digest``), and remote workers keep a
:class:`HostModelCache` — shared-memory segments *named by digest* — so a
host fetches each artifact's bytes over the transport at most once, and
every worker on that host attaches the cached segment zero-copy exactly
like a local worker attaches the owner's segment.
"""

from __future__ import annotations

import contextlib
import hashlib
import threading
import time
import weakref
from dataclasses import dataclass, field
from multiprocessing import resource_tracker, shared_memory
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Tuple

from repro.core.model_format import load_network_from_buffer, serialize_network
from repro.core.network import Network

__all__ = [
    "AttachedModel",
    "HostModelCache",
    "SharedModelStore",
    "ShmModelHandle",
    "artifact_digest",
    "attach_model",
]

_ATTACH_LOCK = threading.Lock()


class _QuietSharedMemory(shared_memory.SharedMemory):
    """``SharedMemory`` whose close tolerates still-exported buffer views.

    The zero-copy design makes "NumPy views alive at close time" a normal
    state, not a bug: a network's packed weights are views into the
    mapping, and interpreter shutdown tears objects down in arbitrary
    order.  The stdlib ``close()`` raises ``BufferError`` then (loudly, in
    ``__del__``); here the mapping simply stays open until process exit,
    when the OS reclaims it anyway.
    """

    def close(self) -> None:
        try:
            super().close()
        except BufferError:
            pass


@contextlib.contextmanager
def _untracked_attach() -> Iterator[None]:
    """Suppress resource-tracker registration while attaching a segment.

    Python < 3.13 registers shared memory with the resource tracker on
    *attach*, not just on create.  A spawned worker runs its own tracker,
    which unlinks everything it registered when the worker exits — so the
    first worker death would destroy the store for every survivor.
    Unregistering after the fact is no better: forked workers share the
    owner's tracker, and the unregister would strip the owner's own
    leak-protection entry.  Suppressing the registration only for the
    attach call leaves exactly one tracked owner.
    """
    with _ATTACH_LOCK:
        original = resource_tracker.register

        def _register(name: str, rtype: str) -> None:  # pragma: no cover
            if rtype != "shared_memory":
                original(name, rtype)

        resource_tracker.register = _register
        try:
            yield
        finally:
            resource_tracker.register = original


def artifact_digest(raw) -> str:
    """SHA-256 hex digest of a published ``.pbit`` payload.

    The digest is the artifact's *identity* across hosts: two stores that
    publish bit-identical bytes produce the same digest, which is what lets
    a remote worker answer "do I already hold this model?" without trusting
    host-local segment names.

    Parameters
    ----------
    raw : bytes-like
        The exact serialized payload (``serialize_network`` output).

    Returns
    -------
    str
        64-character lowercase hex digest.

    Examples
    --------
    >>> artifact_digest(b"phonebit")  # doctest: +ELLIPSIS
    '9b978838ffc4ed...'
    >>> artifact_digest(memoryview(b"phonebit")) == artifact_digest(b"phonebit")
    True
    """
    return hashlib.sha256(raw).hexdigest()


@dataclass(frozen=True)
class ShmModelHandle:
    """Picklable descriptor of one published model.

    Everything a worker process needs to attach: the canonical model name,
    the shared-memory segment name, the exact payload length (the OS may
    round the segment itself up to a page multiple) and the SHA-256 digest
    of the payload bytes — the artifact's cross-host identity
    (:func:`artifact_digest`).
    """

    model: str
    shm_name: str
    nbytes: int
    digest: str = ""


@dataclass
class AttachedModel:
    """A network mapped zero-copy from a shared-memory segment.

    Keeps the :class:`~multiprocessing.shared_memory.SharedMemory` object
    referenced — the network's packed weights are views into its buffer, so
    the mapping must outlive the network.  ``close()`` only detaches this
    process's mapping; it never unlinks the owner's segment.
    """

    network: Network
    handle: ShmModelHandle
    attach_ms: float
    shm: shared_memory.SharedMemory = field(repr=False)

    def close(self) -> None:
        """Detach the local mapping (call only once the network is dead)."""
        # NumPy views exported from shm.buf must be gone first, otherwise
        # the mmap refuses to close; dropping the network is the caller's
        # job, hence "only once the network is dead".
        self.network = None  # type: ignore[assignment]
        try:
            self.shm.close()
        except BufferError:  # pragma: no cover - live views still exported
            pass


def attach_model(handle: ShmModelHandle) -> AttachedModel:
    """Attach to a published model, zero-copy.

    Maps the segment named by ``handle`` and deserializes with
    ``zero_copy=True``: packed binary weights are read-only views into the
    shared pages — no unpack, no copy.  The returned
    :class:`AttachedModel` records the wall-clock attach time
    (``attach_ms``), which the cluster benchmark reports.

    Raises
    ------
    FileNotFoundError
        If the owner has already unlinked the segment (store closed).
    """
    t0 = time.perf_counter()
    with _untracked_attach():
        shm = _QuietSharedMemory(name=handle.shm_name, create=False)
    try:
        network = load_network_from_buffer(
            shm.buf[: handle.nbytes], zero_copy=True
        )
    except Exception:
        shm.close()
        raise
    attach_ms = (time.perf_counter() - t0) * 1000.0
    return AttachedModel(network=network, handle=handle, attach_ms=attach_ms,
                         shm=shm)


class SharedModelStore:
    """Owner side of the shared-memory model zoo.

    Examples
    --------
    Publish a model once, attach (here: in the same process — workers do
    exactly this after ``fork``/``spawn``) and run it zero-copy:

    >>> import numpy as np
    >>> from repro.core.model_format import (
    ...     load_network_from_buffer, serialize_network)
    >>> from repro.models.zoo import build_phonebit_network, micro_cnn_config
    >>> from repro.serving.shm_store import SharedModelStore, attach_model
    >>> network = build_phonebit_network(micro_cnn_config())
    >>> reloaded = load_network_from_buffer(serialize_network(network))
    >>> with SharedModelStore() as store:
    ...     handle = store.publish(network)
    ...     attached = attach_model(handle)
    ...     packed_is_view = not attached.network.layers[2].weights_packed.flags.owndata
    ...     image = np.zeros((1, 8, 8, 3), dtype=np.uint8)
    ...     same = np.array_equal(
    ...         attached.network(image).data, reloaded(image).data)
    ...     attached.close()
    >>> (packed_is_view, same)
    (True, True)
    """

    def __init__(self, prefix: str = "repro-model") -> None:
        self.prefix = prefix
        self._segments: Dict[str, shared_memory.SharedMemory] = {}
        self._handles: Dict[str, ShmModelHandle] = {}
        #: Every published version, active or staged, keyed by its digest:
        #: ``digest -> (segment_key, handle)``.  ``_handles`` only ever
        #: names the *active* version per model; a live rollout keeps the
        #: outgoing and incoming artifacts resident here simultaneously.
        self._by_digest: Dict[str, Tuple[str, ShmModelHandle]] = {}
        # Best-effort unlink when the owner exits without close(); SIGKILL
        # is covered by the stdlib resource tracker instead.
        self._finalizer = weakref.finalize(self, _close_segments, self._segments)

    # ------------------------------------------------------------- publish
    def _publish_raw(self, raw: bytes, key: str,
                     segment_key: str) -> ShmModelHandle:
        digest = artifact_digest(raw)
        if digest in self._by_digest:
            # Content addressing makes re-publishing the same bytes a no-op:
            # the artifact is already resident under this digest.
            return self._by_digest[digest][1]
        shm = _QuietSharedMemory(create=True, size=len(raw))
        shm.buf[: len(raw)] = raw
        self._segments[segment_key] = shm
        handle = ShmModelHandle(model=key, shm_name=shm.name, nbytes=len(raw),
                                digest=digest)
        self._by_digest[digest] = (segment_key, handle)
        return handle

    def publish(self, network: Network, name: Optional[str] = None) -> ShmModelHandle:
        """Serialize ``network`` into a fresh segment; returns its handle."""
        key = name or network.name
        if key in self._handles:
            raise ValueError(f"model {key!r} is already published")
        handle = self._publish_raw(serialize_network(network), key,
                                   segment_key=key)
        self._handles[key] = handle
        return handle

    def publish_version(self, network: Network,
                        name: Optional[str] = None) -> ShmModelHandle:
        """Publish a *new version* of an already-published model.

        Unlike :meth:`publish`, the model name may (and normally does)
        already exist: the new artifact gets its own segment and digest
        while the currently active version keeps serving — this is the
        staging half of a live rollout.  The active handle is untouched
        until :meth:`activate` flips it; :meth:`retire_version` frees
        whichever version lost.  Publishing bytes that are already
        resident (same digest) returns the existing handle.
        """
        key = name or network.name
        raw = serialize_network(network)
        return self._publish_raw(raw, key,
                                 segment_key=f"{key}@{artifact_digest(raw)[:12]}")

    def activate(self, name: str, digest: str) -> ShmModelHandle:
        """Make ``digest`` the active version served under ``name``.

        The previous active version stays resident (instant rollback is
        the point); free it explicitly with :meth:`retire_version` once
        the fleet has detached it.
        """
        entry = self._by_digest.get(digest)
        if entry is None:
            raise KeyError(f"no published version with digest {digest[:16]}...")
        _, handle = entry
        if handle.model != name:
            raise ValueError(
                f"digest {digest[:16]}... was published for model "
                f"{handle.model!r}, not {name!r}")
        self._handles[name] = handle
        return handle

    def retire_version(self, digest: str) -> None:
        """Unmap and unlink one non-active version (idempotent).

        Refuses to retire the digest a model is actively serving — commit
        or roll back first.
        """
        entry = self._by_digest.get(digest)
        if entry is None:
            return
        segment_key, handle = entry
        active = self._handles.get(handle.model)
        if active is not None and active.digest == digest:
            raise ValueError(
                f"digest {digest[:16]}... is the active version of "
                f"{handle.model!r}; activate another version before retiring")
        del self._by_digest[digest]
        shm = self._segments.pop(segment_key, None)
        if shm is not None:
            shm.close()
            with contextlib.suppress(FileNotFoundError):
                shm.unlink()

    def version_handles(self, name: str) -> Dict[str, ShmModelHandle]:
        """All resident versions of ``name``, keyed by digest."""
        return {digest: handle
                for digest, (_, handle) in self._by_digest.items()
                if handle.model == name}

    def publish_models(self, models: Iterable[str], rng: int = 0,
                       word_size: int = 64) -> Dict[str, ShmModelHandle]:
        """Build zoo models by name and publish each (serving-zoo lookup)."""
        from repro.models.zoo import build_phonebit_network, get_serving_config

        handles = {}
        for model in models:
            config = get_serving_config(model)
            network = build_phonebit_network(config, rng=rng, word_size=word_size)
            handles[config.name] = self.publish(network, name=config.name)
        return handles

    # ------------------------------------------------------------- lookup
    def handles(self) -> Dict[str, ShmModelHandle]:
        """Snapshot of every published handle, keyed by model name."""
        return dict(self._handles)

    def __contains__(self, name: str) -> bool:
        return name in self._handles

    def total_bytes(self) -> int:
        """Sum of published payload bytes across all models."""
        return sum(handle.nbytes for handle in self._handles.values())

    def payload_view(self, digest: str) -> memoryview:
        """Zero-copy view of one published payload, looked up by digest.

        This is the router side of the cross-host model fetch: when a
        remote worker asks for an artifact it does not hold, the bytes are
        streamed straight out of the owner's segment — no intermediate
        copy.  The caller must not outlive the store.

        Raises
        ------
        KeyError
            If no published model carries ``digest``.
        """
        entry = self._by_digest.get(digest)
        if entry is not None:
            segment_key, handle = entry
            return memoryview(self._segments[segment_key].buf)[: handle.nbytes]
        raise KeyError(f"no published model with digest {digest[:16]}...")

    # ------------------------------------------------------------- lifecycle
    def close(self) -> None:
        """Unmap and unlink every published segment (idempotent)."""
        _close_segments(self._segments)
        self._handles.clear()
        self._by_digest.clear()
        self._finalizer.detach()

    def __enter__(self) -> "SharedModelStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def _close_segments(segments: Dict[str, shared_memory.SharedMemory]) -> None:
    """Unmap + unlink helper shared by close() and the GC finalizer."""
    while segments:
        _, shm = segments.popitem()
        try:
            shm.close()
        except Exception:  # pragma: no cover - defensive
            pass
        try:
            shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already reclaimed
            pass


# ---------------------------------------------------------------------------
# per-host digest-keyed cache (cross-host serving)
# ---------------------------------------------------------------------------

#: Digest-derived segment names make the cache host-global: every worker on
#: a host computes the same name from the same artifact digest.
CACHE_SEGMENT_PREFIX = "repro-mcache-"


def cache_segment_name(digest: str) -> str:
    """Deterministic per-host segment name for one artifact digest.

    Examples
    --------
    >>> cache_segment_name("ab" * 32)
    'repro-mcache-abababababababababababab'
    """
    if not digest:
        raise ValueError("artifact digest is required for the host cache")
    return CACHE_SEGMENT_PREFIX + digest[:24]


class HostModelCache:
    """Per-host cache of published artifacts, keyed by payload digest.

    A remote worker cannot attach the router's shared-memory segment — it
    lives on another host.  Instead each host keeps digest-named segments
    (:func:`cache_segment_name`): the **first** worker on a host to need an
    artifact fetches its ``.pbit`` bytes over the transport, publishes them
    locally under the digest-derived name, and every later worker on that
    host attaches the cached segment zero-copy — the fetch happens once per
    host, not once per worker.

    Cache segments carry one trailing *ready* byte after the payload so a
    concurrent attacher never maps a half-written artifact: the publisher
    flips it only after the payload is fully copied, and an attacher that
    times out waiting for it (publisher crashed mid-write) reclaims the
    segment and re-fetches.

    The worker that *created* a cache segment unlinks it on
    :meth:`close` / interpreter exit; co-hosted workers that merely
    attached keep their existing mappings alive (Linux unlink semantics)
    and later workers simply re-fetch.

    Examples
    --------
    Same-host fast path — the handle's own segment is attached directly
    (digest-verified) and no fetch ever happens:

    >>> import numpy as np
    >>> from repro.models.zoo import build_phonebit_network, micro_cnn_config
    >>> from repro.serving.shm_store import HostModelCache, SharedModelStore
    >>> with SharedModelStore() as store:
    ...     handle = store.publish(build_phonebit_network(micro_cnn_config()))
    ...     cache = HostModelCache()
    ...     attached = cache.attach(handle, fetch=None)  # no fetch needed
    ...     name, is_view = (attached.network.name,
    ...                      not attached.network.layers[2].weights_packed.flags.owndata)
    ...     attached.close()
    ...     cache.close()
    >>> (name, is_view)
    ('MicroCNN', True)
    """

    def __init__(self, ready_timeout_s: float = 10.0) -> None:
        self.ready_timeout_s = ready_timeout_s
        self._segments: Dict[str, shared_memory.SharedMemory] = {}
        self._finalizer = weakref.finalize(self, _close_segments, self._segments)
        #: (digest, source) pairs, in attach order — benchmarks and tests
        #: read this to prove the fetch-once-per-host property.
        self.attach_log: List[Tuple[str, str]] = []

    # ------------------------------------------------------------- attach
    def attach(self, handle: ShmModelHandle,
               fetch: Optional[Callable[[], bytes]] = None) -> AttachedModel:
        """Attach ``handle``'s artifact from the fastest local source.

        Resolution order:

        1. **host cache** — a digest-named segment published by any worker
           on this host;
        2. **owner segment** — ``handle.shm_name`` directly (only succeeds
           when the router is co-hosted), verified against the digest;
        3. **fetch** — call ``fetch()`` for the payload bytes (the remote
           path: one transport round trip), verify the digest, publish the
           digest-named cache segment for co-hosted workers, attach it.

        Returns an :class:`AttachedModel` exactly like :func:`attach_model`.

        Raises
        ------
        FileNotFoundError
            When no local source exists and ``fetch`` is ``None``.
        ValueError
            When fetched bytes do not hash to ``handle.digest``.
        """
        cache_name = cache_segment_name(handle.digest)
        for _ in range(3):  # create/attach races resolve within a retry or two
            attached = self._attach_ready(handle, cache_name)
            if attached is not None:
                return attached
            attached = self._attach_owner(handle)
            if attached is not None:
                return attached
            if fetch is None:
                raise FileNotFoundError(
                    f"artifact {handle.digest[:16]}... is not cached on this "
                    f"host and no fetch path was provided"
                )
            attached = self._fetch_and_publish(handle, cache_name, fetch)
            if attached is not None:
                return attached
        raise RuntimeError(  # pragma: no cover - repeated create/unlink races
            f"could not attach artifact {handle.digest[:16]}... after retries"
        )

    def _load(self, shm: shared_memory.SharedMemory,
              handle: ShmModelHandle, t0: float, source: str) -> AttachedModel:
        try:
            network = load_network_from_buffer(
                shm.buf[: handle.nbytes], zero_copy=True
            )
        except Exception:
            shm.close()
            raise
        self.attach_log.append((handle.digest, source))
        attach_ms = (time.perf_counter() - t0) * 1000.0
        return AttachedModel(network=network, handle=handle,
                             attach_ms=attach_ms, shm=shm)

    def _attach_ready(self, handle: ShmModelHandle,
                      cache_name: str) -> Optional[AttachedModel]:
        """Attach the digest-named cache segment if it exists and is ready."""
        t0 = time.perf_counter()
        try:
            with _untracked_attach():
                shm = _QuietSharedMemory(name=cache_name, create=False)
        except FileNotFoundError:
            return None
        deadline = time.perf_counter() + self.ready_timeout_s
        while shm.buf[handle.nbytes] != 1:
            if time.perf_counter() > deadline:
                # Publisher crashed mid-write: reclaim so a live worker can
                # republish (the unlink only hides the name; crashed
                # mappings are already gone).
                shm.close()
                with contextlib.suppress(FileNotFoundError):
                    shared_memory.SharedMemory(name=cache_name,
                                               create=False).unlink()
                return None
            time.sleep(0.01)
        return self._load(shm, handle, t0, source="host-cache")

    def _attach_owner(self, handle: ShmModelHandle) -> Optional[AttachedModel]:
        """Attach the owner's segment directly (co-hosted router only)."""
        if not handle.shm_name:
            return None
        t0 = time.perf_counter()
        try:
            with _untracked_attach():
                shm = _QuietSharedMemory(name=handle.shm_name, create=False)
        except (FileNotFoundError, ValueError):
            return None
        # Digest verification: shm names are host-local, so on a *different*
        # host this name could coincidentally exist with other contents.
        if artifact_digest(shm.buf[: handle.nbytes]) != handle.digest:
            shm.close()  # pragma: no cover - name collision on foreign host
            return None
        return self._load(shm, handle, t0, source="owner-segment")

    def _fetch_and_publish(self, handle: ShmModelHandle, cache_name: str,
                           fetch: Callable[[], bytes]) -> Optional[AttachedModel]:
        """Fetch payload bytes, publish the cache segment, attach it.

        The segment is created (unready) *before* the fetch: the create is
        the host-global claim on this digest, so when several workers race
        to resolve the same artifact exactly one performs the transport
        round trip — the losers see ``FileExistsError`` immediately and
        wait on the winner's ready flag instead of fetching the same bytes
        again.  (Creating after the fetch — the original order — let every
        racer pay a full fetch before discovering it lost.)
        """
        t0 = time.perf_counter()
        try:
            shm = _QuietSharedMemory(name=cache_name, create=True,
                                     size=handle.nbytes + 1)
        except FileExistsError:
            # Another worker on this host won the claim — attach its segment
            # on the next loop iteration (waiting for its ready flag).
            return None
        try:
            raw = fetch()
            if len(raw) != handle.nbytes or artifact_digest(raw) != handle.digest:
                raise ValueError(
                    f"fetched artifact does not match digest "
                    f"{handle.digest[:16]}... (got {len(raw)} bytes)"
                )
        except BaseException:
            # A claimed-but-never-ready segment would strand every later
            # attacher until their ready timeout; release the claim so a
            # healthy worker can re-fetch.
            with contextlib.suppress(FileNotFoundError):
                shm.unlink()
            shm.close()
            raise
        shm.buf[: handle.nbytes] = bytes(raw)
        shm.buf[handle.nbytes] = 1  # ready: attachers may trust the payload
        self._segments[cache_name] = shm
        return self._load(shm, handle, t0, source="fetched")

    # ------------------------------------------------------------- lifecycle
    def close(self) -> None:
        """Unlink every cache segment this worker created (idempotent)."""
        _close_segments(self._segments)
        self._finalizer.detach()

    def __enter__(self) -> "HostModelCache":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
