"""Shared-memory model store: serialize packed weights once, attach N times.

A cluster of worker processes must not hold N private copies of the model
zoo.  :class:`SharedModelStore` serializes each network **once** into a
``multiprocessing.shared_memory`` segment using the ``.pbit`` format
(:mod:`repro.core.model_format`), and every worker attaches with
:func:`attach_model`, which maps the segment and rebuilds the network with
``zero_copy=True`` — the packed filter banks and dense weight matrices end
up as read-only NumPy views straight into the shared pages.  No worker
unpacks, repacks or copies the bulk weights; the only per-worker costs are
the small per-channel vectors and the plan compilation at warm time.

Ownership and cleanup discipline:

* The **owner** (the process that published) unlinks every segment in
  :meth:`SharedModelStore.close`; a ``weakref.finalize`` hook makes a
  best-effort cleanup on interpreter exit, and the stdlib resource tracker
  reclaims the segments even if the owner is SIGKILLed.
* **Attachers** never unlink.  Python < 3.13 registers every attached
  segment with the resource tracker, whose exit-time cleanup would destroy
  the owner's segment the moment *one worker* dies — exactly wrong for a
  cluster that respawns crashed workers.  :func:`attach_model` therefore
  suppresses the attach-side registration, which is what keeps a worker
  crash from tearing the model store out from under the survivors (pinned
  by ``tests/test_cluster.py``).

Note the ``.pbit`` round trip stores thresholds in float32, so an attached
network is bit-identical to *any other load of the same published bytes* —
the invariant the cluster relies on — but only approximately equal
(``allclose``-level) to the float64 in-memory network it was serialized
from.  Cluster-vs-single-process comparisons must therefore serve the same
published artifact on both sides.
"""

from __future__ import annotations

import contextlib
import threading
import time
import weakref
from dataclasses import dataclass, field
from multiprocessing import resource_tracker, shared_memory
from typing import Dict, Iterable, Iterator, Optional

from repro.core.model_format import load_network_from_buffer, serialize_network
from repro.core.network import Network

__all__ = [
    "AttachedModel",
    "SharedModelStore",
    "ShmModelHandle",
    "attach_model",
]

_ATTACH_LOCK = threading.Lock()


class _QuietSharedMemory(shared_memory.SharedMemory):
    """``SharedMemory`` whose close tolerates still-exported buffer views.

    The zero-copy design makes "NumPy views alive at close time" a normal
    state, not a bug: a network's packed weights are views into the
    mapping, and interpreter shutdown tears objects down in arbitrary
    order.  The stdlib ``close()`` raises ``BufferError`` then (loudly, in
    ``__del__``); here the mapping simply stays open until process exit,
    when the OS reclaims it anyway.
    """

    def close(self) -> None:
        try:
            super().close()
        except BufferError:
            pass


@contextlib.contextmanager
def _untracked_attach() -> Iterator[None]:
    """Suppress resource-tracker registration while attaching a segment.

    Python < 3.13 registers shared memory with the resource tracker on
    *attach*, not just on create.  A spawned worker runs its own tracker,
    which unlinks everything it registered when the worker exits — so the
    first worker death would destroy the store for every survivor.
    Unregistering after the fact is no better: forked workers share the
    owner's tracker, and the unregister would strip the owner's own
    leak-protection entry.  Suppressing the registration only for the
    attach call leaves exactly one tracked owner.
    """
    with _ATTACH_LOCK:
        original = resource_tracker.register

        def _register(name: str, rtype: str) -> None:  # pragma: no cover
            if rtype != "shared_memory":
                original(name, rtype)

        resource_tracker.register = _register
        try:
            yield
        finally:
            resource_tracker.register = original


@dataclass(frozen=True)
class ShmModelHandle:
    """Picklable descriptor of one published model.

    Everything a worker process needs to attach: the canonical model name,
    the shared-memory segment name and the exact payload length (the OS may
    round the segment itself up to a page multiple).
    """

    model: str
    shm_name: str
    nbytes: int


@dataclass
class AttachedModel:
    """A network mapped zero-copy from a shared-memory segment.

    Keeps the :class:`~multiprocessing.shared_memory.SharedMemory` object
    referenced — the network's packed weights are views into its buffer, so
    the mapping must outlive the network.  ``close()`` only detaches this
    process's mapping; it never unlinks the owner's segment.
    """

    network: Network
    handle: ShmModelHandle
    attach_ms: float
    shm: shared_memory.SharedMemory = field(repr=False)

    def close(self) -> None:
        """Detach the local mapping (call only once the network is dead)."""
        # NumPy views exported from shm.buf must be gone first, otherwise
        # the mmap refuses to close; dropping the network is the caller's
        # job, hence "only once the network is dead".
        self.network = None  # type: ignore[assignment]
        try:
            self.shm.close()
        except BufferError:  # pragma: no cover - live views still exported
            pass


def attach_model(handle: ShmModelHandle) -> AttachedModel:
    """Attach to a published model, zero-copy.

    Maps the segment named by ``handle`` and deserializes with
    ``zero_copy=True``: packed binary weights are read-only views into the
    shared pages — no unpack, no copy.  The returned
    :class:`AttachedModel` records the wall-clock attach time
    (``attach_ms``), which the cluster benchmark reports.

    Raises
    ------
    FileNotFoundError
        If the owner has already unlinked the segment (store closed).
    """
    t0 = time.perf_counter()
    with _untracked_attach():
        shm = _QuietSharedMemory(name=handle.shm_name, create=False)
    try:
        network = load_network_from_buffer(
            shm.buf[: handle.nbytes], zero_copy=True
        )
    except Exception:
        shm.close()
        raise
    attach_ms = (time.perf_counter() - t0) * 1000.0
    return AttachedModel(network=network, handle=handle, attach_ms=attach_ms,
                         shm=shm)


class SharedModelStore:
    """Owner side of the shared-memory model zoo.

    Examples
    --------
    Publish a model once, attach (here: in the same process — workers do
    exactly this after ``fork``/``spawn``) and run it zero-copy:

    >>> import numpy as np
    >>> from repro.core.model_format import (
    ...     load_network_from_buffer, serialize_network)
    >>> from repro.models.zoo import build_phonebit_network, micro_cnn_config
    >>> from repro.serving.shm_store import SharedModelStore, attach_model
    >>> network = build_phonebit_network(micro_cnn_config())
    >>> reloaded = load_network_from_buffer(serialize_network(network))
    >>> with SharedModelStore() as store:
    ...     handle = store.publish(network)
    ...     attached = attach_model(handle)
    ...     packed_is_view = not attached.network.layers[2].weights_packed.flags.owndata
    ...     image = np.zeros((1, 8, 8, 3), dtype=np.uint8)
    ...     same = np.array_equal(
    ...         attached.network(image).data, reloaded(image).data)
    ...     attached.close()
    >>> (packed_is_view, same)
    (True, True)
    """

    def __init__(self, prefix: str = "repro-model") -> None:
        self.prefix = prefix
        self._segments: Dict[str, shared_memory.SharedMemory] = {}
        self._handles: Dict[str, ShmModelHandle] = {}
        # Best-effort unlink when the owner exits without close(); SIGKILL
        # is covered by the stdlib resource tracker instead.
        self._finalizer = weakref.finalize(self, _close_segments, self._segments)

    # ------------------------------------------------------------- publish
    def publish(self, network: Network, name: Optional[str] = None) -> ShmModelHandle:
        """Serialize ``network`` into a fresh segment; returns its handle."""
        key = name or network.name
        if key in self._handles:
            raise ValueError(f"model {key!r} is already published")
        raw = serialize_network(network)
        shm = _QuietSharedMemory(create=True, size=len(raw))
        shm.buf[: len(raw)] = raw
        self._segments[key] = shm
        handle = ShmModelHandle(model=key, shm_name=shm.name, nbytes=len(raw))
        self._handles[key] = handle
        return handle

    def publish_models(self, models: Iterable[str], rng: int = 0,
                       word_size: int = 64) -> Dict[str, ShmModelHandle]:
        """Build zoo models by name and publish each (serving-zoo lookup)."""
        from repro.models.zoo import build_phonebit_network, get_serving_config

        handles = {}
        for model in models:
            config = get_serving_config(model)
            network = build_phonebit_network(config, rng=rng, word_size=word_size)
            handles[config.name] = self.publish(network, name=config.name)
        return handles

    # ------------------------------------------------------------- lookup
    def handles(self) -> Dict[str, ShmModelHandle]:
        """Snapshot of every published handle, keyed by model name."""
        return dict(self._handles)

    def __contains__(self, name: str) -> bool:
        return name in self._handles

    def total_bytes(self) -> int:
        """Sum of published payload bytes across all models."""
        return sum(handle.nbytes for handle in self._handles.values())

    # ------------------------------------------------------------- lifecycle
    def close(self) -> None:
        """Unmap and unlink every published segment (idempotent)."""
        _close_segments(self._segments)
        self._handles.clear()
        self._finalizer.detach()

    def __enter__(self) -> "SharedModelStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def _close_segments(segments: Dict[str, shared_memory.SharedMemory]) -> None:
    """Unmap + unlink helper shared by close() and the GC finalizer."""
    while segments:
        _, shm = segments.popitem()
        try:
            shm.close()
        except Exception:  # pragma: no cover - defensive
            pass
        try:
            shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already reclaimed
            pass
