"""Versioned, seeded multi-tenant scenario harness for the cluster.

A **scenario** names a set of tenants, each with an SLO class
(``interactive`` / ``standard`` / ``batch``), a model mix and an arrival
curve, and compiles — as a pure function of ``(spec, seed)`` — into a
deterministic per-tenant arrival schedule.  The same seed always yields a
byte-identical schedule (the same replayability contract as
:class:`~repro.serving.faults.FaultPlan`): each tenant draws from its own
``numpy`` ``default_rng`` child stream, so editing one tenant never
perturbs another's arrivals.

Arrival curves:

* ``constant`` — homogeneous Poisson at ``rate``.
* ``diurnal`` — sinusoidal rate from ``rate`` (valley) to ``peak``, one
  period per ``period`` (default: the scenario duration).
* ``flash_crowd`` — Poisson at ``rate``, stepping to ``peak`` during the
  event window ``[at, at+width)`` (fractions of the duration).
* ``burst`` — a **correlated multi-model burst**: outside the window only
  the tenant's primary model sees ``rate``; inside it the *whole* model
  mix spikes to ``peak`` together.
* ``slow_drip`` — evenly spaced background arrivals at ``rate`` with
  small seeded jitter (not Poisson: a drip never clumps).

The runner (:func:`run_scenario`) drives a
:class:`~repro.serving.cluster.ClusterService` through the schedule with
non-blocking admission, tagging every request with its tenant's SLO class
so the router's tiered admission (shed batch before standard before
interactive — :meth:`~repro.serving.router.LeastOutstandingRouter
.set_slo_reserves`) and the cluster's per-class
:class:`~repro.serving.cluster.SLOPolicy` defaults (deadline, hedging)
act on it end to end.  It emits per-tenant and per-class summaries
(goodput, shed share, p50/p99 vs budget, SLO attainment), verifies every
completed output bit-identical to a fault-free single-process baseline
over the same images, and feeds the **measured** per-model traffic shares
into :func:`~repro.serving.router.pin_counts_from_shares` — live rates,
not configured guesses.  Compose with a
:class:`~repro.serving.faults.FaultPlan` via ``chaos=`` to replay a
scenario under seeded fault injection.

Examples
--------
>>> spec = ScenarioSpec.parse(
...     "web,slo=interactive,curve=flash_crowd,rate=40,peak=160;"
...     "jobs,slo=batch,rate=30", name="demo", duration_s=2.0)
>>> [t.name for t in spec.tenants]
['web', 'jobs']
>>> schedule = spec.compile(seed=7)
>>> schedule.digest() == spec.compile(seed=7).digest()  # replayable
True
>>> schedule.digest() == spec.compile(seed=8).digest()
False
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from concurrent.futures import TimeoutError as FuturesTimeoutError
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.reporting import format_kv, format_table
from repro.serving.metrics import percentile_ms
from repro.serving.router import (
    SLO_CLASSES,
    default_slo_reserves,
    pin_counts_from_shares,
    validate_slo,
)

__all__ = [
    "BUNDLED_SCENARIOS",
    "SCENARIO_CURVES",
    "SCENARIO_VERSION",
    "ClassSummary",
    "PassAggregate",
    "ScenarioResult",
    "ScenarioSchedule",
    "ScenarioSpec",
    "TenantSchedule",
    "TenantSpec",
    "TenantSummary",
    "aggregate_passes",
    "resolve_scenario",
    "run_scenario",
    "run_scenario_passes",
]

#: Supported arrival-curve kinds.
SCENARIO_CURVES = ("constant", "diurnal", "flash_crowd", "burst", "slow_drip")

#: Spec-format version.  Part of every tenant's rng child-stream key, so
#: bumping it deliberately reshuffles all schedules — an old golden file
#: can never silently validate a new-format spec.
SCENARIO_VERSION = 1


# ---------------------------------------------------------------------------
# specs
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class TenantSpec:
    """One tenant: an SLO class, a model mix and an arrival curve.

    ``models`` is an ordered ``((name, weight), ...)`` mix (a mapping is
    accepted and normalized); the first entry is the tenant's *primary*
    model — the only one a ``burst`` tenant exercises outside its burst
    window.  ``rate`` is the baseline offered rate in req/s; ``peak``
    (default ``4 × rate``) is the diurnal crest / event-window rate.
    ``at`` and ``width`` place the flash-crowd/burst event window as
    fractions of the scenario duration.  ``budget_ms`` overrides the SLO
    class's default latency budget for attainment accounting.
    """

    name: str
    slo: str = "standard"
    models: Tuple[Tuple[str, float], ...] = (("MicroCNN", 1.0),)
    curve: str = "constant"
    rate_rps: float = 50.0
    peak_rps: Optional[float] = None
    at: float = 0.4
    width: float = 0.2
    period_s: Optional[float] = None
    budget_ms: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("tenant name must be non-empty")
        validate_slo(self.slo)
        if self.curve not in SCENARIO_CURVES:
            raise ValueError(
                f"unknown arrival curve {self.curve!r}; "
                f"expected one of {SCENARIO_CURVES}"
            )
        models = self.models
        if isinstance(models, Mapping):
            models = tuple(models.items())
        models = tuple((str(name), float(weight)) for name, weight in models)
        if not models:
            raise ValueError("tenant model mix must be non-empty")
        if any(weight <= 0 for _, weight in models):
            raise ValueError("model mix weights must be positive")
        object.__setattr__(self, "models", models)
        if self.rate_rps <= 0:
            raise ValueError("rate_rps must be positive")
        if self.peak_rps is not None and self.peak_rps < self.rate_rps:
            raise ValueError("peak_rps must be at least rate_rps")
        if not 0.0 <= self.at <= 1.0 or not 0.0 < self.width <= 1.0:
            raise ValueError("at must be in [0, 1] and width in (0, 1]")
        if self.period_s is not None and self.period_s <= 0:
            raise ValueError("period_s must be positive")
        if self.budget_ms is not None and self.budget_ms <= 0:
            raise ValueError("budget_ms must be positive")

    @property
    def effective_peak_rps(self) -> float:
        return self.peak_rps if self.peak_rps is not None else 4.0 * self.rate_rps

    @property
    def model_names(self) -> Tuple[str, ...]:
        return tuple(name for name, _ in self.models)

    def to_dict(self) -> dict:
        data = {
            "name": self.name, "slo": self.slo,
            "models": {name: weight for name, weight in self.models},
            "curve": self.curve, "rate_rps": self.rate_rps,
        }
        for key in ("peak_rps", "period_s", "budget_ms"):
            value = getattr(self, key)
            if value is not None:
                data[key] = value
        if self.curve in ("flash_crowd", "burst"):
            data["at"] = self.at
            data["width"] = self.width
        return data


def _parse_model_mix(text: str) -> Tuple[Tuple[str, float], ...]:
    """``"MicroCNN*3+TinyCNN*1"`` → ``(("MicroCNN", 3.0), ("TinyCNN", 1.0))``."""
    mix: List[Tuple[str, float]] = []
    for part in text.split("+"):
        part = part.strip()
        if not part:
            raise ValueError(f"empty model entry in mix {text!r}")
        if "*" in part:
            name, _, weight = part.partition("*")
            mix.append((name.strip(), float(weight)))
        else:
            mix.append((part, 1.0))
    return tuple(mix)


_TENANT_FIELD_KEYS = {
    "slo": "slo", "curve": "curve", "rate": "rate_rps", "peak": "peak_rps",
    "at": "at", "width": "width", "period": "period_s",
    "budget_ms": "budget_ms",
}

_TENANT_JSON_KEYS = ("name", "slo", "models", "curve", "rate_rps",
                     "peak_rps", "at", "width", "period_s", "budget_ms")


@dataclass(frozen=True)
class ScenarioSpec:
    """A named, versioned multi-tenant workload."""

    name: str
    tenants: Tuple[TenantSpec, ...]
    duration_s: float = 4.0
    version: int = SCENARIO_VERSION

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("scenario name must be non-empty")
        if not self.tenants:
            raise ValueError("scenario must declare at least one tenant")
        names = [tenant.name for tenant in self.tenants]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate tenant names in scenario: {names}")
        if self.duration_s <= 0:
            raise ValueError("duration_s must be positive")
        if self.version != SCENARIO_VERSION:
            raise ValueError(
                f"unsupported scenario version {self.version}; this build "
                f"compiles version {SCENARIO_VERSION}"
            )

    # -------------------------------------------------------------- parsing
    @classmethod
    def parse(cls, text: str, name: str = "custom",
              duration_s: float = 4.0) -> "ScenarioSpec":
        """Compile a spec string: ``;``-separated tenants, each a bare
        tenant name followed by ``,key=value`` fields.

        Keys: ``slo``, ``model`` (mix grammar ``A*3+B*1``), ``curve``,
        ``rate``, ``peak``, ``at``, ``width``, ``period``, ``budget_ms``.

        >>> spec = ScenarioSpec.parse("web,slo=interactive,rate=80")
        >>> (spec.tenants[0].slo, spec.tenants[0].rate_rps)
        ('interactive', 80.0)
        """
        tenants: List[TenantSpec] = []
        for chunk in text.split(";"):
            chunk = chunk.strip()
            if not chunk:
                continue
            fields = [piece.strip() for piece in chunk.split(",")]
            tenant_name = fields[0]
            if not tenant_name or "=" in tenant_name:
                raise ValueError(
                    f"tenant chunk {chunk!r} must start with a bare tenant "
                    "name (got a key=value field first)"
                )
            kwargs: dict = {}
            for piece in fields[1:]:
                if "=" not in piece:
                    raise ValueError(
                        f"malformed tenant field {piece!r} (expected "
                        "key=value)"
                    )
                key, _, value = piece.partition("=")
                key, value = key.strip(), value.strip()
                if key == "model":
                    kwargs["models"] = _parse_model_mix(value)
                elif key in _TENANT_FIELD_KEYS:
                    attr = _TENANT_FIELD_KEYS[key]
                    kwargs[attr] = value if attr in ("slo", "curve") \
                        else float(value)
                else:
                    raise ValueError(
                        f"unknown tenant key {key!r}; expected one of "
                        f"{('model',) + tuple(_TENANT_FIELD_KEYS)}"
                    )
            tenants.append(TenantSpec(name=tenant_name, **kwargs))
        if not tenants:
            raise ValueError("scenario spec names no tenants")
        return cls(name=name, tenants=tuple(tenants),
                   duration_s=float(duration_s))

    @classmethod
    def from_json(cls, source) -> "ScenarioSpec":
        """Build a spec from a JSON file path, JSON text, or mapping."""
        if isinstance(source, Mapping):
            data = source
        elif isinstance(source, (str, os.PathLike)):
            if isinstance(source, str) and source.lstrip().startswith("{"):
                data = json.loads(source)
            else:
                with open(source) as fh:
                    data = json.load(fh)
        else:
            raise TypeError(
                f"expected a mapping, JSON text or path, got {type(source)}"
            )
        tenants: List[TenantSpec] = []
        for entry in data.get("tenants", ()):
            unknown = sorted(set(entry) - set(_TENANT_JSON_KEYS))
            if unknown:
                raise ValueError(
                    f"unknown tenant keys {unknown}; expected a subset of "
                    f"{_TENANT_JSON_KEYS}"
                )
            kwargs = dict(entry)
            if "models" in kwargs and isinstance(kwargs["models"], Mapping):
                kwargs["models"] = tuple(kwargs["models"].items())
            tenants.append(TenantSpec(**kwargs))
        return cls(
            name=str(data.get("name", "custom")),
            tenants=tuple(tenants),
            duration_s=float(data.get("duration_s", 4.0)),
            version=int(data.get("version", SCENARIO_VERSION)),
        )

    def to_dict(self) -> dict:
        return {
            "name": self.name, "version": self.version,
            "duration_s": self.duration_s,
            "tenants": [tenant.to_dict() for tenant in self.tenants],
        }

    # ------------------------------------------------------------ compiling
    def model_names(self) -> Tuple[str, ...]:
        """All models the scenario touches, first-appearance order."""
        ordered: Dict[str, None] = {}
        for tenant in self.tenants:
            for name in tenant.model_names:
                ordered.setdefault(name, None)
        return tuple(ordered)

    def compile(self, seed: int, duration_s: Optional[float] = None,
                rate_scale: float = 1.0) -> "ScenarioSchedule":
        """Compile the deterministic arrival schedule for ``seed``.

        A pure function of ``(spec, seed, duration, rate_scale)`` — the
        wall clock is never consulted.  Tenant ``i`` draws from the child
        streams ``default_rng((seed, version, i))`` (arrival times) and
        ``default_rng((seed, version, i, 1))`` (model mix), mirroring
        :class:`~repro.serving.faults.FaultPlan`'s per-rule streams, so
        same seed → byte-identical schedule, per tenant and overall.
        """
        duration = self.duration_s if duration_s is None else float(duration_s)
        if duration <= 0:
            raise ValueError("duration_s must be positive")
        if rate_scale <= 0:
            raise ValueError("rate_scale must be positive")
        tenants: List[TenantSchedule] = []
        for index, tenant in enumerate(self.tenants):
            rng_times = np.random.default_rng(
                (int(seed), int(self.version), index))
            rng_models = np.random.default_rng(
                (int(seed), int(self.version), index, 1))
            times, in_event = _arrival_times(tenant, rng_times, duration,
                                             rate_scale)
            model_index = _assign_models(tenant, rng_models, times, in_event)
            tenants.append(TenantSchedule(tenant=tenant, times=times,
                                          model_index=model_index))
        return ScenarioSchedule(
            spec=self, seed=int(seed), duration_s=duration,
            rate_scale=float(rate_scale), tenants=tuple(tenants),
        )


def _event_window(tenant: TenantSpec, duration: float) -> Tuple[float, float]:
    start = tenant.at * duration
    return start, min(duration, start + tenant.width * duration)


def _rate_at(tenant: TenantSpec, times: np.ndarray, duration: float,
             rate: float, peak: float) -> np.ndarray:
    if tenant.curve == "diurnal":
        period = tenant.period_s if tenant.period_s is not None else duration
        phase = 2.0 * np.pi * times / period
        return rate + (peak - rate) * 0.5 * (1.0 - np.cos(phase))
    if tenant.curve in ("flash_crowd", "burst"):
        start, end = _event_window(tenant, duration)
        return np.where((times >= start) & (times < end), peak, rate)
    return np.full(times.shape, rate)


def _arrival_times(tenant: TenantSpec, rng: np.random.Generator,
                   duration: float, rate_scale: float) -> tuple:
    """Seeded arrival times (sorted, seconds) and the in-event mask."""
    rate = tenant.rate_rps * rate_scale
    peak = tenant.effective_peak_rps * rate_scale
    if tenant.curve == "slow_drip":
        count = max(1, int(round(rate * duration)))
        spacing = duration / count
        base = (np.arange(count) + 0.5) * spacing
        jitter = rng.uniform(-0.25, 0.25, size=count) * spacing
        times = np.sort(np.clip(base + jitter, 0.0,
                                np.nextafter(duration, 0.0)))
        return times, np.zeros(count, dtype=bool)
    # Non-homogeneous Poisson by thinning: candidates at the envelope
    # rate, each kept with probability rate(t)/envelope — vectorized and
    # purely rng-driven, so the schedule replays byte-identically.
    envelope = peak if tenant.curve in ("diurnal", "flash_crowd", "burst") \
        else rate
    count = int(rng.poisson(envelope * duration))
    candidates = np.sort(rng.uniform(0.0, duration, size=count))
    rates = _rate_at(tenant, candidates, duration, rate, peak)
    keep = rng.uniform(0.0, 1.0, size=count) * envelope < rates
    times = candidates[keep]
    if tenant.curve in ("flash_crowd", "burst"):
        start, end = _event_window(tenant, duration)
        in_event = (times >= start) & (times < end)
    else:
        in_event = np.zeros(times.shape, dtype=bool)
    return times, in_event


def _assign_models(tenant: TenantSpec, rng: np.random.Generator,
                   times: np.ndarray, in_event: np.ndarray) -> np.ndarray:
    weights = np.asarray([weight for _, weight in tenant.models], float)
    weights = weights / weights.sum()
    index = rng.choice(len(weights), size=len(times), p=weights)
    if tenant.curve == "burst":
        # Correlated multi-model burst: the full mix spikes together only
        # inside the window; background traffic is the primary model.
        index = np.where(in_event, index, 0)
    return index.astype(np.int64)


# ---------------------------------------------------------------------------
# compiled schedules
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class TenantSchedule:
    """One tenant's compiled arrivals: times (s) and model-mix indices."""

    tenant: TenantSpec
    times: np.ndarray
    model_index: np.ndarray

    @property
    def offered(self) -> int:
        return int(len(self.times))

    def model_counts(self) -> Dict[str, int]:
        names = self.tenant.model_names
        counts = np.bincount(self.model_index, minlength=len(names))
        return {name: int(count)
                for name, count in zip(names, counts) if count}


@dataclass(frozen=True)
class ScenarioSchedule:
    """A compiled scenario: deterministic per-tenant arrival streams."""

    spec: ScenarioSpec
    seed: int
    duration_s: float
    rate_scale: float
    tenants: Tuple[TenantSchedule, ...]

    @property
    def offered(self) -> int:
        return sum(tenant.offered for tenant in self.tenants)

    def digest(self) -> str:
        """SHA-256 over every tenant's identity, times and model draws —
        byte-identical replay means digest-identical replay."""
        hasher = hashlib.sha256()
        hasher.update(f"{self.spec.name}\x00{self.spec.version}\x00"
                      f"{self.duration_s!r}\x00{self.rate_scale!r}"
                      .encode())
        for tenant in self.tenants:
            hasher.update(f"{tenant.tenant.name}\x00{tenant.tenant.slo}"
                          .encode())
            hasher.update(np.ascontiguousarray(tenant.times).tobytes())
            hasher.update(np.ascontiguousarray(tenant.model_index).tobytes())
        return hasher.hexdigest()

    def merged(self) -> tuple:
        """Time-ordered merge: ``(offsets, tenant_index, model_names)``."""
        if not self.tenants:
            return np.array([]), np.array([], dtype=np.int64), []
        times = np.concatenate([t.times for t in self.tenants])
        tenant_index = np.concatenate([
            np.full(t.offered, i, dtype=np.int64)
            for i, t in enumerate(self.tenants)
        ])
        model_index = np.concatenate([t.model_index for t in self.tenants])
        order = np.argsort(times, kind="stable")
        times = times[order]
        tenant_index = tenant_index[order]
        model_index = model_index[order]
        names = [self.tenants[t].tenant.model_names[m]
                 for t, m in zip(tenant_index, model_index)]
        return times, tenant_index, names

    def per_class_offered(self) -> Dict[str, int]:
        counts = {name: 0 for name in SLO_CLASSES}
        for tenant in self.tenants:
            counts[tenant.tenant.slo] += tenant.offered
        return counts

    def summary(self) -> dict:
        """Deterministic schedule summary — the golden-file payload."""
        return {
            "scenario": self.spec.name,
            "version": self.spec.version,
            "seed": self.seed,
            "duration_s": self.duration_s,
            "rate_scale": self.rate_scale,
            "digest": self.digest(),
            "offered": self.offered,
            "per_class": {name: count
                          for name, count in self.per_class_offered().items()
                          if count},
            "tenants": [
                {
                    "tenant": t.tenant.name,
                    "slo": t.tenant.slo,
                    "curve": t.tenant.curve,
                    "offered": t.offered,
                    "first_ms": (round(float(t.times[0]) * 1000.0, 3)
                                 if t.offered else None),
                    "last_ms": (round(float(t.times[-1]) * 1000.0, 3)
                                if t.offered else None),
                    "models": t.model_counts(),
                }
                for t in self.tenants
            ],
        }


# ---------------------------------------------------------------------------
# bundled scenarios
# ---------------------------------------------------------------------------

def _bundled() -> Dict[str, ScenarioSpec]:
    return {
        "steady_mix": ScenarioSpec(
            name="steady_mix", duration_s=4.0, tenants=(
                TenantSpec("web", slo="interactive", rate_rps=60.0),
                TenantSpec("app", slo="standard", rate_rps=40.0),
                TenantSpec("jobs", slo="batch", rate_rps=40.0),
            )),
        "diurnal": ScenarioSpec(
            name="diurnal", duration_s=4.0, tenants=(
                TenantSpec("web", slo="interactive", curve="diurnal",
                           rate_rps=20.0, peak_rps=140.0),
                TenantSpec("jobs", slo="batch", rate_rps=30.0),
            )),
        "flash_crowd": ScenarioSpec(
            name="flash_crowd", duration_s=4.0, tenants=(
                TenantSpec("web", slo="interactive", curve="flash_crowd",
                           rate_rps=30.0, peak_rps=120.0, at=0.35,
                           width=0.25),
                TenantSpec("app", slo="standard", rate_rps=30.0),
                TenantSpec("jobs", slo="batch", rate_rps=240.0),
            )),
        "multi_burst": ScenarioSpec(
            name="multi_burst", duration_s=4.0, tenants=(
                TenantSpec("mixed", slo="standard", curve="burst",
                           models=(("MicroCNN", 2.0), ("TinyCNN", 1.0)),
                           rate_rps=40.0, peak_rps=200.0, at=0.3,
                           width=0.2),
                TenantSpec("web", slo="interactive", rate_rps=30.0),
            )),
        "slow_drip": ScenarioSpec(
            name="slow_drip", duration_s=4.0, tenants=(
                TenantSpec("bg", slo="batch", curve="slow_drip",
                           rate_rps=12.0),
                TenantSpec("web", slo="interactive", rate_rps=30.0),
            )),
    }


#: Named, versioned workload configs shipped with the harness.
BUNDLED_SCENARIOS: Mapping[str, ScenarioSpec] = _bundled()


def resolve_scenario(text: str, duration_s: Optional[float] = None
                     ) -> ScenarioSpec:
    """Resolve a CLI scenario argument to a spec.

    Accepts, in order: a bundled scenario name, a ``.json`` spec file
    path, or an inline spec string (anything containing ``=``).  Raises
    ``ValueError`` with the bundled names on anything else.
    """
    text = text.strip()
    if text in BUNDLED_SCENARIOS:
        spec = BUNDLED_SCENARIOS[text]
        if duration_s is not None:
            spec = ScenarioSpec(name=spec.name, tenants=spec.tenants,
                                duration_s=float(duration_s),
                                version=spec.version)
        return spec
    if text.endswith(".json") or os.path.exists(text):
        spec = ScenarioSpec.from_json(text)
        if duration_s is not None:
            spec = ScenarioSpec(name=spec.name, tenants=spec.tenants,
                                duration_s=float(duration_s),
                                version=spec.version)
        return spec
    if "=" in text:
        return ScenarioSpec.parse(
            text, duration_s=4.0 if duration_s is None else duration_s)
    raise ValueError(
        f"unknown scenario {text!r}: not a bundled name "
        f"({', '.join(sorted(BUNDLED_SCENARIOS))}), not a .json path, and "
        "not an inline spec (tenant,key=value,...)"
    )


# ---------------------------------------------------------------------------
# summaries
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class TenantSummary:
    """One tenant's pass outcome."""

    tenant: str
    slo: str
    offered: int
    completed: int
    shed: int
    deadline_expired: int
    failed: int
    within_budget: int
    budget_ms: float
    p50_ms: float
    p99_ms: float
    goodput_rps: float

    @property
    def attainment(self) -> float:
        """Fraction of *offered* requests completed within budget —
        sheds, expiries and failures all count against the SLO."""
        return self.within_budget / self.offered if self.offered else 1.0

    @property
    def shed_rate(self) -> float:
        return self.shed / self.offered if self.offered else 0.0


@dataclass(frozen=True)
class ClassSummary:
    """Per-SLO-class aggregation across a pass's tenants."""

    slo: str
    offered: int
    completed: int
    shed: int
    deadline_expired: int
    failed: int
    within_budget: int
    #: This class's fraction of every shed in the pass (0 with no sheds).
    shed_share: float

    @property
    def attainment(self) -> float:
        return self.within_budget / self.offered if self.offered else 1.0


@dataclass(frozen=True)
class ScenarioResult:
    """Outcome of one scenario pass (see :func:`run_scenario`).

    Accounting is exact per tenant: ``offered == completed + shed +
    deadline_expired + failed`` — every arrival lands in exactly one
    bucket, the same lossless contract as
    :class:`~repro.serving.loadgen.ChaosResult`.
    """

    scenario: str
    seed: int
    duration_s: float
    rate_scale: float
    digest: str
    wall_s: float
    tenants: Tuple[TenantSummary, ...]
    classes: Tuple[ClassSummary, ...]
    bit_identical: bool
    #: Measured per-model request counts (the live pinning signal).
    model_shares: Dict[str, float]
    #: ``pin_counts_from_shares`` over the measured shares and fleet size.
    pin_suggestion: Optional[Dict[str, int]]
    #: Pin layout actually applied by ``rebalance_pins=True`` (``None``
    #: when the cluster runs unpinned).
    pins_applied: Optional[Dict[str, int]]
    retries: int
    hedges: int
    respawns: int
    fault_events: tuple = ()
    #: Terminal (or last observed) phase of a live rollout driven through
    #: the pass via ``rollout_model`` (``None`` when no rollout ran).
    rollout_phase: Optional[str] = None

    @property
    def offered(self) -> int:
        return sum(t.offered for t in self.tenants)

    @property
    def completed(self) -> int:
        return sum(t.completed for t in self.tenants)

    @property
    def shed(self) -> int:
        return sum(t.shed for t in self.tenants)

    @property
    def deadline_expired(self) -> int:
        return sum(t.deadline_expired for t in self.tenants)

    @property
    def failed(self) -> int:
        return sum(t.failed for t in self.tenants)

    @property
    def goodput_rps(self) -> float:
        if self.wall_s <= 0:
            return float("inf") if self.completed else 0.0
        return self.completed / self.wall_s

    def class_summary(self, slo: str) -> ClassSummary:
        for summary in self.classes:
            if summary.slo == slo:
                return summary
        raise KeyError(f"no {slo!r} traffic in this scenario")

    def tenant_table(self) -> str:
        return format_table(
            ["tenant", "slo", "offered", "done", "shed", "expired", "fail",
             "p50 (ms)", "p99 (ms)", "budget", "attain %", "goodput"],
            [
                [t.tenant, t.slo, t.offered, t.completed, t.shed,
                 t.deadline_expired, t.failed, f"{t.p50_ms:.1f}",
                 f"{t.p99_ms:.1f}", f"{t.budget_ms:.0f}",
                 f"{100.0 * t.attainment:.1f}", f"{t.goodput_rps:.1f}"]
                for t in self.tenants
            ],
            title=f"Scenario {self.scenario} (seed {self.seed})",
        )

    def class_table(self) -> str:
        return format_table(
            ["class", "offered", "done", "shed", "shed share %",
             "expired", "fail", "attain %"],
            [
                [c.slo, c.offered, c.completed, c.shed,
                 f"{100.0 * c.shed_share:.1f}", c.deadline_expired,
                 c.failed, f"{100.0 * c.attainment:.1f}"]
                for c in self.classes
            ],
            title="Per-class summary",
        )

    def table(self) -> str:
        rows = [
            ("offered", self.offered),
            ("completed", self.completed),
            ("shed", self.shed),
            ("deadline expired", self.deadline_expired),
            ("failed", self.failed),
            ("goodput (req/s)", self.goodput_rps),
            ("bit identical", self.bit_identical),
            ("retries / hedges", f"{self.retries} / {self.hedges}"),
            ("schedule digest", self.digest[:16]),
            ("wall time (s)", self.wall_s),
        ]
        return "\n".join([
            self.tenant_table(), "", self.class_table(), "",
            format_kv(rows, title="Scenario totals"),
        ])


# ---------------------------------------------------------------------------
# runner
# ---------------------------------------------------------------------------

def run_scenario(
    spec: ScenarioSpec,
    seed: int = 0,
    workers: int = 3,
    duration_s: Optional[float] = None,
    rate_scale: float = 1.0,
    chaos=None,
    policies: Optional[Mapping] = None,
    interactive_floor: Optional[int] = None,
    slo_reserves: Optional[Mapping[str, int]] = None,
    retry=None,
    image_pool: int = 32,
    drain_timeout_s: float = 60.0,
    rebalance_pins: bool = False,
    rollout_model: Optional[str] = None,
    rollout_at: float = 0.5,
    rollout_config=None,
    **cluster_kwargs,
) -> ScenarioResult:
    """Drive a cluster through one compiled scenario pass.

    Builds a :class:`~repro.serving.cluster.ClusterService` with
    SLO-tiered admission (``slo_reserves``, default derived from the
    admission window and ``interactive_floor`` via
    :func:`~repro.serving.router.default_slo_reserves`) and the per-class
    policy table (``policies`` overrides merge over
    :data:`~repro.serving.cluster.DEFAULT_SLO_POLICIES`), then submits
    the schedule's arrivals non-blocking under each tenant's SLO class.
    ``chaos`` composes a :class:`~repro.serving.faults.FaultPlan` into
    the same pass.  Every completed output is verified bit-identical to
    a fault-free single-process baseline over the same images; a future
    unresolved ``drain_timeout_s`` after the last arrival raises —
    silent loss never reports as success.

    ``rollout_model`` names one scenario model to republish mid-pass: a
    byte-distinct but output-identical v2 artifact is published once the
    arrival cursor crosses ``rollout_at`` (a fraction of the schedule),
    and the canary/promote/commit sequence rides the scenario's own
    traffic.  The pass's bit-identical verification is unchanged — a
    rollout that perturbs even one answer fails the whole scenario —
    and the rollout's final phase lands in ``ScenarioResult
    .rollout_phase``.
    """
    from repro.serving.cluster import (
        DEFAULT_SLO_POLICIES,
        ClusterOverloadError,
        ClusterService,
        DeadlineExceededError,
        RetryPolicy,
        WorkerCrashError,
    )
    from repro.models.zoo import build_phonebit_network, get_serving_config
    from repro.serving.loadgen import (
        run_arrival_schedule,
        run_closed_loop,
        synthetic_images,
    )

    schedule = spec.compile(seed, duration_s=duration_s,
                            rate_scale=rate_scale)
    offsets, tenant_index, model_names = schedule.merged()
    policy_table = dict(DEFAULT_SLO_POLICIES)
    if policies:
        policy_table.update(policies)

    max_batch = int(cluster_kwargs.get("max_batch_size", 32))
    max_outstanding = int(cluster_kwargs.get("max_outstanding")
                          or 2 * max_batch)
    cluster_kwargs.setdefault("max_outstanding", max_outstanding)
    if slo_reserves is None:
        slo_reserves = default_slo_reserves(max_outstanding,
                                            interactive_floor)
    models = spec.model_names()
    cluster_kwargs.setdefault("models", models)

    images: Dict[str, np.ndarray] = {}
    for model in models:
        config = get_serving_config(model)
        images[model] = synthetic_images(
            config.input_shape, image_pool, seed=seed)

    rollout_network = None
    rollout_trigger = -1
    if rollout_model is not None:
        matches = [m for m in models if m.lower() == rollout_model.lower()]
        if not matches:
            raise ValueError(
                f"rollout_model {rollout_model!r} is not a scenario model; "
                f"scenario models: {models}")
        rollout_model = matches[0]
        if not 0.0 <= rollout_at <= 1.0:
            raise ValueError("rollout_at must be in [0, 1]")
        # Same weights as the cluster's published artifact, stamped so the
        # serialized bytes (and therefore the digest) differ: a v2 release
        # of an unchanged model, the safe-rollout base case.
        rollout_network = build_phonebit_network(
            get_serving_config(rollout_model))
        rollout_network.metadata["release"] = "scenario-v2"
        rollout_trigger = min(len(offsets) - 1,
                              int(rollout_at * len(offsets)))

    tenant_count = len(spec.tenants)
    offered = [0] * tenant_count
    shed = [0] * tenant_count
    expired = [0] * tenant_count
    failed = [0] * tenant_count
    latencies: List[List[float]] = [[] for _ in range(tenant_count)]
    within: List[int] = [0] * tenant_count
    budgets = [
        tenant.budget_ms if tenant.budget_ms is not None
        else policy_table[tenant.slo].latency_budget_ms
        for tenant in spec.tenants
    ]
    model_cursor = {model: 0 for model in models}
    futures: Dict[int, tuple] = {}
    submit_at: Dict[int, float] = {}
    done_at: Dict[int, float] = {}

    cluster = ClusterService(
        workers=workers,
        retry=RetryPolicy() if retry is None else retry,
        faults=chaos,
        slo_reserves=slo_reserves,
        slo_policies=policy_table,
        **cluster_kwargs,
    )
    try:
        def arrive(arrival: int) -> None:
            if arrival == rollout_trigger and rollout_network is not None:
                cluster.publish(rollout_network, model=rollout_model,
                                rollout=rollout_config)
            tenant_i = int(tenant_index[arrival])
            tenant = spec.tenants[tenant_i]
            model = model_names[arrival]
            cursor = model_cursor[model]
            model_cursor[model] = cursor + 1
            image_i = cursor % len(images[model])
            offered[tenant_i] += 1
            now = time.perf_counter()
            try:
                future = cluster.submit(model, images[model][image_i],
                                        block=False, slo=tenant.slo)
            except ClusterOverloadError:
                shed[tenant_i] += 1
                return
            except DeadlineExceededError:  # pragma: no cover - sync expiry
                expired[tenant_i] += 1
                return
            submit_at[arrival] = now
            future.add_done_callback(
                lambda _f, key=arrival: done_at.__setitem__(
                    key, time.perf_counter()))
            futures[arrival] = (tenant_i, model, image_i, future)

        t0 = run_arrival_schedule(offsets, arrive)
        outputs: Dict[tuple, np.ndarray] = {}
        for arrival, (tenant_i, model, image_i, future) in futures.items():
            budget_s = drain_timeout_s - (time.perf_counter() - t0)
            try:
                row = future.result(timeout=max(1.0, budget_s))
            except DeadlineExceededError:
                expired[tenant_i] += 1
                continue
            except WorkerCrashError:
                failed[tenant_i] += 1
                continue
            except FuturesTimeoutError:
                raise RuntimeError(
                    f"hung future: arrival {arrival} unresolved "
                    f"{drain_timeout_s:.0f}s after submission — the "
                    "cluster lost track of admitted work"
                )
            outputs[(model, image_i)] = row
            latency_s = done_at.get(arrival, time.perf_counter()) \
                - submit_at[arrival]
            latencies[tenant_i].append(latency_s)
            if latency_s * 1000.0 <= budgets[tenant_i]:
                within[tenant_i] += 1
        rollout_phase = None
        if rollout_network is not None:
            # Arrivals have drained; give the controller a bounded window
            # to reach a terminal phase (commit finalize, or timeout →
            # rollback) before we report.  The monitor thread keeps
            # ticking the state machine while we wait.
            deadline = time.perf_counter() + 15.0
            while time.perf_counter() < deadline:
                status = cluster.rollout_status(rollout_model)
                rollout_phase = status[0]["phase"] if status else None
                if rollout_phase in ("committed", "rolled_back"):
                    break
                time.sleep(0.05)
        wall_s = time.perf_counter() - t0
        fault_events = tuple(cluster.fault_events)
        detail = cluster.cluster_report()
        model_shares = cluster.measured_model_shares()
        pins_applied = cluster.rebalance_pinning() if rebalance_pins else None
        baseline = cluster.baseline_service()
        try:
            expected: Dict[tuple, np.ndarray] = {}
            for model in models:
                rows = run_closed_loop(baseline, model,
                                       images[model]).outputs
                for image_i, row in enumerate(rows):
                    expected[(model, image_i)] = row
        finally:
            baseline.close()
    finally:
        cluster.close()

    bit_identical = all(
        np.array_equal(row, expected[key]) for key, row in outputs.items()
    )
    tenant_summaries = tuple(
        TenantSummary(
            tenant=tenant.name, slo=tenant.slo, offered=offered[i],
            completed=len(latencies[i]), shed=shed[i],
            deadline_expired=expired[i], failed=failed[i],
            within_budget=within[i], budget_ms=float(budgets[i]),
            p50_ms=percentile_ms(latencies[i], 50.0),
            p99_ms=percentile_ms(latencies[i], 99.0),
            goodput_rps=(len(latencies[i]) / wall_s if wall_s > 0 else 0.0),
        )
        for i, tenant in enumerate(spec.tenants)
    )
    total_shed = sum(t.shed for t in tenant_summaries)
    class_summaries = []
    for slo in SLO_CLASSES:
        members = [t for t in tenant_summaries if t.slo == slo]
        if not members:
            continue
        class_shed = sum(t.shed for t in members)
        class_summaries.append(ClassSummary(
            slo=slo,
            offered=sum(t.offered for t in members),
            completed=sum(t.completed for t in members),
            shed=class_shed,
            deadline_expired=sum(t.deadline_expired for t in members),
            failed=sum(t.failed for t in members),
            within_budget=sum(t.within_budget for t in members),
            shed_share=(class_shed / total_shed) if total_shed else 0.0,
        ))
    pin_suggestion = (
        pin_counts_from_shares(model_shares, workers=max(1, workers))
        if model_shares else None
    )
    return ScenarioResult(
        scenario=spec.name, seed=int(seed),
        duration_s=schedule.duration_s, rate_scale=schedule.rate_scale,
        digest=schedule.digest(), wall_s=wall_s,
        tenants=tenant_summaries, classes=tuple(class_summaries),
        bit_identical=bit_identical, model_shares=model_shares,
        pin_suggestion=pin_suggestion, pins_applied=pins_applied,
        retries=detail.retries, hedges=detail.hedges,
        respawns=detail.respawns, fault_events=fault_events,
        rollout_phase=rollout_phase,
    )


# ---------------------------------------------------------------------------
# pass-over-pass aggregation
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class PassAggregate:
    """Pass-over-pass summary stats for one SLO class."""

    slo: str
    passes: int
    offered: int
    completed: int
    shed: int
    attainment_mean: float
    attainment_min: float
    attainment_max: float


def aggregate_passes(results: Sequence[ScenarioResult]
                     ) -> Tuple[PassAggregate, ...]:
    """Aggregate per-class attainment across passes (mean/min/max)."""
    if not results:
        raise ValueError("aggregate_passes needs at least one result")
    aggregates: List[PassAggregate] = []
    for slo in SLO_CLASSES:
        rows = [result.class_summary(slo) for result in results
                if any(c.slo == slo for c in result.classes)]
        if not rows:
            continue
        attainments = [row.attainment for row in rows]
        aggregates.append(PassAggregate(
            slo=slo, passes=len(rows),
            offered=sum(row.offered for row in rows),
            completed=sum(row.completed for row in rows),
            shed=sum(row.shed for row in rows),
            attainment_mean=float(np.mean(attainments)),
            attainment_min=float(min(attainments)),
            attainment_max=float(max(attainments)),
        ))
    return tuple(aggregates)


def passes_table(aggregates: Sequence[PassAggregate]) -> str:
    return format_table(
        ["class", "passes", "offered", "done", "shed", "attain mean %",
         "min %", "max %"],
        [
            [a.slo, a.passes, a.offered, a.completed, a.shed,
             f"{100.0 * a.attainment_mean:.1f}",
             f"{100.0 * a.attainment_min:.1f}",
             f"{100.0 * a.attainment_max:.1f}"]
            for a in aggregates
        ],
        title="Pass-over-pass",
    )


def run_scenario_passes(spec: ScenarioSpec, passes: int = 2, seed: int = 0,
                        **kwargs) -> tuple:
    """Run ``passes`` seeded passes (pass ``p`` uses ``seed + p``) and
    aggregate: returns ``(results, aggregates)``."""
    if passes < 1:
        raise ValueError("passes must be at least 1")
    results = [run_scenario(spec, seed=seed + index, **kwargs)
               for index in range(passes)]
    return results, aggregate_passes(results)
