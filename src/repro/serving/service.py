"""The async micro-batching inference service.

:class:`InferenceService` composes the serving building blocks:

* a :class:`~repro.serving.pool.ModelPool` of warmed networks,
* one :class:`~repro.serving.scheduler.BatchingScheduler` per model whose
  executor stacks queued images into a micro-batch, feeds it through
  ``PhoneBitEngine.run_batch`` (cost estimation disabled on the hot path)
  and splits the batched output back into per-request rows,
* an optional :class:`~repro.serving.cache.LRUResponseCache` keyed on the
  input digest, and
* end-to-end latency metrics distilled into a :class:`ServiceReport`.

Because the batched kernels are bit-exact with per-request execution,
clients cannot observe whether their request was served alone, batched with
strangers, or out of the cache — except through latency.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import CancelledError, Future
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.analysis.reporting import format_kv
from repro.core.engine import PhoneBitEngine, split_batch_output
from repro.core.network import Network
from repro.serving.cache import CacheStats, LRUResponseCache, response_cache_key
from repro.serving.metrics import LatencySummary, LatencyTracker
from repro.serving.pool import ModelPool
from repro.serving.scheduler import BatchingScheduler, SchedulerStats


@dataclass(frozen=True)
class ServiceReport:
    """Operational summary of one served model."""

    model: str
    device: str
    duration_s: float
    requests: int
    cache_hits: int
    cache_misses: int
    latency: LatencySummary
    scheduler: SchedulerStats
    #: Stats of the *service-wide* response cache (shared by every served
    #: model); the per-model view is ``cache_hits`` / ``cache_misses``.
    cache: Optional[CacheStats] = None

    @property
    def requests_per_s(self) -> float:
        if self.duration_s <= 0:
            return float("inf") if self.requests else 0.0
        return self.requests / self.duration_s

    @property
    def cache_hit_rate(self) -> float:
        """Hit rate of *this model's* cache lookups."""
        lookups = self.cache_hits + self.cache_misses
        return self.cache_hits / lookups if lookups else 0.0

    def to_record(self) -> dict:
        """JSON-serializable record for the benchmark trajectory."""
        triggers = self.scheduler.trigger_counts
        return {
            "model": self.model,
            "device": self.device,
            "duration_s": self.duration_s,
            "requests": self.requests,
            "requests_per_s": self.requests_per_s,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_hit_rate": self.cache_hit_rate,
            "service_cache_hit_rate": self.cache.hit_rate if self.cache else 0.0,
            "latency_mean_ms": self.latency.mean_ms,
            "latency_p50_ms": self.latency.p50_ms,
            "latency_p99_ms": self.latency.p99_ms,
            "batches": self.scheduler.batch_count,
            "mean_batch_size": self.scheduler.mean_batch_size,
            "max_queue_depth": self.scheduler.max_queue_depth,
            "flush_triggers": triggers,
        }

    def table(self) -> str:
        """Aligned plain-text rendering (reporting-module style)."""
        rows: List[tuple] = [
            ("model", self.model),
            ("device", self.device),
            ("duration (s)", self.duration_s),
            ("requests", self.requests),
            ("requests/s", self.requests_per_s),
            ("cache hits", self.cache_hits),
        ]
        if self.cache is not None:
            rows.append(("cache hit rate", f"{100.0 * self.cache_hit_rate:.1f}%"))
            rows.append(
                ("cache hit rate (service-wide)",
                 f"{100.0 * self.cache.hit_rate:.1f}%")
            )
        rows.extend(self.latency.rows()[1:])  # skip duplicate request count
        rows.extend(
            [
                ("micro-batches", self.scheduler.batch_count),
                ("mean batch size", self.scheduler.mean_batch_size),
                ("max queue depth", self.scheduler.max_queue_depth),
                ("flush triggers", ", ".join(
                    f"{name}={count}"
                    for name, count in self.scheduler.trigger_counts.items()
                    if count
                ) or "none"),
            ]
        )
        return format_kv(rows, title=f"Serving report — {self.model}")


class _VersionState:
    """One resident artifact version: its network and its own scheduler.

    Schedulers are per *version*, not per model: a micro-batch is executed
    against exactly one network, so during a rollout (two versions of one
    model live at once) stable and canary requests must never be stacked
    into the same batch.
    """

    def __init__(self, digest: str, network: Network,
                 scheduler: BatchingScheduler) -> None:
        self.digest = digest
        self.network = network
        self.scheduler = scheduler


class _ModelState:
    """Per-model bookkeeping owned by the service.

    Metrics (latency, request and cache counters) aggregate over every
    version served under the name — a rollout does not split the model's
    operational report in two.
    """

    def __init__(self, key: str) -> None:
        self.key = key
        self.versions: Dict[str, _VersionState] = {}
        self.latencies = LatencyTracker()
        self.requests = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.first_submit: Optional[float] = None
        self.last_done: Optional[float] = None


def _merge_scheduler_stats(stats: List[SchedulerStats]) -> SchedulerStats:
    """Aggregate per-version scheduler stats into one per-model view."""
    if len(stats) == 1:
        return stats[0]
    if not stats:  # every version retired since the last request
        return SchedulerStats(submitted=0, completed=0, failed=0)
    triggers: Dict[str, int] = {}
    for s in stats:
        for name, count in s.trigger_counts.items():
            triggers[name] = triggers.get(name, 0) + count
    return SchedulerStats(
        submitted=sum(s.submitted for s in stats),
        completed=sum(s.completed for s in stats),
        failed=sum(s.failed for s in stats),
        batch_count=sum(s.batch_count for s in stats),
        batched_requests=sum(s.batched_requests for s in stats),
        trigger_counts=triggers,
        batches=[b for s in stats for b in s.batches],
        max_queue_depth=max(s.max_queue_depth for s in stats),
    )


class InferenceService:
    """Serve per-request traffic through dynamic micro-batches.

    Parameters
    ----------
    pool:
        Model pool to serve from (a fresh one by default).
    engine:
        Shared engine; ``run_batch`` is reentrant so one engine serves every
        model.
    max_batch_size / max_wait_ms:
        Scheduler flush policy (see :class:`BatchingScheduler`).
    cache_capacity:
        LRU response-cache entries; ``0`` disables response caching.
    chunk_size:
        Optional explicit ``run_batch`` chunk bound for very large
        micro-batches; overrides the working-set heuristic.
    chunk_bytes:
        Byte budget for ``run_batch``'s working-set-aware chunk heuristic
        (the CLI's ``--chunk-hint``); ``None`` uses the engine default.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.serving import InferenceService
    >>> with InferenceService(max_batch_size=8, max_wait_ms=1.0) as service:
    ...     image = np.zeros((8, 8, 3), dtype=np.uint8)
    ...     out = service.infer("MicroCNN", image, timeout=60)
    ...     report = service.report("MicroCNN")
    >>> out.shape                  # per-image output row, no batch dim
    (10,)
    >>> report.requests
    1
    """

    def __init__(
        self,
        pool: Optional[ModelPool] = None,
        engine: Optional[PhoneBitEngine] = None,
        max_batch_size: int = 32,
        max_wait_ms: float = 2.0,
        cache_capacity: int = 1024,
        chunk_size: Optional[int] = None,
        chunk_bytes: Optional[int] = None,
    ) -> None:
        self.pool = pool or ModelPool()
        self.engine = engine or PhoneBitEngine()
        self.max_batch_size = max_batch_size
        self.max_wait_ms = max_wait_ms
        self.chunk_size = chunk_size
        self.chunk_bytes = chunk_bytes
        self.cache = LRUResponseCache(cache_capacity) if cache_capacity else None
        self._lock = threading.Lock()
        self._models: Dict[str, _ModelState] = {}
        self._closed = False

    # ------------------------------------------------------------- plumbing
    def _executor_for(self, network: Network):
        def execute(payloads: Sequence[np.ndarray]) -> List[np.ndarray]:
            batch = np.stack(payloads)
            report = self.engine.run_batch(
                network, batch, chunk_size=self.chunk_size,
                chunk_bytes=self.chunk_bytes, collect_estimate=False,
            )
            # copy=True: responses outlive the batch (cache, client
            # references) and must not pin the shared buffer or alias one
            # another.  Rows are frozen so every response — served fresh or
            # from the cache — is uniformly read-only.
            parts = split_batch_output(
                report.output, [1] * len(payloads), copy=True
            )
            results = []
            for part in parts:
                part.data.setflags(write=False)
                results.append(part.data[0])  # read-only view of frozen copy
            return results

        return execute

    def _state_for(self, model: str,
                   digest: Optional[str] = None) -> tuple:
        # Per-model state (scheduler, metrics, cache namespace) is keyed by
        # the pool's canonical name so "microcnn" and "MicroCNN" share one
        # scheduler and one report rather than splitting traffic in two.
        # Within a model, each resident *version* gets its own scheduler so
        # a micro-batch never mixes artifact digests.
        key = self.pool.canonical_name(model)
        # Build/fetch outside the service lock: a multi-second cold build
        # (VGG16 at 224²) must not stall submissions for hot models.
        network = self.pool.get(key, digest)
        resolved = digest if digest is not None else self.pool.active_digest(key)
        with self._lock:
            if self._closed:
                raise RuntimeError("service is closed")
            state = self._models.get(key)
            if state is None:
                state = _ModelState(key)
                self._models[key] = state
            version = state.versions.get(resolved)
            if version is None:
                scheduler = BatchingScheduler(
                    self._executor_for(network),
                    max_batch_size=self.max_batch_size,
                    max_wait_ms=self.max_wait_ms,
                    name=f"serve-{key}" + (f"@{resolved[:12]}" if resolved else ""),
                )
                version = _VersionState(resolved, network, scheduler)
                state.versions[resolved] = version
            return state, version

    def _coerce_image(self, version: _VersionState,
                      image: np.ndarray) -> np.ndarray:
        image = np.asarray(image)
        expected = version.network.input_shape
        if image.shape != expected:
            raise ValueError(
                f"{version.network.name}: expected one image of shape "
                f"{expected}, got {image.shape}"
            )
        return image

    # ------------------------------------------------------------- requests
    def submit(self, model: str, image: np.ndarray,
               digest: Optional[str] = None) -> Future:
        """Enqueue one inference request; resolves to the output row.

        The result has the network's per-image output shape (no leading
        batch dimension) and is bit-identical to what an unbatched
        ``engine.run`` would produce for the same input.  Responses are
        read-only arrays (they may be shared with the response cache and
        other clients); copy before mutating.

        ``digest`` pins the request to one resident artifact version (a
        rollout's digest-tagged routing); ``None`` serves whatever version
        is active.
        """
        state, version = self._state_for(model, digest)
        image = self._coerce_image(version, image)
        t_submit = time.perf_counter()
        with self._lock:
            state.requests += 1
            if state.first_submit is None:
                state.first_submit = t_submit

        # The response-cache key carries the *artifact digest*, not just the
        # model name: two versions of one model (a rollout's stable and
        # canary weights) produce different rows for the same image, and a
        # rollback must never serve a response computed by the version that
        # was rolled back.
        # NB: "is not None" — the cache defines __len__, so an *empty* cache
        # is falsy and a plain truthiness check would disable it.
        key = (response_cache_key(state.key, version.digest, image)
               if self.cache is not None else None)
        if key is not None:
            cached = self.cache.get(key)
            if cached is not None:
                now = time.perf_counter()
                state.latencies.record(now - t_submit)
                with self._lock:
                    state.cache_hits += 1
                    state.last_done = now
                future: Future = Future()
                future.set_result(cached)
                return future
            with self._lock:
                state.cache_misses += 1

        inner = version.scheduler.submit(image)
        # The client gets a service-owned future resolved only *after* the
        # bookkeeping below has run.  Resolving the scheduler's own future
        # wakes its waiters before done-callbacks fire, so handing that one
        # out would let a client observe a result whose latency sample and
        # cache entry do not exist yet (report() right after result() would
        # undercount).
        outer: Future = Future()
        outer.set_running_or_notify_cancel()  # outer futures are not cancellable

        def _record(done: Future, _state=state, _key=key, _t0=t_submit) -> None:
            now = time.perf_counter()
            with self._lock:
                _state.last_done = now
            if done.cancelled():
                outer.set_exception(CancelledError())
                return
            error = done.exception()
            if error is not None:
                outer.set_exception(error)
                return
            result = done.result()
            _state.latencies.record(now - _t0)
            if _key is not None:
                self.cache.put(_key, result)
            outer.set_result(result)

        inner.add_done_callback(_record)
        return outer

    def submit_batch(self, model: str, images: np.ndarray) -> List[Future]:
        """Enqueue one request per leading row of ``images``."""
        return [self.submit(model, image) for image in np.asarray(images)]

    def infer(self, model: str, image: np.ndarray,
              timeout: Optional[float] = None) -> np.ndarray:
        """Blocking single-request inference."""
        return self.submit(model, image).result(timeout=timeout)

    # ------------------------------------------------------------- lifecycle
    def flush(self, model: Optional[str] = None) -> None:
        """Force pending micro-batches out (all models by default).

        A model that has not served any request yet has nothing pending, so
        flushing it is a no-op rather than an error.
        """
        with self._lock:
            if model is not None:
                state = self._models.get(self.pool.canonical_name(model))
                states = [state] if state is not None else []
            else:
                states = list(self._models.values())
            schedulers = [v.scheduler for s in states for v in s.versions.values()]
        for scheduler in schedulers:
            scheduler.flush()

    def retire(self, model: str, digest: str) -> None:
        """Drain and drop one resident version of ``model``.

        Flushes and closes the version's scheduler (in-flight requests
        complete against the old network first), drops the version state
        and removes the pool entry — after this, no reference into the
        version's backing storage remains in the service, so the caller
        may safely unmap it.  Retiring the *active* version is refused;
        a version that never served is a no-op beyond the pool removal.
        """
        key = self.pool.canonical_name(model)
        if self.pool.active_digest(key) == digest:
            raise ValueError(
                f"version {digest[:16] or '<unversioned>'}... is the active "
                f"version of {model!r}; swap the active version first")
        with self._lock:
            state = self._models.get(key)
            version = state.versions.pop(digest, None) if state else None
        if version is not None:
            version.scheduler.close(drain=True)
            version.network = None  # type: ignore[assignment]
        self.pool.remove(key, digest)

    def evict(self, model: str) -> None:
        """Drain and drop *every* resident version of ``model``.

        The pin-revocation counterpart of :meth:`retire`: the model is
        being withdrawn from this service entirely (its pin moved to
        another worker), so the active version goes too.  In-flight
        requests drain against their networks first; afterwards no
        reference into any version's backing storage remains here.
        """
        key = self.pool.canonical_name(model)
        with self._lock:
            state = self._models.pop(key, None)
        if state is not None:
            for version in state.versions.values():
                version.scheduler.close(drain=True)
                version.network = None  # type: ignore[assignment]
            state.versions.clear()
        self.pool.evict(key)

    def close(self, drain: bool = True) -> None:
        """Shut every scheduler down (draining pending work by default)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            schedulers = [v.scheduler for s in self._models.values()
                          for v in s.versions.values()]
        for scheduler in schedulers:
            scheduler.close(drain=drain)

    def __enter__(self) -> "InferenceService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------- reporting
    def report(self, model: str) -> ServiceReport:
        """Operational report for one served model."""
        key = self.pool.canonical_name(model)
        with self._lock:
            state = self._models.get(key)
            if state is None:
                raise KeyError(f"model {model!r} has not served any requests")
            first = state.first_submit
            last = state.last_done
            requests = state.requests
            cache_hits = state.cache_hits
            cache_misses = state.cache_misses
            schedulers = [v.scheduler for v in state.versions.values()]
        duration = (last - first) if (first is not None and last is not None) else 0.0
        return ServiceReport(
            model=key,
            device=self.engine.device.soc,
            duration_s=max(0.0, duration),
            requests=requests,
            cache_hits=cache_hits,
            cache_misses=cache_misses,
            latency=state.latencies.summary(),
            scheduler=_merge_scheduler_stats(
                [s.stats() for s in schedulers]),
            cache=self.cache.stats() if self.cache is not None else None,
        )

    def reports(self) -> Dict[str, ServiceReport]:
        with self._lock:
            names = list(self._models)
        return {name: self.report(name) for name in names}
